//! The scrape listener: a dedicated thread answering plain-HTTP
//! `GET /metrics` (text exposition) and `GET /trace` (JSON lines).
//!
//! Deliberately *not* part of any evented core's poll loop: the whole
//! point of pull-based metrics is that an operator polling every few
//! seconds must never contend with the data plane. Everything a scrape
//! reads is atomics (or the trace mutex), so this thread touches the wire
//! protocol and the tick batcher not at all — a slow or hostile scraper
//! can stall only itself.

use crate::registry::Registry;
use crate::trace::TraceRing;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The longest request head the listener will buffer before answering
/// `400`. Scrapes are one short GET; anything bigger is not a scraper.
const MAX_REQUEST: usize = 8 * 1024;

/// A running scrape listener. Dropping it stops the thread.
#[derive(Debug)]
pub struct MetricsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (port 0 picks a free port) and serves `registry` —
    /// and, when given, `trace` — until the server is dropped.
    ///
    /// # Errors
    ///
    /// Propagates the bind/configure I/O error.
    pub fn start(
        addr: &str,
        registry: Arc<Registry>,
        trace: Option<Arc<TraceRing>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-scrape".into())
            .spawn(move || serve(listener, registry, trace, thread_stop))?;
        Ok(MetricsServer {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve(
    listener: TcpListener,
    registry: Arc<Registry>,
    trace: Option<Arc<TraceRing>>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // One scrape at a time, handled inline: scrapes are rare
                // and the response is a few KB of atomics reads.
                let _ = answer(stream, &registry, trace.as_deref());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn answer(
    mut stream: TcpStream,
    registry: &Registry,
    trace: Option<&TraceRing>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(2_000)))?;
    stream.set_write_timeout(Some(Duration::from_millis(2_000)))?;
    let head = match read_head(&mut stream) {
        Some(head) => head,
        None => {
            return respond(
                &mut stream,
                "400 Bad Request",
                "text/plain",
                "bad request\n",
            );
        }
    };
    let mut parts = head.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is served\n",
        );
    }
    let path = path.split('?').next().unwrap_or("");
    match path {
        "/metrics" => {
            let body = registry.render();
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/trace" => match trace {
            Some(ring) => {
                let body = ring.drain_json_lines();
                respond(&mut stream, "200 OK", "application/x-ndjson", &body)
            }
            None => respond(
                &mut stream,
                "404 Not Found",
                "text/plain",
                "tracing is not enabled\n",
            ),
        },
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "try /metrics or /trace\n",
        ),
    }
}

/// Reads the request head (through the blank line); `None` on a
/// malformed, oversized, or timed-out request. Only the request line is
/// interpreted.
fn read_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
                {
                    return Some(String::from_utf8_lossy(&buf).into_owned());
                }
                if buf.len() > MAX_REQUEST {
                    return None;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceEvent, TraceKind};

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_trace_and_404s() {
        let registry = Arc::new(Registry::new());
        registry.counter("up_total", "liveness").inc();
        let ring = Arc::new(TraceRing::new(16));
        ring.push(TraceEvent::at(3, TraceKind::Admit).session(9));
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            Some(Arc::clone(&ring)),
        )
        .unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("up_total 1"));

        let (head, body) = get(addr, "/trace");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"kind\":\"admit\""));
        // Drained: a second poll returns an empty body.
        let (_, body) = get(addr, "/trace");
        assert!(body.is_empty());

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }
}
