//! cdba-ctrl: a sharded multi-tenant allocation control plane.
//!
//! The algorithm crates answer "how should *one* session's bandwidth move?"
//! This crate runs *many* of them as a service, closing the loop the paper
//! leaves to the operator:
//!
//! - **Admission control** ([`admission`]): a join is admitted only if its
//!   worst-case allocation envelope — `B_A` for a dedicated session, the
//!   Theorem 14 bound `4·B_O` for a phased group — still fits under the
//!   aggregate budget and the tenant's quota. This is what makes the
//!   paper's "the link can always grant the allocation" assumption true.
//! - **Sharded execution** ([`service`], [`shard`]): sessions are placed
//!   on the least-loaded healthy worker shard (threads fed by bounded
//!   channels, or an inline single-threaded fallback) and driven
//!   tick-batched through the existing machines — [`SingleSession`]
//!   allocators for dedicated sessions, one [`SessionPool`] per pooled
//!   group.
//! - **Shard supervision** ([`service`], [`fault`]): workers run under
//!   `catch_unwind` and report typed failures; the driver restarts a
//!   failed shard from its last periodic checkpoint plus a bounded
//!   journal replay, surfaces `restarts` / `events_replayed` / per-shard
//!   health in the snapshot, and degrades to typed [`CtrlError::ShardDown`]
//!   errors instead of panicking when recovery is disabled or exhausted.
//!   A [`FaultPlan`] injects kills, hangs, and delays for testing.
//! - **Signalling-cost metering** ([`meter`]): every allocation change is
//!   charged under the §1 pricing (via [`cdba_analysis::cost`]) and each
//!   session's delay, peak allocation, and windowed utilization are tracked
//!   online.
//! - **Snapshots** ([`metrics`]): serde-JSON exports whose
//!   placement-invariant parts are *bitwise identical* across shard counts
//!   and execution modes — sessions never interact across shards, and
//!   global folds run in session-key order.
//!
//! [`SingleSession`]: cdba_core::single::SingleSession
//! [`SessionPool`]: cdba_core::multi::pool::SessionPool
//!
//! # Example
//!
//! ```
//! use cdba_ctrl::{ControlPlane, ExecMode, ServiceConfig};
//!
//! let cfg = ServiceConfig::builder(256.0)
//!     .session_b_max(16.0)
//!     .offline_delay(4)
//!     .window(4)
//!     .exec(ExecMode::Inline)
//!     .build()
//!     .unwrap();
//! let mut service = ControlPlane::new(cfg);
//! let a = service.admit("acme").unwrap();
//! let b = service.admit("globex").unwrap();
//! for t in 0..32u64 {
//!     service.tick(&[(a, (t % 3) as f64), (b, 1.0)]).unwrap();
//! }
//! let snapshot = service.snapshot().unwrap();
//! assert_eq!(snapshot.global.sessions, 2);
//! assert!(snapshot.global.changes > 0);
//! ```

pub mod admission;
pub mod codec;
pub mod config;
pub mod fault;
pub mod meter;
pub mod metrics;
pub mod mirror;
pub(crate) mod obs;
pub mod service;
pub(crate) mod shard;
pub(crate) mod slab;

pub use admission::{AdmissionController, AdmissionError};
pub use config::{ExecMode, ServiceConfig, ServiceConfigBuilder};
pub use fault::{FaultKind, FaultPlan};
pub use meter::{SessionMetrics, SignallingMeter};
pub use metrics::{GlobalMetrics, ServiceSnapshot, ShardHealth, ShardMetrics, SnapshotCounters};
pub use mirror::{CheckpointMirror, CheckpointProbe};
pub use service::ControlPlane;

use std::fmt;

/// Anything the control plane can refuse to do.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlError {
    /// An algorithm-parameter constraint was violated (delegated to the
    /// core config builders).
    Config(cdba_core::config::ConfigError),
    /// Admission control turned a join down.
    Admission(AdmissionError),
    /// An operation named a session key that is not live.
    UnknownSession(u64),
    /// A service-level parameter or request was invalid.
    InvalidService(String),
    /// A shard worker failed and could not be recovered (its restart
    /// budget is exhausted, or recovery is disabled).
    ShardDown {
        /// The failed shard.
        shard: usize,
        /// The last failure reason the supervisor recorded.
        reason: String,
    },
    /// A shard worker thread could not be spawned. The shard degrades
    /// like any other shard fault: it is marked down and subsequent
    /// operations touching it report [`CtrlError::ShardDown`].
    Spawn {
        /// The shard whose worker failed to spawn.
        shard: usize,
        /// The operating-system error.
        reason: String,
    },
    /// A tick named a session with non-finite or negative arrival bits.
    InvalidArrival {
        /// The offending session key.
        session: u64,
        /// The rejected bit count.
        bits: f64,
    },
    /// A tick listed the same session key twice.
    DuplicateArrival(u64),
    /// A migration blob decoded structurally but carried a value outside
    /// its domain — a non-finite or negative float, or an impossible
    /// tracker shape — that would corrupt a shard if imported.
    InvalidCheckpoint {
        /// The first offending field.
        field: &'static str,
    },
}

/// The one arrival validator every kernel entry routes through: the bits
/// of an arrival must be finite and non-negative. The shard kernel
/// `debug_assert!`s this contract instead of clamping.
pub(crate) fn validate_arrival(session: u64, bits: f64) -> Result<(), CtrlError> {
    if bits.is_finite() && bits >= 0.0 {
        Ok(())
    } else {
        Err(CtrlError::InvalidArrival { session, bits })
    }
}

impl fmt::Display for CtrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlError::Config(e) => write!(f, "invalid algorithm configuration: {e}"),
            CtrlError::Admission(e) => write!(f, "admission rejected: {e}"),
            CtrlError::UnknownSession(key) => write!(f, "unknown session {key}"),
            CtrlError::InvalidService(msg) => write!(f, "invalid service request: {msg}"),
            CtrlError::ShardDown { shard, reason } => {
                write!(f, "shard {shard} is down: {reason}")
            }
            CtrlError::Spawn { shard, reason } => {
                write!(
                    f,
                    "shard {shard} worker thread could not be spawned: {reason}"
                )
            }
            CtrlError::InvalidArrival { session, bits } => {
                write!(f, "invalid arrival of {bits} bits for session {session}")
            }
            CtrlError::DuplicateArrival(key) => {
                write!(f, "session {key} listed twice in one tick")
            }
            CtrlError::InvalidCheckpoint { field } => {
                write!(f, "migration blob rejected: {field} is out of domain")
            }
        }
    }
}

impl std::error::Error for CtrlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CtrlError::Config(e) => Some(e),
            CtrlError::Admission(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AdmissionError> for CtrlError {
    fn from(e: AdmissionError) -> Self {
        CtrlError::Admission(e)
    }
}

impl From<cdba_core::config::ConfigError> for CtrlError {
    fn from(e: cdba_core::config::ConfigError) -> Self {
        CtrlError::Config(e)
    }
}
