//! Per-session signalling-cost metering.
//!
//! The paper's introduction prices a session on two axes: total bandwidth
//! consumption (allocation × duration) and the number of allocation
//! *changes*, each of which is a costly switch signalling operation. The
//! [`SignallingMeter`] charges both online, per tick, against the
//! [`CostModel`] of `cdba-analysis`, while folding the paper's three
//! quality measures with constant memory:
//!
//! * allocation changes and peak allocation — O(1) counters, the same
//!   change criterion as `cdba_sim::streaming` (|Δ| > [`EPS`], starting
//!   from an implicit allocation of 0);
//! * maximum FIFO delay — a shadow [`BitQueue`] mirrors the external link
//!   (fed the same arrivals and allocation the session sees) and feeds an
//!   [`OnlineDelayTracker`];
//! * windowed utilization — rolling `W`-tick sums of arrivals and
//!   allocation, minimized over every complete window with non-zero
//!   allocation (the paper's local utilization, folded online).

use cdba_analysis::cost::CostModel;
use cdba_sim::streaming::{DelayTrackerState, OnlineDelayTracker};
use cdba_sim::BitQueue;
use cdba_traffic::EPS;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Rounds an exact (possibly fractional) delay up to reported whole ticks,
/// with explicit non-finite handling: NaN and non-positive values report
/// 0, `+∞` saturates to `u64::MAX`. A measured delay of 2.9 ticks reports
/// as 3, never truncated to 2.
pub(crate) fn delay_ticks(exact: f64) -> u64 {
    if exact.is_nan() || exact <= 0.0 {
        0
    } else if exact.is_infinite() {
        u64::MAX
    } else {
        exact.ceil() as u64
    }
}

/// The metered totals of one session, exported in snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionMetrics {
    /// The service-wide session key.
    pub session: u64,
    /// Owning tenant. Shared with the driver's placement records: stamping
    /// metrics costs a refcount bump, not a string copy per session.
    pub tenant: Arc<str>,
    /// Shard the session ran on (placement detail; excluded from
    /// shard-count-invariance comparisons).
    pub shard: u64,
    /// Ticks metered.
    pub ticks: u64,
    /// Allocation changes (each one a billed signalling operation).
    pub changes: u64,
    /// Peak single-tick allocation.
    pub peak_allocation: f64,
    /// Maximum FIFO delay in ticks (queued bits are charged their age so
    /// far).
    pub max_delay: u64,
    /// Total bits that arrived.
    pub total_arrived: f64,
    /// Total bits served over the link.
    pub total_served: f64,
    /// Total allocated bandwidth (bandwidth-unit·ticks).
    pub total_allocated: f64,
    /// Minimum windowed utilization over complete `W`-tick windows with
    /// non-zero allocation; `None` until one such window has elapsed.
    pub windowed_utilization: Option<f64>,
    /// Changes × change price.
    pub signalling_cost: f64,
    /// Allocation × duration × bandwidth price.
    pub bandwidth_cost: f64,
}

impl SessionMetrics {
    /// Total bill for this session under the service's cost model.
    pub fn total_cost(&self) -> f64 {
        self.signalling_cost + self.bandwidth_cost
    }
}

/// The full internal state of a [`SignallingMeter`], exported for shard
/// checkpoints. Restoring reproduces the meter bitwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeterCheckpoint {
    /// The pricing model.
    pub cost: CostModel,
    /// Utilization window in ticks.
    pub window: usize,
    /// Shadow link-queue backlog in bits.
    pub shadow_backlog: f64,
    /// Delay-tracker state.
    pub delay: DelayTrackerState,
    /// `(arrivals, allocation)` of the last up-to-`window` ticks.
    pub recent: Vec<(f64, f64)>,
    /// Rolling sum of windowed arrivals.
    pub window_arrived: f64,
    /// Rolling sum of windowed allocation.
    pub window_allocated: f64,
    /// Minimum windowed utilization so far.
    pub min_windowed_utilization: Option<f64>,
    /// Allocation of the previous tick (change detection).
    pub current_alloc: f64,
    /// Ticks metered.
    pub ticks: u64,
    /// Allocation changes counted.
    pub changes: u64,
    /// Peak single-tick allocation.
    pub peak_allocation: f64,
    /// Total bits arrived.
    pub total_arrived: f64,
    /// Total bits served.
    pub total_served: f64,
    /// Total allocated bandwidth.
    pub total_allocated: f64,
}

/// Online meter for one session; see the module docs.
#[derive(Debug, Clone)]
pub struct SignallingMeter {
    cost: CostModel,
    window: usize,
    shadow: BitQueue,
    delay: OnlineDelayTracker,
    recent: VecDeque<(f64, f64)>, // (arrivals, allocation) of the last W ticks
    window_arrived: f64,
    window_allocated: f64,
    min_windowed_utilization: Option<f64>,
    current_alloc: f64,
    ticks: u64,
    changes: u64,
    peak_allocation: f64,
    total_arrived: f64,
    total_served: f64,
    total_allocated: f64,
}

impl SignallingMeter {
    /// Creates a meter pricing with `cost` and measuring utilization over
    /// `window` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(cost: CostModel, window: usize) -> Self {
        assert!(window > 0, "utilization window must be at least one tick");
        SignallingMeter {
            cost,
            window,
            shadow: BitQueue::new(),
            delay: OnlineDelayTracker::new(),
            recent: VecDeque::with_capacity(window),
            window_arrived: 0.0,
            window_allocated: 0.0,
            min_windowed_utilization: None,
            current_alloc: 0.0,
            ticks: 0,
            changes: 0,
            peak_allocation: 0.0,
            total_arrived: 0.0,
            total_served: 0.0,
            total_allocated: 0.0,
        }
    }

    /// Charges one tick: `arrivals` bits were submitted and `allocation`
    /// bandwidth was granted for that tick.
    pub fn record(&mut self, arrivals: f64, allocation: f64) {
        let arrivals = if arrivals.is_finite() {
            arrivals.max(0.0)
        } else {
            0.0
        };
        let allocation = if allocation.is_finite() {
            allocation.max(0.0)
        } else {
            0.0
        };
        if (allocation - self.current_alloc).abs() > EPS {
            self.changes += 1;
            self.current_alloc = allocation;
        }
        let served = self.shadow.tick(arrivals, allocation);
        self.delay.push(arrivals, served);
        self.ticks += 1;
        self.total_arrived += arrivals;
        self.total_served += served;
        self.total_allocated += allocation;
        self.peak_allocation = self.peak_allocation.max(allocation);
        // Rolling utilization window.
        self.recent.push_back((arrivals, allocation));
        self.window_arrived += arrivals;
        self.window_allocated += allocation;
        if self.recent.len() > self.window {
            let (a, b) = self.recent.pop_front().expect("non-empty by len check");
            self.window_arrived -= a;
            self.window_allocated -= b;
        }
        if self.recent.len() == self.window && self.window_allocated > EPS {
            let ratio = self.window_arrived.max(0.0) / self.window_allocated;
            self.min_windowed_utilization = Some(match self.min_windowed_utilization {
                Some(best) => best.min(ratio),
                None => ratio,
            });
        }
    }

    /// Bits still waiting in the shadow link queue.
    pub fn backlog(&self) -> f64 {
        self.shadow.backlog()
    }

    /// `true` once every submitted bit has been served.
    pub fn is_drained(&self) -> bool {
        self.shadow.is_empty()
    }

    /// Exports the full meter state; [`SignallingMeter::restore`] rebuilds
    /// a meter that meters identically, bitwise.
    pub fn checkpoint(&self) -> MeterCheckpoint {
        MeterCheckpoint {
            cost: self.cost,
            window: self.window,
            shadow_backlog: self.shadow.backlog(),
            delay: self.delay.state(),
            recent: self.recent.iter().copied().collect(),
            window_arrived: self.window_arrived,
            window_allocated: self.window_allocated,
            min_windowed_utilization: self.min_windowed_utilization,
            current_alloc: self.current_alloc,
            ticks: self.ticks,
            changes: self.changes,
            peak_allocation: self.peak_allocation,
            total_arrived: self.total_arrived,
            total_served: self.total_served,
            total_allocated: self.total_allocated,
        }
    }

    /// Rebuilds a meter from a checkpoint, bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `cp.window == 0` (as [`SignallingMeter::new`] would).
    pub fn restore(cp: &MeterCheckpoint) -> Self {
        let mut m = SignallingMeter::new(cp.cost, cp.window);
        m.shadow.inject(cp.shadow_backlog);
        m.delay = OnlineDelayTracker::restore(&cp.delay);
        m.recent = cp.recent.iter().copied().collect();
        m.window_arrived = cp.window_arrived;
        m.window_allocated = cp.window_allocated;
        m.min_windowed_utilization = cp.min_windowed_utilization;
        m.current_alloc = cp.current_alloc;
        m.ticks = cp.ticks;
        m.changes = cp.changes;
        m.peak_allocation = cp.peak_allocation;
        m.total_arrived = cp.total_arrived;
        m.total_served = cp.total_served;
        m.total_allocated = cp.total_allocated;
        m
    }

    /// The metered totals so far, labelled for export.
    pub fn metrics(&self, session: u64, tenant: Arc<str>, shard: u64) -> SessionMetrics {
        SessionMetrics {
            session,
            tenant,
            shard,
            ticks: self.ticks,
            changes: self.changes,
            peak_allocation: self.peak_allocation,
            max_delay: delay_ticks(self.delay.max_delay_exact()),
            total_arrived: self.total_arrived,
            total_served: self.total_served,
            total_allocated: self.total_allocated,
            windowed_utilization: self.min_windowed_utilization,
            signalling_cost: self.changes as f64 * self.cost.per_change,
            bandwidth_cost: self.total_allocated * self.cost.per_bandwidth_tick,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> SignallingMeter {
        SignallingMeter::new(CostModel::with_change_price(10.0), 4)
    }

    #[test]
    fn changes_and_costs_accumulate() {
        let mut m = meter();
        m.record(2.0, 4.0); // 0 → 4: change
        m.record(2.0, 4.0);
        m.record(2.0, 8.0); // 4 → 8: change
        let x = m.metrics(1, "acme".into(), 0);
        assert_eq!(x.changes, 2);
        assert_eq!(x.signalling_cost, 20.0);
        assert_eq!(x.bandwidth_cost, 16.0);
        assert_eq!(x.total_cost(), 36.0);
        assert_eq!(x.peak_allocation, 8.0);
        assert_eq!(x.ticks, 3);
    }

    #[test]
    fn delay_matches_streaming_semantics() {
        let mut m = meter();
        m.record(10.0, 2.0);
        for _ in 0..4 {
            m.record(0.0, 2.0);
        }
        // 10 bits at 2/tick: last bit leaves during tick 4.
        assert_eq!(m.metrics(0, "t".into(), 0).max_delay, 4);
        assert!(m.is_drained());
    }

    #[test]
    fn windowed_utilization_takes_the_min_over_full_windows() {
        let mut m = meter();
        for _ in 0..4 {
            m.record(2.0, 4.0); // first full window: 8/16 = 0.5
        }
        assert_eq!(m.metrics(0, "t".into(), 0).windowed_utilization, Some(0.5));
        for _ in 0..4 {
            m.record(0.0, 4.0); // window decays to 0/16
        }
        assert_eq!(m.metrics(0, "t".into(), 0).windowed_utilization, Some(0.0));
    }

    #[test]
    fn incomplete_windows_report_none() {
        let mut m = meter();
        m.record(1.0, 1.0);
        m.record(1.0, 1.0);
        assert_eq!(m.metrics(0, "t".into(), 0).windowed_utilization, None);
    }

    #[test]
    fn zero_allocation_windows_are_skipped() {
        let mut m = meter();
        for _ in 0..6 {
            m.record(0.0, 0.0);
        }
        assert_eq!(m.metrics(0, "t".into(), 0).windowed_utilization, None);
        assert_eq!(m.metrics(0, "t".into(), 0).changes, 0);
    }

    #[test]
    fn fractional_delays_report_ceil_not_truncation() {
        // 10 bits arrive, then 4/tick: the last bit leaves midway through
        // the third service tick (exact delay 2.5), which must report as 3.
        let mut m = meter();
        m.record(10.0, 0.0);
        m.record(0.0, 4.0);
        m.record(0.0, 4.0);
        m.record(0.0, 4.0);
        assert_eq!(m.metrics(0, "t".into(), 0).max_delay, 3);
        assert!(m.is_drained());
    }

    #[test]
    fn delay_ticks_handles_non_finite_explicitly() {
        assert_eq!(delay_ticks(0.0), 0);
        assert_eq!(delay_ticks(-1.0), 0);
        assert_eq!(delay_ticks(f64::NAN), 0);
        assert_eq!(delay_ticks(f64::NEG_INFINITY), 0);
        assert_eq!(delay_ticks(f64::INFINITY), u64::MAX);
        assert_eq!(delay_ticks(2.9), 3);
        assert_eq!(delay_ticks(3.0), 3);
        assert_eq!(delay_ticks(1e-12), 1);
    }

    #[test]
    fn checkpoint_restore_is_bitwise() {
        let mut m = meter();
        for (a, b) in [(2.0, 4.0), (9.0, 4.0), (0.0, 8.0), (1.0, 0.0)] {
            m.record(a, b);
        }
        let cp = m.checkpoint();
        let mut twin = SignallingMeter::restore(&cp);
        assert_eq!(twin.checkpoint(), cp, "restore not idempotent");
        for (a, b) in [(0.0, 8.0), (5.0, 2.0), (0.0, 2.0), (0.0, 2.0)] {
            m.record(a, b);
            twin.record(a, b);
        }
        assert_eq!(m.metrics(1, "t".into(), 0), twin.metrics(1, "t".into(), 0));
        assert_eq!(m.backlog().to_bits(), twin.backlog().to_bits());
    }

    #[test]
    fn hostile_inputs_are_clamped() {
        let mut m = meter();
        m.record(f64::NAN, f64::INFINITY);
        m.record(-3.0, -1.0);
        let x = m.metrics(0, "t".into(), 0);
        assert_eq!(x.total_arrived, 0.0);
        assert_eq!(x.total_allocated, 0.0);
        assert_eq!(x.changes, 0);
    }
}
