//! Control-plane instrumentation: the [`CtrlMetrics`] handle bundle the
//! driver updates, resolved once against a [`cdba_obs::Registry`].
//!
//! Attachment is opt-in ([`crate::ControlPlane::attach_metrics`]); an
//! unattached plane pays one branch per hook. The hooks live entirely on
//! the *driver* thread — the SoA tick kernel is untouched — so the
//! per-tick cost with metrics attached is two relaxed atomic adds, which
//! is invisible next to the 100k session-ticks a tick performs. The
//! snapshot-derived gauges (signalling cost, RESET/change count, max
//! delay) are refreshed whenever a snapshot is assembled: the fold that
//! computes them is placement-invariant and already cached, so the gauges
//! inherit the bitwise determinism of `invariant_view()`.

use cdba_obs::{Counter, Gauge, Histogram, Registry};

/// Bucket bounds for `cdba_ctrl_restore_seconds`: a journal-only restore
/// lands in the sub-millisecond bucket, a 1M-session genesis replay in
/// the sub-second ones, and anything over ten seconds is pathological.
const RESTORE_BOUNDS: &[f64] = &[0.001, 0.01, 0.1, 1.0, 10.0];

/// Pre-resolved metric handles for one [`crate::ControlPlane`].
#[derive(Debug)]
pub(crate) struct CtrlMetrics {
    /// `cdba_ctrl_ticks_total`.
    pub ticks: Counter,
    /// `cdba_ctrl_arrivals_total`.
    pub arrivals: Counter,
    /// `cdba_ctrl_sessions_admitted_total`.
    pub admitted: Counter,
    /// `cdba_ctrl_sessions_rejected_total`.
    pub rejected: Counter,
    /// `cdba_ctrl_sessions_left_total`.
    pub leaves: Counter,
    /// `cdba_ctrl_journal_events_replayed_total`.
    pub events_replayed: Counter,
    /// `cdba_ctrl_shard_restarts_total{shard}`, indexed by shard.
    pub shard_restarts: Vec<Counter>,
    /// `cdba_ctrl_checkpoints_total{shard}`, indexed by shard.
    pub shard_checkpoints: Vec<Counter>,
    /// `cdba_ctrl_checkpoint_bytes_total{shard}`, indexed by shard.
    pub shard_checkpoint_bytes: Vec<Counter>,
    /// `cdba_ctrl_checkpoint_encoded_sessions_total{kind="full"}` —
    /// sessions carried by genesis (full-population) frames.
    pub checkpoint_full_sessions: Counter,
    /// `cdba_ctrl_checkpoint_encoded_sessions_total{kind="dirty"}` —
    /// sessions carried by incremental (dirty-only) frames.
    pub checkpoint_dirty_sessions: Counter,
    /// `cdba_ctrl_restore_seconds` — wall-clock seconds per shard
    /// restore (chain apply + journal replay).
    pub restore_seconds: Histogram,
    /// `cdba_ctrl_shard_sessions{shard}`, indexed by shard.
    pub shard_sessions: Vec<Gauge>,
    /// `cdba_ctrl_live_sessions`.
    pub live_sessions: Gauge,
    /// `cdba_ctrl_slab_slots`.
    pub slab_slots: Gauge,
    /// `cdba_ctrl_available_budget`.
    pub available_budget: Gauge,
    /// `cdba_ctrl_alloc_changes` (snapshot-derived).
    pub changes: Gauge,
    /// `cdba_ctrl_signalling_cost` (snapshot-derived).
    pub signalling_cost: Gauge,
    /// `cdba_ctrl_bandwidth_cost` (snapshot-derived).
    pub bandwidth_cost: Gauge,
    /// `cdba_ctrl_max_delay_ticks` (snapshot-derived).
    pub max_delay: Gauge,
    /// `cdba_ctrl_snapshot_tick` — the tick the snapshot gauges were
    /// folded at, so a scraper knows their freshness.
    pub snapshot_tick: Gauge,
}

impl CtrlMetrics {
    /// Resolves every handle against `registry`, with one labelled series
    /// per shard where the quantity is shard-scoped.
    pub fn register(registry: &Registry, shards: usize) -> Self {
        let per_shard_counter = |name: &str, help: &str| -> Vec<Counter> {
            (0..shards)
                .map(|s| registry.counter_with(name, help, &[("shard", &s.to_string())]))
                .collect()
        };
        let per_shard_gauge = |name: &str, help: &str| -> Vec<Gauge> {
            (0..shards)
                .map(|s| registry.gauge_with(name, help, &[("shard", &s.to_string())]))
                .collect()
        };
        CtrlMetrics {
            ticks: registry.counter(
                "cdba_ctrl_ticks_total",
                "Ticks executed by the control plane",
            ),
            arrivals: registry.counter(
                "cdba_ctrl_arrivals_total",
                "Per-session arrival records delivered to tick batches",
            ),
            admitted: registry.counter(
                "cdba_ctrl_sessions_admitted_total",
                "Joins admitted under the envelope-based admission control",
            ),
            rejected: registry.counter(
                "cdba_ctrl_sessions_rejected_total",
                "Joins rejected by admission control (budget or tenant quota)",
            ),
            leaves: registry.counter(
                "cdba_ctrl_sessions_left_total",
                "Sessions drained and retired",
            ),
            events_replayed: registry.counter(
                "cdba_ctrl_journal_events_replayed_total",
                "Journal events replayed into restarted shard workers",
            ),
            shard_restarts: per_shard_counter(
                "cdba_ctrl_shard_restarts_total",
                "Shard-worker restarts performed by the supervisor",
            ),
            shard_checkpoints: per_shard_counter(
                "cdba_ctrl_checkpoints_total",
                "Shard checkpoints accepted by the driver",
            ),
            shard_checkpoint_bytes: per_shard_counter(
                "cdba_ctrl_checkpoint_bytes_total",
                "Binary-encoded checkpoint payload bytes accepted by the driver",
            ),
            checkpoint_full_sessions: registry.counter_with(
                "cdba_ctrl_checkpoint_encoded_sessions_total",
                "Session rows carried by accepted checkpoint frames, by frame kind",
                &[("kind", "full")],
            ),
            checkpoint_dirty_sessions: registry.counter_with(
                "cdba_ctrl_checkpoint_encoded_sessions_total",
                "Session rows carried by accepted checkpoint frames, by frame kind",
                &[("kind", "dirty")],
            ),
            restore_seconds: registry.histogram(
                "cdba_ctrl_restore_seconds",
                "Wall-clock seconds spent rebuilding a shard from its checkpoint \
                 chain plus journal replay",
                RESTORE_BOUNDS,
            ),
            shard_sessions: per_shard_gauge(
                "cdba_ctrl_shard_sessions",
                "Live sessions placed on the shard",
            ),
            live_sessions: registry.gauge(
                "cdba_ctrl_live_sessions",
                "Sessions admitted and not yet left",
            ),
            slab_slots: registry.gauge(
                "cdba_ctrl_slab_slots",
                "High-water size of the dense session key space (slab occupancy \
                 is live_sessions / slab_slots)",
            ),
            available_budget: registry.gauge(
                "cdba_ctrl_available_budget",
                "Aggregate bandwidth budget not committed to admission envelopes",
            ),
            changes: registry.gauge(
                "cdba_ctrl_alloc_changes",
                "Total allocation changes (RESET and stage signals) as of the last \
                 snapshot fold — the signalling count the paper minimizes",
            ),
            signalling_cost: registry.gauge(
                "cdba_ctrl_signalling_cost",
                "Total signalling cost under the Section-1 pricing, as of the last \
                 snapshot fold",
            ),
            bandwidth_cost: registry.gauge(
                "cdba_ctrl_bandwidth_cost",
                "Total bandwidth cost under the Section-1 pricing, as of the last \
                 snapshot fold",
            ),
            max_delay: registry.gauge(
                "cdba_ctrl_max_delay_ticks",
                "Maximum FIFO delay over all sessions, as of the last snapshot fold",
            ),
            snapshot_tick: registry.gauge(
                "cdba_ctrl_snapshot_tick",
                "Tick the snapshot-derived gauges were folded at",
            ),
        }
    }
}
