//! The shard executor: the event-driven state machine that drives session
//! allocators and meters.
//!
//! One [`ShardState`] owns every session placed on it. Both execution
//! backends — the inline deterministic fallback and the per-shard worker
//! threads — drive the *same* [`ShardState::handle_event`] code path, so
//! the two modes cannot diverge. Sessions never interact across shards
//! (a pooled group lives wholly on one shard), which is what makes the
//! service's metrics invariant under the shard count.

use crate::config::ServiceConfig;
use crate::meter::{SessionMetrics, SignallingMeter};
use cdba_analysis::cost::CostModel;
use cdba_core::config::{MultiConfig, SingleConfig};
use cdba_core::multi::pool::{SessionId as PoolSessionId, SessionPool};
use cdba_core::single::SingleSession;
use cdba_sim::Allocator;
use std::collections::HashMap;

/// A control event delivered to one shard. Within a shard, events apply in
/// send order (the channels are FIFO), which is all the ordering the
/// executor needs.
#[derive(Debug)]
pub(crate) enum Event {
    /// Place a dedicated session running the single-session algorithm.
    JoinDedicated {
        /// Service-wide session key.
        key: u64,
        /// Owning tenant.
        tenant: String,
    },
    /// Place a pooled group running the phased algorithm; all members land
    /// on this shard.
    JoinGroup {
        /// Service-wide group id.
        group: u64,
        /// Owning tenant.
        tenant: String,
        /// Service-wide keys of the members, in join order.
        members: Vec<u64>,
    },
    /// Begin draining a session out.
    Leave {
        /// The session to drain.
        key: u64,
    },
    /// Advance every session on this shard by one tick.
    Tick {
        /// `(key, bits)` arrivals for this tick; sessions not listed get 0.
        arrivals: Vec<(u64, f64)>,
    },
    /// Report all metrics (live and retired sessions) back.
    Collect {
        /// Where to send the report.
        reply: crossbeam::channel::Sender<ShardReport>,
    },
    /// Stop the worker loop.
    Shutdown,
}

/// One shard's answer to [`Event::Collect`].
#[derive(Debug, Clone)]
pub(crate) struct ShardReport {
    /// The reporting shard.
    pub shard: u64,
    /// Metrics of every session the shard has seen: live ones at their
    /// current totals, retired ones frozen at retirement.
    pub sessions: Vec<SessionMetrics>,
}

enum SessionKind {
    Dedicated(Box<SingleSession>),
    Pooled { group: u64, member: PoolSessionId },
}

struct SessionEntry {
    key: u64,
    tenant: String,
    meter: SignallingMeter,
    leaving: bool,
    kind: SessionKind,
}

struct GroupEntry {
    pool: SessionPool,
    by_member: HashMap<PoolSessionId, u64>,
}

/// The per-shard session store and tick loop.
pub(crate) struct ShardState {
    shard: u64,
    single_cfg: SingleConfig,
    multi_cfg: MultiConfig,
    cost: CostModel,
    window: usize,
    sessions: Vec<SessionEntry>,
    index: HashMap<u64, usize>,
    groups: HashMap<u64, GroupEntry>,
    retired: Vec<SessionMetrics>,
    scratch: Vec<f64>,
}

impl ShardState {
    pub(crate) fn new(shard: u64, cfg: &ServiceConfig) -> Self {
        ShardState {
            shard,
            single_cfg: cfg.single_config(),
            multi_cfg: cfg.multi_config(),
            cost: cfg.cost,
            window: cfg.w,
            sessions: Vec::new(),
            index: HashMap::new(),
            groups: HashMap::new(),
            retired: Vec::new(),
            scratch: Vec::new(),
        }
    }

    pub(crate) fn handle_event(&mut self, event: Event) {
        match event {
            Event::JoinDedicated { key, tenant } => self.join_dedicated(key, tenant),
            Event::JoinGroup {
                group,
                tenant,
                members,
            } => self.join_group(group, tenant, members),
            Event::Leave { key } => self.leave(key),
            Event::Tick { arrivals } => self.tick(&arrivals),
            Event::Collect { reply } => {
                // The service may already have dropped the receiver (e.g. a
                // torn-down snapshot); losing the report is then harmless.
                let _ = reply.send(self.report());
            }
            Event::Shutdown => {}
        }
    }

    fn push_session(&mut self, entry: SessionEntry) {
        self.index.insert(entry.key, self.sessions.len());
        self.sessions.push(entry);
    }

    fn join_dedicated(&mut self, key: u64, tenant: String) {
        let alg = Box::new(SingleSession::new(self.single_cfg.clone()));
        self.push_session(SessionEntry {
            key,
            tenant,
            meter: SignallingMeter::new(self.cost, self.window),
            leaving: false,
            kind: SessionKind::Dedicated(alg),
        });
    }

    fn join_group(&mut self, group: u64, tenant: String, members: Vec<u64>) {
        let entry = self.groups.entry(group).or_insert_with(|| GroupEntry {
            pool: SessionPool::new(self.multi_cfg.clone()),
            by_member: HashMap::new(),
        });
        let mut joined = Vec::with_capacity(members.len());
        for key in members {
            let member = entry.pool.join();
            entry.by_member.insert(member, key);
            joined.push((key, member));
        }
        for (key, member) in joined {
            self.push_session(SessionEntry {
                key,
                tenant: tenant.clone(),
                meter: SignallingMeter::new(self.cost, self.window),
                leaving: false,
                kind: SessionKind::Pooled { group, member },
            });
        }
    }

    fn leave(&mut self, key: u64) {
        let Some(&idx) = self.index.get(&key) else {
            return; // already retired — leave is idempotent at the shard
        };
        let entry = &mut self.sessions[idx];
        if entry.leaving {
            return;
        }
        entry.leaving = true;
        match entry.kind {
            SessionKind::Dedicated(_) => {
                // Nothing to tell the allocator; the session now receives
                // zero arrivals and retires once its link queue drains.
                if entry.meter.is_drained() {
                    self.retire(key);
                }
            }
            SessionKind::Pooled { group, member } => {
                if let Some(g) = self.groups.get_mut(&group) {
                    // The pool moves the residual backlog to the overflow
                    // queue and retires the slot once it drains.
                    let _ = g.pool.leave(member);
                }
            }
        }
    }

    fn tick(&mut self, arrivals: &[(u64, f64)]) {
        // Stage arrivals into a buffer parallel to the session vector.
        self.scratch.clear();
        self.scratch.resize(self.sessions.len(), 0.0);
        for &(key, bits) in arrivals {
            if let Some(&idx) = self.index.get(&key) {
                self.scratch[idx] += bits.max(0.0);
            }
        }

        let mut to_retire: Vec<u64> = Vec::new();

        // Pooled groups: submit, tick the pool once, meter each member.
        for group in self.groups.values_mut() {
            for (&member, &key) in &group.by_member {
                let idx = self.index[&key];
                if !self.sessions[idx].leaving {
                    let _ = group.pool.submit(member, self.scratch[idx]);
                }
            }
            let allocs = group.pool.tick();
            let mut seen: Vec<PoolSessionId> = Vec::with_capacity(allocs.len());
            for (member, alloc) in allocs {
                seen.push(member);
                let key = group.by_member[&member];
                let idx = self.index[&key];
                let entry = &mut self.sessions[idx];
                let arrived = if entry.leaving {
                    0.0
                } else {
                    self.scratch[idx]
                };
                entry.meter.record(arrived, alloc);
            }
            // A leaving member absent from the pool's output has retired
            // (its slot drained on an earlier tick).
            for (&member, &key) in &group.by_member {
                if !seen.contains(&member) {
                    to_retire.push(key);
                }
            }
        }

        // Dedicated sessions: one allocator step each.
        for idx in 0..self.sessions.len() {
            let arrived = if self.sessions[idx].leaving {
                0.0
            } else {
                self.scratch[idx]
            };
            let entry = &mut self.sessions[idx];
            if let SessionKind::Dedicated(alg) = &mut entry.kind {
                let alloc = alg.on_tick(arrived);
                entry.meter.record(arrived, alloc);
                if entry.leaving && entry.meter.is_drained() {
                    to_retire.push(entry.key);
                }
            }
        }

        for key in to_retire {
            self.retire(key);
        }
    }

    /// Freezes a session's metrics and removes it from the live set.
    fn retire(&mut self, key: u64) {
        let Some(idx) = self.index.remove(&key) else {
            return;
        };
        let entry = self.sessions.swap_remove(idx);
        if let Some(moved) = self.sessions.get(idx) {
            self.index.insert(moved.key, idx);
        }
        if let SessionKind::Pooled { group, member } = entry.kind {
            if let Some(g) = self.groups.get_mut(&group) {
                g.by_member.remove(&member);
                if g.by_member.is_empty() {
                    self.groups.remove(&group);
                }
            }
        }
        self.retired
            .push(entry.meter.metrics(entry.key, &entry.tenant, self.shard));
    }

    fn report(&self) -> ShardReport {
        let mut sessions = self.retired.clone();
        sessions.extend(
            self.sessions
                .iter()
                .map(|e| e.meter.metrics(e.key, &e.tenant, self.shard)),
        );
        ShardReport {
            shard: self.shard,
            sessions,
        }
    }

    /// Live session count (for tests).
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.sessions.len()
    }
}

/// The worker loop of one threaded shard: apply events until shutdown or
/// disconnection.
pub(crate) fn run_worker(mut state: ShardState, rx: crossbeam::channel::Receiver<Event>) {
    while let Ok(event) = rx.recv() {
        if matches!(event, Event::Shutdown) {
            break;
        }
        state.handle_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;

    fn shard() -> ShardState {
        let cfg = ServiceConfig::builder(1024.0)
            .session_b_max(16.0)
            .group_b_o(8.0)
            .offline_delay(4)
            .window(4)
            .build()
            .unwrap();
        ShardState::new(0, &cfg)
    }

    #[test]
    fn dedicated_lifecycle_joins_ticks_retires() {
        let mut s = shard();
        s.handle_event(Event::JoinDedicated {
            key: 7,
            tenant: "acme".into(),
        });
        for _ in 0..8 {
            s.handle_event(Event::Tick {
                arrivals: vec![(7, 2.0)],
            });
        }
        assert_eq!(s.live(), 1);
        s.handle_event(Event::Leave { key: 7 });
        // Zero-arrival ticks drain the shadow queue, then the slot retires.
        for _ in 0..32 {
            s.handle_event(Event::Tick { arrivals: vec![] });
        }
        assert_eq!(s.live(), 0);
        let report = s.report();
        assert_eq!(report.sessions.len(), 1);
        let m = &report.sessions[0];
        assert_eq!(m.session, 7);
        assert_eq!(m.tenant, "acme");
        assert!((m.total_served - m.total_arrived).abs() < 1e-9);
        assert!(m.changes > 0);
    }

    #[test]
    fn group_members_share_one_pool() {
        let mut s = shard();
        s.handle_event(Event::JoinGroup {
            group: 1,
            tenant: "acme".into(),
            members: vec![10, 11],
        });
        for _ in 0..12 {
            s.handle_event(Event::Tick {
                arrivals: vec![(10, 1.0), (11, 1.0)],
            });
        }
        let report = s.report();
        assert_eq!(report.sessions.len(), 2);
        for m in &report.sessions {
            assert!(m.total_allocated > 0.0, "pool served {m:?}");
        }
        // One member leaves; the pool drains it and the shard retires it.
        s.handle_event(Event::Leave { key: 10 });
        for _ in 0..32 {
            s.handle_event(Event::Tick {
                arrivals: vec![(11, 1.0)],
            });
        }
        assert_eq!(s.live(), 1);
        assert_eq!(s.groups.len(), 1);
        s.handle_event(Event::Leave { key: 11 });
        for _ in 0..32 {
            s.handle_event(Event::Tick { arrivals: vec![] });
        }
        assert_eq!(s.live(), 0);
        assert!(s.groups.is_empty(), "empty group is dropped");
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let mut s = shard();
        s.handle_event(Event::Tick {
            arrivals: vec![(99, 5.0)],
        });
        s.handle_event(Event::Leave { key: 99 });
        assert_eq!(s.live(), 0);
    }
}
