//! The shard executor: the event-driven state machine that drives session
//! allocators and meters.
//!
//! One [`ShardState`] owns every session placed on it. Both execution
//! backends — the inline deterministic fallback and the per-shard worker
//! threads — drive the *same* [`ShardState::handle_event`] code path, so
//! the two modes cannot diverge. Sessions never interact across shards
//! (a pooled group lives wholly on one shard), which is what makes the
//! service's metrics invariant under the shard count.
//!
//! The per-session hot state lives in a structure-of-arrays [`Columns`]
//! store parallel to the session [`Slab`]: every scalar the tick kernel
//! touches (staged arrivals, link backlogs, the `B_on` ladder level, the
//! meter counters and rolling window sums) is a column indexed by slot,
//! while the slab entry keeps only identity (key, tenant, kind, leaving).
//! A tick is then a few linear passes over the columns — scatter the
//! batched arrivals, step each pooled group, step each dedicated session —
//! instead of a pointer chase through boxed per-session objects. The
//! variable-size pieces (the low/high stage trackers, the delay tracker,
//! the utilization window) stay per-slot objects in side columns; the
//! float-op order inside the kernel replicates `SingleSession::on_tick`
//! and `SignallingMeter::record` exactly, so the columnar kernel is
//! bitwise-identical to the entry-based one it replaced (the `reference`
//! module keeps the old kernel as the lockstep oracle).
//!
//! Threaded workers are supervised: [`run_worker`] catches panics
//! (reporting a typed [`ShardFailure`] instead of dying silently),
//! periodically ships a [`ShardCheckpoint`] — the binary-encoded state of
//! every session's meter and algorithm — back to the driver, honours a
//! cancellation flag so a superseded worker cannot corrupt anything after
//! the supervisor moves on, and hosts the fault-injection hooks of
//! [`crate::fault`]. Every message carries the worker's *epoch* so the
//! driver can discard stragglers from replaced workers.

use crate::codec::columnar;
use crate::config::ServiceConfig;
use crate::fault::{FaultKind, FaultPlan};
use crate::meter::{delay_ticks, MeterCheckpoint, SessionMetrics};
use crate::slab::{KeyMap, Slab, SlotId};
use cdba_analysis::cost::CostModel;
use cdba_core::config::{MultiConfig, SingleConfig};
use cdba_core::multi::pool::{PoolCheckpoint, SessionId as PoolSessionId, SessionPool};
use cdba_core::single::{crossed, SingleCheckpoint};
use cdba_core::stage::{StageKind, StageLog};
use cdba_core::{
    bounds::{HighTrackerState, LowTrackerState},
    next_power_of_two,
};
use cdba_sim::streaming::DelayTrackerState;
use cdba_traffic::EPS;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A control event delivered to one shard. Within a shard, events apply in
/// send order (the channels are FIFO), which is all the ordering the
/// executor needs.
///
/// Payloads are `Arc`-shared with the driver's journal: delivering an
/// event costs a refcount bump, not a deep clone of tenants, member lists,
/// or arrival batches.
#[derive(Debug)]
pub(crate) enum Event {
    /// Place a dedicated session running the single-session algorithm.
    JoinDedicated {
        /// Service-wide session key.
        key: u64,
        /// Owning tenant.
        tenant: Arc<str>,
    },
    /// Place a pooled group running the phased algorithm; all members land
    /// on this shard.
    JoinGroup {
        /// Service-wide group id.
        group: u64,
        /// Owning tenant.
        tenant: Arc<str>,
        /// Service-wide keys of the members, in join order.
        members: Arc<[u64]>,
    },
    /// Begin draining a session out.
    Leave {
        /// The session to drain.
        key: u64,
    },
    /// Advance every session on this shard by one tick.
    Tick {
        /// `(key, bits)` arrivals for this tick; sessions not listed get 0.
        arrivals: Arc<[(u64, f64)]>,
    },
    /// Report all metrics (live and retired sessions) back.
    Collect {
        /// Where to send the report.
        reply: crossbeam::channel::Sender<ShardReport>,
    },
    /// Capture one session's restorable state (read-only, like
    /// [`Event::Collect`]) for a live migration. `None` if the key is not
    /// live on this shard or the session is pooled.
    ExportSession {
        /// The session to capture.
        key: u64,
        /// Where to send the captured state.
        reply: crossbeam::channel::Sender<Option<SessionCheckpoint>>,
    },
    /// Remove a migrated-away session *without* retiring its metrics —
    /// the session lives on elsewhere and its meter travelled with it.
    Forget {
        /// The session to remove.
        key: u64,
    },
    /// Re-create a migrated-in dedicated session from its checkpoint.
    Import {
        /// The captured state (key already rewritten to this service's).
        cp: Arc<SessionCheckpoint>,
    },
    /// Stop the worker loop.
    Shutdown,
}

/// One shard's answer to [`Event::Collect`].
///
/// Retired metrics are shared with the shard's accumulator (`Arc`), so a
/// steady-state report allocates proportionally to the *live* session
/// count only.
#[derive(Debug, Clone)]
pub(crate) struct ShardReport {
    /// The reporting shard.
    pub shard: u64,
    /// Epoch of the worker that produced the report (0 inline). The driver
    /// discards reports from superseded workers.
    pub epoch: u64,
    /// Metrics of retired sessions, frozen at retirement.
    pub retired: Arc<Vec<SessionMetrics>>,
    /// Metrics of live sessions at their current totals, in slot order.
    pub live: Vec<SessionMetrics>,
}

/// A replayable control event, as the driver journals it. Everything but
/// `Collect`/`Shutdown` — exactly the events that mutate shard state.
///
/// Journal entries share their payload allocations with the delivered
/// [`Event`], so journaling costs a refcount bump per event.
#[derive(Debug, Clone)]
pub(crate) enum ReplayEvent {
    /// See [`Event::JoinDedicated`].
    JoinDedicated {
        /// Service-wide session key.
        key: u64,
        /// Owning tenant.
        tenant: Arc<str>,
    },
    /// See [`Event::JoinGroup`].
    JoinGroup {
        /// Service-wide group id.
        group: u64,
        /// Owning tenant.
        tenant: Arc<str>,
        /// Member keys in join order.
        members: Arc<[u64]>,
    },
    /// See [`Event::Leave`].
    Leave {
        /// The session to drain.
        key: u64,
    },
    /// See [`Event::Tick`].
    Tick {
        /// `(key, bits)` arrivals for the tick.
        arrivals: Arc<[(u64, f64)]>,
    },
    /// See [`Event::Forget`].
    Forget {
        /// The session to remove without retiring.
        key: u64,
    },
    /// See [`Event::Import`].
    Import {
        /// The captured state to re-create the session from.
        cp: Arc<SessionCheckpoint>,
    },
}

impl ReplayEvent {
    /// The executor event this journal entry replays as. Payloads are
    /// shared, not copied.
    pub(crate) fn to_event(&self) -> Event {
        match self {
            ReplayEvent::JoinDedicated { key, tenant } => Event::JoinDedicated {
                key: *key,
                tenant: tenant.clone(),
            },
            ReplayEvent::JoinGroup {
                group,
                tenant,
                members,
            } => Event::JoinGroup {
                group: *group,
                tenant: tenant.clone(),
                members: members.clone(),
            },
            ReplayEvent::Leave { key } => Event::Leave { key: *key },
            ReplayEvent::Tick { arrivals } => Event::Tick {
                arrivals: arrivals.clone(),
            },
            ReplayEvent::Forget { key } => Event::Forget { key: *key },
            ReplayEvent::Import { cp } => Event::Import { cp: cp.clone() },
        }
    }
}

/// A typed worker-failure report: the worker panicked (organically or via
/// an injected fault) and has exited.
#[derive(Debug, Clone)]
pub(crate) struct ShardFailure {
    /// The failed shard.
    pub shard: u64,
    /// Epoch of the failed worker.
    pub epoch: u64,
    /// The panic message.
    pub reason: String,
}

/// One periodic checkpoint frame of one shard, shipped to the driver so a
/// restarted worker can resume from the retained chain instead of
/// replaying the whole history.
///
/// The state travels as one columnar frame ([`crate::codec::columnar`]):
/// a genesis frame carries every live session, an incremental frame only
/// the sessions dirtied since the previous frame. The worker encodes into
/// pooled column buffers it reuses across frames, so the steady-state
/// cost per checkpoint is one O(dirty) encode pass plus one `Arc<[u8]>`
/// copy — not a full-population serialization.
#[derive(Debug, Clone)]
pub(crate) struct ShardCheckpoint {
    /// The checkpointing shard.
    pub shard: u64,
    /// Epoch of the worker that took the checkpoint.
    pub epoch: u64,
    /// Replayable events applied when the checkpoint was taken. The
    /// driver trims its journal to this point: recovery restores the
    /// chain and replays only the journal suffix past this count.
    pub events_applied: u64,
    /// [`columnar::KIND_GENESIS`] or [`columnar::KIND_INCREMENTAL`]; the
    /// driver resets its retained chain on every genesis.
    pub kind: u8,
    /// Session rows the frame carries (the whole population for a
    /// genesis, the dirty set for an incremental) — observability only.
    pub sessions: u64,
    /// The frame payload ([`columnar::parse`] +
    /// [`ShardState::apply_frame`] restore it).
    pub bytes: Arc<[u8]>,
}

/// A restorable snapshot of one session entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct SessionCheckpoint {
    /// Service-wide session key.
    pub key: u64,
    /// Owning tenant.
    pub tenant: Arc<str>,
    /// The meter state.
    pub meter: MeterCheckpoint,
    /// `true` if the session is draining out.
    pub leaving: bool,
    /// Single-session algorithm state; `Some` iff the session is
    /// dedicated.
    pub dedicated: Option<SingleCheckpoint>,
    /// `(group id, raw pool member id)`; `Some` iff the session is pooled.
    pub pooled: Option<(u64, u64)>,
}

impl SessionCheckpoint {
    /// Domain-validates a decoded migration blob before any of it reaches
    /// a shard: every `f64` must be finite (non-negative where the domain
    /// requires it) and the tracker shapes must be internally consistent,
    /// i.e. exactly the states `HighTracker::restore` and friends would
    /// otherwise reject by panicking. Returns the first offending field.
    ///
    /// Worker-produced checkpoints satisfy this by construction; only
    /// blobs crossing a trust boundary (fleet migration import) pay the
    /// scan.
    pub(crate) fn validate(&self) -> Result<(), &'static str> {
        fn nn(v: f64) -> bool {
            v.is_finite() && v >= 0.0
        }
        let m = &self.meter;
        if m.window == 0 {
            return Err("meter.window");
        }
        if !nn(m.cost.per_bandwidth_tick) || !nn(m.cost.per_change) {
            return Err("meter.cost");
        }
        if !nn(m.shadow_backlog) {
            return Err("meter.shadow_backlog");
        }
        if !nn(m.delay.max_delay_exact) {
            return Err("meter.delay.max_delay_exact");
        }
        if m.delay.pending.iter().any(|&(_, bits)| !nn(bits)) {
            return Err("meter.delay.pending");
        }
        if m.recent.len() > m.window {
            return Err("meter.recent");
        }
        if m.recent.iter().any(|&(a, b)| !nn(a) || !nn(b)) {
            return Err("meter.recent");
        }
        if !m.window_arrived.is_finite() || !m.window_allocated.is_finite() {
            return Err("meter.window_sums");
        }
        if m.min_windowed_utilization.is_some_and(|u| !nn(u)) {
            return Err("meter.min_windowed_utilization");
        }
        if !nn(m.current_alloc) {
            return Err("meter.current_alloc");
        }
        if !nn(m.peak_allocation) {
            return Err("meter.peak_allocation");
        }
        if !nn(m.total_arrived) || !nn(m.total_served) || !nn(m.total_allocated) {
            return Err("meter.totals");
        }
        if self.dedicated.is_some() == self.pooled.is_some() {
            return Err("kind");
        }
        if let Some(alg) = &self.dedicated {
            let cfg = &alg.cfg;
            if !(cfg.b_max.is_finite() && cfg.b_max > 0.0) {
                return Err("alg.cfg.b_max");
            }
            if !(cfg.u_o.is_finite() && cfg.u_o > 0.0 && cfg.u_o <= 1.0) {
                return Err("alg.cfg.u_o");
            }
            if cfg.d_o == 0 {
                return Err("alg.cfg.d_o");
            }
            if cfg.w == 0 {
                return Err("alg.cfg.w");
            }
            if !nn(alg.backlog) {
                return Err("alg.backlog");
            }
            if !nn(alg.b_on) {
                return Err("alg.b_on");
            }
            match (&alg.stage_low, &alg.stage_high) {
                (Some(low), Some(high)) => {
                    if low.d_o == 0 {
                        return Err("alg.stage_low.d_o");
                    }
                    if low
                        .hull
                        .iter()
                        .any(|&(x, y)| !x.is_finite() || !y.is_finite())
                    {
                        return Err("alg.stage_low.hull");
                    }
                    if !nn(low.total) || !nn(low.low) {
                        return Err("alg.stage_low");
                    }
                    if !(high.u_o.is_finite() && high.u_o > 0.0 && high.u_o <= 1.0) {
                        return Err("alg.stage_high.u_o");
                    }
                    if high.w == 0 {
                        return Err("alg.stage_high.w");
                    }
                    if !(high.grace.is_finite() && high.grace > 0.0) {
                        return Err("alg.stage_high.grace");
                    }
                    if high.window.len() > high.w || high.window.iter().any(|&a| !nn(a)) {
                        return Err("alg.stage_high.window");
                    }
                    if !nn(high.window_sum) {
                        return Err("alg.stage_high.window_sum");
                    }
                    if high.min_window_sum.is_some_and(|s| !nn(s)) {
                        return Err("alg.stage_high.min_window_sum");
                    }
                    if high.ticks < high.window.len() {
                        return Err("alg.stage_high.ticks");
                    }
                }
                (None, None) => {}
                _ => return Err("alg.stage"),
            }
        }
        Ok(())
    }

    /// Checks that an imported checkpoint runs the importing service's
    /// configuration: algorithm config, meter window, pricing, and stage
    /// tracker parameters must all match, and the two stage trackers must
    /// agree on the stage clock. Checkpoints produced by a service with
    /// the same configuration conform by construction; anything else
    /// would silently continue the session under different rules than it
    /// was admitted with — the kernel keeps one shard-wide parameter
    /// block instead of per-session config copies and would apply the
    /// service's parameters regardless, so a non-conforming blob is
    /// rejected here with a typed error instead.
    pub(crate) fn conforms(&self, cfg: &ServiceConfig) -> Result<(), &'static str> {
        let single = cfg.single_config();
        let m = &self.meter;
        if m.window != cfg.w {
            return Err("meter.window differs from the service window");
        }
        if m.cost != cfg.cost {
            return Err("meter.cost differs from the service pricing");
        }
        if let Some(alg) = &self.dedicated {
            if alg.cfg != single {
                return Err("alg.cfg differs from the service config");
            }
            if let (Some(low), Some(high)) = (&alg.stage_low, &alg.stage_high) {
                if low.d_o != single.d_o {
                    return Err("alg.stage_low.d_o differs from the service config");
                }
                if high.u_o != single.u_o || high.w != single.w || high.grace != single.b_max {
                    return Err("alg.stage_high differs from the service config");
                }
                if low.ticks != high.ticks {
                    return Err("alg.stage clocks disagree");
                }
            }
        }
        Ok(())
    }
}

/// A restorable snapshot of one pooled group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct GroupCheckpoint {
    /// Service-wide group id.
    pub group: u64,
    /// The shared pool state.
    pub pool: PoolCheckpoint,
    /// `(raw pool member id, session key)` pairs, sorted by member id.
    pub members: Vec<(u64, u64)>,
}

/// The full exportable state of a [`ShardState`]. Restoring with
/// [`ShardState::restore`] reproduces the shard bitwise (both the binary
/// codec and the in-memory form preserve every `f64` exactly). The live
/// checkpoint path ships columnar frames instead; this row-oriented form
/// is the reference the lockstep tests canonicalize through.
#[cfg_attr(not(test), allow(dead_code))]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct ShardStateCheckpoint {
    /// Live sessions, in slot order (order matters: ticks process
    /// dedicated sessions in it).
    pub sessions: Vec<SessionCheckpoint>,
    /// Pooled groups, sorted by group id.
    pub groups: Vec<GroupCheckpoint>,
    /// Metrics of retired sessions, frozen at retirement. Shared with the
    /// shard's accumulator — capturing a checkpoint bumps a refcount
    /// instead of cloning the history.
    pub retired: Arc<Vec<SessionMetrics>>,
    /// Ticks the shard has processed.
    pub ticks: u64,
}

enum SessionKind {
    Dedicated,
    Pooled { group: u64, member: PoolSessionId },
}

/// Identity-only session entry; every scalar the tick kernel reads or
/// writes lives in [`Columns`], indexed by this entry's slot.
struct SessionEntry {
    key: u64,
    tenant: Arc<str>,
    leaving: bool,
    kind: SessionKind,
}

struct GroupEntry {
    /// Service-wide group id (the `group_index` key, kept for checkpoints
    /// and cleanup).
    group: u64,
    pool: SessionPool,
    /// `(pool member id, session key, session slot)` in join order. Pool
    /// ids are issued by one monotone counter, so this is ascending by
    /// member id — the tick kernel merges it against the pool's (equally
    /// ascending) allocation output with one cursor.
    by_member: Vec<(PoolSessionId, u64, SlotId)>,
}

/// Slot flags packed into the `flags` column. Crate-visible because the
/// columnar checkpoint codec encodes the flags column verbatim (minus
/// [`F_DIRTY`]) and validates decoded frames against these bits.
pub(crate) const F_LIVE: u32 = 1;
/// The slot runs the single-session algorithm (vs a pooled member).
pub(crate) const F_DEDICATED: u32 = 2;
/// The session is draining out.
pub(crate) const F_LEAVING: u32 = 4;
/// The bounds trackers are active — the columnar form of the algorithm's
/// `Mode::Stage` (clear during a RESET).
pub(crate) const F_STAGE_OPEN: u32 = 8;
/// The slot mutated since the last checkpoint frame was encoded. Set by
/// every mutation path (join, tick, leave, import), cleared when a
/// columnar checkpoint captures the slot, and masked out of the encoded
/// flags column — the bit is emission bookkeeping, not session state.
/// Note a tick dirties *every* live session (the meter's clocks, rings,
/// and window sums all advance), so dirty-only frames pay off on the
/// churn between ticks, not within a ticking interval.
const F_DIRTY: u32 = 16;

/// Upper bound on the session and group keys a checkpoint frame may
/// carry. The driver issues keys from one monotone counter and the
/// [`crate::slab::KeyMap`] is direct-mapped (one table slot per key up to
/// the maximum), so the table a frame forces into existence is
/// proportional to its largest key — a hostile frame naming key `2^60`
/// would otherwise demand an exbi-scale allocation before any row
/// semantics are checked. `2^28` keys (a 2 GiB table, far past any
/// population this service addresses) keeps the worst case survivable
/// while never rejecting a frame a real driver could produce.
pub(crate) const MAX_FRAME_KEY: u64 = 1 << 28;

/// Shard-uniform kernel parameters, derived once per tick from the
/// service config. Every session on a shard runs the same configuration
/// (joins read it, and imports are validated against it), so none of
/// these belong in per-session state.
#[derive(Clone, Copy)]
struct KernelParams {
    /// Per-session allocation cap `B_max` (also the stage grace value).
    b_max: f64,
    /// Offline delay `D_O`.
    d_o: u64,
    /// `high(t)` denominator `U_O · W` — one multiply hoisted out of the
    /// per-session division; the product is the same f64 every time, so
    /// hoisting it cannot move a bit.
    high_denom: f64,
    /// Window length `W` (bounds-tracker and meter windows share it).
    w: usize,
}

/// Pops hull points while the new point makes the tail non-convex —
/// `HullLowTracker::add_point`, same cross-product test.
fn hull_add_point(hull: &mut Vec<(f64, f64)>, p: (f64, f64)) {
    while hull.len() >= 2 {
        let a = hull[hull.len() - 2];
        let b = hull[hull.len() - 1];
        let cross = (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0);
        if cross <= 0.0 {
            hull.pop();
        } else {
            break;
        }
    }
    hull.push(p);
}

/// Maximum slope from a hull vertex to the query point —
/// `HullLowTracker::max_slope`, same unimodal binary search. The slope
/// at the answer index was already computed by the search's last
/// comparison, so it is reused instead of divided again (the same index
/// gives the same f64 — division is deterministic).
fn hull_max_slope(hull: &[(f64, f64)], q: (f64, f64)) -> f64 {
    debug_assert!(!hull.is_empty());
    let slope_to = |i: usize| {
        let p = hull[i];
        (q.1 - p.1) / (q.0 - p.0)
    };
    let (mut lo, mut hi) = (0usize, hull.len() - 1);
    let mut cached = None;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let a = slope_to(mid);
        let b = slope_to(mid + 1);
        if a < b {
            lo = mid + 1;
            cached = Some((mid + 1, b));
        } else {
            hi = mid;
            cached = Some((mid, a));
        }
    }
    match cached {
        Some((i, s)) if i == lo => s,
        _ => slope_to(lo),
    }
}

/// Structure-of-arrays per-session state: one dense column per scalar
/// field the tick kernel reads or writes, indexed by session slot and
/// grouped below by the sweep phase that touches it. Each phase pass
/// streams exactly the columns it uses, so the cache-line footprint of a
/// session-tick is the sum of the phase working sets — roughly half the
/// packed-record layout this replaces, which dragged all 256 bytes of a
/// slot through the cache on every pass whether the pass read them or
/// not. There are no per-session heap objects, no `Option` discriminants,
/// and no per-slot configuration (every session on a shard runs the
/// shard's [`KernelParams`]; imports are validated to conform at the
/// service boundary).
///
/// The sweep phases ([`ChunkView::sweep`]) replicate
/// `SingleSession::on_tick` (with its `HullLowTracker` / `HighTracker`
/// pushes inlined) and `SignallingMeter::record` float-op for float-op
/// *per field*: one field's operation sequence is never reordered, while
/// independent fields may advance in different passes — IEEE 754 ops are
/// deterministic functions of their inputs, so reordering across fields
/// cannot move a bit of any of them.
#[derive(Default)]
struct Columns {
    // -- scatter --
    /// Batched arrivals staged for the current tick (the scatter target).
    /// All-zero between ticks: the scatter records every written index in
    /// `touched` and the tick clears exactly those — O(arrivals), not
    /// O(slots).
    arrived: Vec<f64>,
    /// Slot indices the current tick's scatter wrote.
    touched: Vec<u32>,
    // -- identity --
    /// `F_*` occupancy and mode bits.
    flags: Vec<u32>,
    /// Session key per slot, so the dedicated pass can emit retirements
    /// without walking the identity slab.
    keys: Vec<u64>,
    // -- tracker-push phase --
    /// Stage ticks consumed — the low and high trackers open together
    /// and advance in lockstep, so one counter serves both (imports are
    /// validated to agree).
    stage_ticks: Vec<u64>,
    /// Low tracker: total bits arrived this stage.
    low_total: Vec<f64>,
    /// High tracker: running sum of the window ring.
    high_window_sum: Vec<f64>,
    /// High tracker: minimum full-window sum (`+∞` while in grace).
    high_min_window_sum: Vec<f64>,
    /// High-tracker window ring: oldest-entry index.
    high_head: Vec<u32>,
    /// High-tracker window ring: occupancy (≤ `W`).
    high_len: Vec<u32>,
    // -- hull-query phase --
    /// Low tracker: running-max `low`.
    low_low: Vec<f64>,
    // -- decision phase --
    /// Current `B_on` ladder level.
    b_on: Vec<f64>,
    /// Dedicated link-queue backlog (`SingleSession`'s `BitQueue`).
    backlog: Vec<f64>,
    /// Ticks the algorithm has processed.
    alg_tick: Vec<u64>,
    // -- meter flow phase --
    /// Meter shadow link-queue backlog.
    shadow_backlog: Vec<f64>,
    /// Allocation of the previous tick (change detection).
    current_alloc: Vec<f64>,
    /// Allocation changes counted.
    changes: Vec<u64>,
    /// Peak single-tick allocation.
    peak_alloc: Vec<f64>,
    /// Total bits arrived.
    total_arrived: Vec<f64>,
    /// Total bits served.
    total_served: Vec<f64>,
    /// Total allocated bandwidth.
    total_allocated: Vec<f64>,
    // -- delay-FIFO phase --
    /// Arrival tick of the delay FIFO's head entry.
    pend_tick: Vec<u64>,
    /// Unserved bits of the delay FIFO's head entry.
    pend_bits: Vec<f64>,
    /// Delay FIFO occupancy, counting the inline head; entries past the
    /// head live in the `pend_spill` column.
    pend_len: Vec<u32>,
    /// Ticks the delay tracker has consumed.
    delay_tick: Vec<u64>,
    /// Maximum whole-tick FIFO delay observed.
    max_delay: Vec<u64>,
    /// Maximum exact (fractional) FIFO delay observed.
    max_delay_exact: Vec<f64>,
    // -- utilization-window phase --
    /// Ticks metered.
    meter_ticks: Vec<u64>,
    /// Rolling sum of windowed arrivals.
    window_arrived: Vec<f64>,
    /// Rolling sum of windowed allocation.
    window_allocated: Vec<f64>,
    /// Meter recent ring: oldest-entry index.
    recent_head: Vec<u32>,
    /// Meter recent ring: occupancy (≤ `W`).
    recent_len: Vec<u32>,
    /// Minimum windowed utilization so far (`NaN` encodes "none yet";
    /// a real minimum is never NaN — the ratio has a positive finite
    /// denominator).
    min_util: Vec<f64>,
    // -- side columns (variable-size per-slot state) --
    /// Low tracker: lower convex hull vertices `(x, P[x])` per slot.
    hull: Vec<Vec<(f64, f64)>>,
    /// High-tracker window rings, *time-major*: ring position `q` of
    /// slot `i` lives at `high_ring[q·ring_cap + i]`, under the slot's
    /// `high_head`/`high_len` cursors. Sessions that joined together
    /// advance their cursors in lockstep, so a tick's ring traffic
    /// lands on one densely shared row (8 bytes per slot) instead of
    /// dragging a `W`-stride cache line per slot through the sweep —
    /// the layout exists for that access pattern.
    high_ring: Vec<f64>,
    /// Meter `(arrivals, allocation)` rings, time-major like
    /// `high_ring` under `recent_head`/`recent_len`.
    recent_ring: Vec<(f64, f64)>,
    /// Slots-per-row capacity of the two time-major rings (grown
    /// geometrically: a row insert on growth costs O(W·slots), so
    /// doubling amortizes it to O(W) per join).
    ring_cap: usize,
    /// Delay-FIFO entries past the inline head. Steady traffic keeps at
    /// most one pending entry (served each tick), so the spill deque is
    /// cold; only a backlogged session touches it.
    pend_spill: Vec<VecDeque<(u64, f64)>>,
    /// Stage transition log (touched only on open/close).
    stages: Vec<StageLog>,
}

impl Columns {
    /// Extends every column to cover `bound` slots (rings grow by whole
    /// `W`-sized strides; existing ring contents are append-stable).
    fn grow_to(&mut self, bound: usize, w: usize) {
        if self.flags.len() >= bound {
            return;
        }
        self.arrived.resize(bound, 0.0);
        self.flags.resize(bound, 0);
        self.keys.resize(bound, 0);
        self.stage_ticks.resize(bound, 0);
        self.low_total.resize(bound, 0.0);
        self.high_window_sum.resize(bound, 0.0);
        self.high_min_window_sum.resize(bound, f64::INFINITY);
        self.high_head.resize(bound, 0);
        self.high_len.resize(bound, 0);
        self.low_low.resize(bound, 0.0);
        self.b_on.resize(bound, 0.0);
        self.backlog.resize(bound, 0.0);
        self.alg_tick.resize(bound, 0);
        self.shadow_backlog.resize(bound, 0.0);
        self.current_alloc.resize(bound, 0.0);
        self.changes.resize(bound, 0);
        self.peak_alloc.resize(bound, 0.0);
        self.total_arrived.resize(bound, 0.0);
        self.total_served.resize(bound, 0.0);
        self.total_allocated.resize(bound, 0.0);
        self.pend_tick.resize(bound, 0);
        self.pend_bits.resize(bound, 0.0);
        self.pend_len.resize(bound, 0);
        self.delay_tick.resize(bound, 0);
        self.max_delay.resize(bound, 0);
        self.max_delay_exact.resize(bound, 0.0);
        self.meter_ticks.resize(bound, 0);
        self.window_arrived.resize(bound, 0.0);
        self.window_allocated.resize(bound, 0.0);
        self.recent_head.resize(bound, 0);
        self.recent_len.resize(bound, 0);
        self.min_util.resize(bound, f64::NAN);
        self.hull.resize_with(bound, Vec::new);
        if bound > self.ring_cap {
            // Time-major rings re-lay out on growth (every row shifts),
            // so the capacity doubles to amortize; surviving rows copy
            // over verbatim — append-stable, like the scalar resizes.
            let new_cap = bound.max(self.ring_cap * 2);
            let mut high = vec![0.0f64; new_cap * w];
            let mut recent = vec![(0.0f64, 0.0f64); new_cap * w];
            for q in 0..w {
                let (old, new) = (q * self.ring_cap, q * new_cap);
                high[new..new + self.ring_cap]
                    .copy_from_slice(&self.high_ring[old..old + self.ring_cap]);
                recent[new..new + self.ring_cap]
                    .copy_from_slice(&self.recent_ring[old..old + self.ring_cap]);
            }
            self.high_ring = high;
            self.recent_ring = recent;
            self.ring_cap = new_cap;
        }
        self.pend_spill.resize_with(bound, VecDeque::new);
        self.stages.resize_with(bound, StageLog::new);
    }

    /// Resets every scalar column of slot `i` to the vacant-slot state:
    /// zeros, with the grace (`+∞`) and none-yet (`NaN`) sentinels armed.
    fn reset_scalars(&mut self, i: usize) {
        self.arrived[i] = 0.0;
        self.flags[i] = 0;
        self.stage_ticks[i] = 0;
        self.low_total[i] = 0.0;
        self.high_window_sum[i] = 0.0;
        self.high_min_window_sum[i] = f64::INFINITY;
        self.high_head[i] = 0;
        self.high_len[i] = 0;
        self.low_low[i] = 0.0;
        self.b_on[i] = 0.0;
        self.backlog[i] = 0.0;
        self.alg_tick[i] = 0;
        self.shadow_backlog[i] = 0.0;
        self.current_alloc[i] = 0.0;
        self.changes[i] = 0;
        self.peak_alloc[i] = 0.0;
        self.total_arrived[i] = 0.0;
        self.total_served[i] = 0.0;
        self.total_allocated[i] = 0.0;
        self.pend_tick[i] = 0;
        self.pend_bits[i] = 0.0;
        self.pend_len[i] = 0;
        self.delay_tick[i] = 0;
        self.max_delay[i] = 0;
        self.max_delay_exact[i] = 0.0;
        self.meter_ticks[i] = 0;
        self.window_arrived[i] = 0.0;
        self.window_allocated[i] = 0.0;
        self.recent_head[i] = 0;
        self.recent_len[i] = 0;
        self.min_util[i] = f64::NAN;
    }

    /// Initializes slot `i` for a fresh session (meter state as
    /// `SignallingMeter::new`; dedicated slots additionally get their
    /// allocator state via [`Columns::init_dedicated`]). The ring regions
    /// need no clearing: their cursors reset and writes precede reads.
    fn init_fresh(&mut self, i: usize) {
        self.reset_scalars(i);
        self.flags[i] = F_LIVE | F_DIRTY;
        self.hull[i].clear();
        self.pend_spill[i].clear();
        self.stages[i] = StageLog::new();
    }

    /// Gives slot `i` a fresh dedicated allocator — `SingleSession::new`
    /// over the columns: stage 0 opens immediately with fresh trackers
    /// (which the vacant-slot scalars already encode).
    fn init_dedicated(&mut self, i: usize) {
        let mut stages = StageLog::new();
        stages.open(0);
        self.stages[i] = stages;
        self.flags[i] |= F_DEDICATED | F_STAGE_OPEN;
    }

    /// Restores slot `i` from a session checkpoint, bitwise.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not conform to the shard's
    /// configuration. The migration import path pre-validates at the
    /// service boundary ([`SessionCheckpoint::validate`]), turning
    /// hostile blobs into typed errors before they get here; crash
    /// recovery restores the shard's own checkpoints, which conform by
    /// construction. A panic here therefore means a corrupted recovery
    /// payload, and degrades to a downed shard under `catch_unwind`.
    fn restore_slot(&mut self, i: usize, cp: &SessionCheckpoint, cfg: &SingleConfig) {
        let w = cfg.w;
        let m = &cp.meter;
        assert_eq!(m.window, w, "meter window must match the service window");
        assert!(
            m.recent.len() <= w,
            "recent holds {} entries but the window is {w}",
            m.recent.len()
        );
        self.reset_scalars(i);
        self.hull[i].clear();
        self.pend_spill[i].clear();
        self.flags[i] = F_LIVE;
        if cp.leaving {
            self.flags[i] |= F_LEAVING;
        }
        self.shadow_backlog[i] = m.shadow_backlog;
        self.current_alloc[i] = m.current_alloc;
        self.peak_alloc[i] = m.peak_allocation;
        self.total_arrived[i] = m.total_arrived;
        self.total_served[i] = m.total_served;
        self.total_allocated[i] = m.total_allocated;
        self.window_arrived[i] = m.window_arrived;
        self.window_allocated[i] = m.window_allocated;
        self.meter_ticks[i] = m.ticks;
        self.changes[i] = m.changes;
        self.min_util[i] = m.min_windowed_utilization.unwrap_or(f64::NAN);
        for (j, &pair) in m.recent.iter().enumerate() {
            self.recent_ring[j * self.ring_cap + i] = pair;
        }
        self.recent_len[i] = m.recent.len() as u32;
        let d = &m.delay;
        self.delay_tick[i] = d.tick as u64;
        self.max_delay[i] = d.max_delay as u64;
        self.max_delay_exact[i] = d.max_delay_exact;
        self.pend_len[i] = d.pending.len() as u32;
        if let Some(&(t0, bits)) = d.pending.first() {
            self.pend_tick[i] = t0 as u64;
            self.pend_bits[i] = bits;
            self.pend_spill[i].extend(d.pending[1..].iter().map(|&(t, b)| (t as u64, b)));
        }
        match &cp.dedicated {
            Some(alg) => {
                assert_eq!(
                    &alg.cfg, cfg,
                    "imported algorithm config must match the service's"
                );
                self.flags[i] |= F_DEDICATED;
                self.backlog[i] = alg.backlog;
                self.b_on[i] = alg.b_on;
                self.alg_tick[i] = alg.tick as u64;
                match (&alg.stage_low, &alg.stage_high) {
                    (Some(low), Some(high)) => {
                        assert!(
                            low.d_o == cfg.d_o
                                && high.u_o == cfg.u_o
                                && high.w == w
                                && high.grace == cfg.b_max,
                            "imported stage trackers must match the service config"
                        );
                        assert_eq!(low.ticks, high.ticks, "stage trackers advance in lockstep");
                        assert!(
                            high.window.len() <= w,
                            "window holds {} entries but w is {w}",
                            high.window.len()
                        );
                        assert!(
                            high.ticks >= high.window.len(),
                            "{} ticks cannot have filled {} window entries",
                            high.ticks,
                            high.window.len()
                        );
                        self.flags[i] |= F_STAGE_OPEN;
                        self.stage_ticks[i] = low.ticks as u64;
                        self.low_total[i] = low.total;
                        self.low_low[i] = low.low;
                        self.hull[i].extend_from_slice(&low.hull);
                        for (j, &a) in high.window.iter().enumerate() {
                            self.high_ring[j * self.ring_cap + i] = a;
                        }
                        self.high_len[i] = high.window.len() as u32;
                        self.high_window_sum[i] = high.window_sum;
                        self.high_min_window_sum[i] = high.min_window_sum.unwrap_or(f64::INFINITY);
                    }
                    (None, None) => {}
                    _ => panic!("checkpoint carries exactly one of the two stage trackers"),
                }
                self.stages[i] = alg.stages.clone();
            }
            None => {
                self.stages[i] = StageLog::new();
            }
        }
    }

    /// Releases a vacated slot's heavy state; the next occupant re-inits.
    fn clear_slot(&mut self, i: usize) {
        self.reset_scalars(i);
        self.keys[i] = 0;
        self.hull[i] = Vec::new();
        self.pend_spill[i] = VecDeque::new();
        self.stages[i] = StageLog::new();
    }

    /// Splits slots `[0, ends.last())` into one [`ChunkView`] per entry
    /// of `ends` (ascending, non-empty): view `c` covers slots
    /// `[ends[c-1], ends[c])`, with each time-major ring row sliced to
    /// the matching slot range. The views borrow disjoint regions of
    /// every column, so they can be swept concurrently.
    fn chunk_views(&mut self, ends: &[usize], w: usize) -> Vec<ChunkView<'_>> {
        let bound = *ends.last().expect("at least one chunk");
        // The rings carve row-by-row: chunk `c` gets row `q`'s subrange
        // for its slots, for every `q`.
        fn carve_ring_rows<'a, T>(
            ring: &'a mut [T],
            cap: usize,
            w: usize,
            ends: &[usize],
        ) -> Vec<Vec<&'a mut [T]>> {
            let mut per_chunk: Vec<Vec<&'a mut [T]>> =
                ends.iter().map(|_| Vec::with_capacity(w)).collect();
            let mut rest = ring;
            for _ in 0..w {
                let (mut row, tail) = rest.split_at_mut(cap);
                rest = tail;
                let mut lo = 0usize;
                for (c, &hi) in ends.iter().enumerate() {
                    let (seg, keep) = row.split_at_mut(hi - lo);
                    per_chunk[c].push(seg);
                    row = keep;
                    lo = hi;
                }
            }
            per_chunk
        }
        let mut high_rows =
            carve_ring_rows(&mut self.high_ring, self.ring_cap, w, ends).into_iter();
        let mut recent_rows =
            carve_ring_rows(&mut self.recent_ring, self.ring_cap, w, ends).into_iter();
        // Shrinking-cursor slices over each column; `carve!` peels the
        // next chunk's window off the front.
        macro_rules! cursors {
            ($($col:ident),+ $(,)?) => {
                $(let mut $col = &mut *self.$col;)+
            };
        }
        macro_rules! carve {
            ($cur:ident, $n:expr) => {{
                let (head, tail) = std::mem::take(&mut $cur).split_at_mut($n);
                $cur = tail;
                head
            }};
        }
        let mut arrived = &self.arrived[..bound];
        cursors!(
            flags,
            keys,
            stage_ticks,
            low_total,
            high_window_sum,
            high_min_window_sum,
            high_head,
            high_len,
            low_low,
            b_on,
            backlog,
            alg_tick,
            shadow_backlog,
            current_alloc,
            changes,
            peak_alloc,
            total_arrived,
            total_served,
            total_allocated,
            pend_tick,
            pend_bits,
            pend_len,
            delay_tick,
            max_delay,
            max_delay_exact,
            meter_ticks,
            window_arrived,
            window_allocated,
            recent_head,
            recent_len,
            min_util,
            hull,
            pend_spill,
            stages,
        );
        let mut views = Vec::with_capacity(ends.len());
        let mut lo = 0usize;
        for &hi in ends {
            debug_assert!(hi >= lo && hi <= bound, "chunk grid is ascending");
            let n = hi - lo;
            let head = {
                let (head, tail) = arrived.split_at(n);
                arrived = tail;
                head
            };
            views.push(ChunkView {
                w,
                arrived: head,
                flags: carve!(flags, n),
                keys: carve!(keys, n),
                stage_ticks: carve!(stage_ticks, n),
                low_total: carve!(low_total, n),
                high_window_sum: carve!(high_window_sum, n),
                high_min_window_sum: carve!(high_min_window_sum, n),
                high_head: carve!(high_head, n),
                high_len: carve!(high_len, n),
                low_low: carve!(low_low, n),
                b_on: carve!(b_on, n),
                backlog: carve!(backlog, n),
                alg_tick: carve!(alg_tick, n),
                shadow_backlog: carve!(shadow_backlog, n),
                current_alloc: carve!(current_alloc, n),
                changes: carve!(changes, n),
                peak_alloc: carve!(peak_alloc, n),
                total_arrived: carve!(total_arrived, n),
                total_served: carve!(total_served, n),
                total_allocated: carve!(total_allocated, n),
                pend_tick: carve!(pend_tick, n),
                pend_bits: carve!(pend_bits, n),
                pend_len: carve!(pend_len, n),
                delay_tick: carve!(delay_tick, n),
                max_delay: carve!(max_delay, n),
                max_delay_exact: carve!(max_delay_exact, n),
                meter_ticks: carve!(meter_ticks, n),
                window_arrived: carve!(window_arrived, n),
                window_allocated: carve!(window_allocated, n),
                recent_head: carve!(recent_head, n),
                recent_len: carve!(recent_len, n),
                min_util: carve!(min_util, n),
                hull: carve!(hull, n),
                high_ring: high_rows.next().expect("one ring carve per chunk"),
                recent_ring: recent_rows.next().expect("one ring carve per chunk"),
                pend_spill: carve!(pend_spill, n),
                stages: carve!(stages, n),
            });
            lo = hi;
        }
        views
    }

    /// Collects slot `i`'s entries of a time-major ring into a `Vec`,
    /// oldest first.
    fn ring_to_vec<T: Copy>(&self, ring: &[T], i: usize, w: usize, head: u32, len: u32) -> Vec<T> {
        (0..len as usize)
            .map(|j| {
                let idx = head as usize + j;
                let q = if idx >= w { idx - w } else { idx };
                ring[q * self.ring_cap + i]
            })
            .collect()
    }

    /// The meter state of slot `i`, in checkpoint form.
    fn meter_checkpoint(&self, i: usize, cost: CostModel, w: usize) -> MeterCheckpoint {
        let mut pending = Vec::with_capacity(self.pend_len[i] as usize);
        if self.pend_len[i] > 0 {
            pending.push((self.pend_tick[i] as usize, self.pend_bits[i]));
            pending.extend(self.pend_spill[i].iter().map(|&(t, b)| (t as usize, b)));
        }
        MeterCheckpoint {
            cost,
            window: w,
            shadow_backlog: self.shadow_backlog[i],
            delay: DelayTrackerState {
                pending,
                tick: self.delay_tick[i] as usize,
                max_delay: self.max_delay[i] as usize,
                max_delay_exact: self.max_delay_exact[i],
            },
            recent: self.ring_to_vec(
                &self.recent_ring,
                i,
                w,
                self.recent_head[i],
                self.recent_len[i],
            ),
            window_arrived: self.window_arrived[i],
            window_allocated: self.window_allocated[i],
            min_windowed_utilization: if self.min_util[i].is_nan() {
                None
            } else {
                Some(self.min_util[i])
            },
            current_alloc: self.current_alloc[i],
            ticks: self.meter_ticks[i],
            changes: self.changes[i],
            peak_allocation: self.peak_alloc[i],
            total_arrived: self.total_arrived[i],
            total_served: self.total_served[i],
            total_allocated: self.total_allocated[i],
        }
    }

    /// The algorithm state of slot `i`, in checkpoint form.
    fn alg_checkpoint(&self, i: usize, cfg: &SingleConfig) -> SingleCheckpoint {
        debug_assert!(
            self.flags[i] & F_DEDICATED != 0,
            "slot holds algorithm state"
        );
        let open = self.flags[i] & F_STAGE_OPEN != 0;
        SingleCheckpoint {
            cfg: cfg.clone(),
            backlog: self.backlog[i],
            stage_low: open.then(|| LowTrackerState {
                d_o: cfg.d_o,
                hull: self.hull[i].clone(),
                ticks: self.stage_ticks[i] as usize,
                total: self.low_total[i],
                low: self.low_low[i],
            }),
            stage_high: open.then(|| HighTrackerState {
                u_o: cfg.u_o,
                w: cfg.w,
                grace: cfg.b_max,
                window: self.ring_to_vec(
                    &self.high_ring,
                    i,
                    cfg.w,
                    self.high_head[i],
                    self.high_len[i],
                ),
                window_sum: self.high_window_sum[i],
                min_window_sum: if self.high_min_window_sum[i].is_infinite() {
                    None
                } else {
                    Some(self.high_min_window_sum[i])
                },
                ticks: self.stage_ticks[i] as usize,
            }),
            b_on: self.b_on[i],
            tick: self.alg_tick[i] as usize,
            stages: self.stages[i].clone(),
        }
    }

    /// The metered totals of slot `i`, labelled for export.
    fn metrics(
        &self,
        i: usize,
        session: u64,
        tenant: Arc<str>,
        shard: u64,
        cost: CostModel,
    ) -> SessionMetrics {
        SessionMetrics {
            session,
            tenant,
            shard,
            ticks: self.meter_ticks[i],
            changes: self.changes[i],
            peak_allocation: self.peak_alloc[i],
            max_delay: delay_ticks(self.max_delay_exact[i]),
            total_arrived: self.total_arrived[i],
            total_served: self.total_served[i],
            total_allocated: self.total_allocated[i],
            windowed_utilization: if self.min_util[i].is_nan() {
                None
            } else {
                Some(self.min_util[i])
            },
            signalling_cost: self.changes[i] as f64 * cost.per_change,
            bandwidth_cost: self.total_allocated[i] * cost.per_bandwidth_tick,
        }
    }
}

/// Gathers slot `i`'s entries of a time-major ring into `out`, oldest
/// first — the encoder reuses one scratch buffer per ring across rows
/// (a slot's entries are `ring_cap` apart, so there is no contiguous
/// run to borrow; the bytes emitted are identical either way).
fn gather_ring<T: Copy>(
    ring: &[T],
    cap: usize,
    i: usize,
    w: usize,
    head: u32,
    len: u32,
    out: &mut Vec<T>,
) {
    out.clear();
    out.extend((0..len as usize).map(|j| {
        let idx = head as usize + j;
        let q = if idx >= w { idx - w } else { idx };
        ring[q * cap + i]
    }));
}

/// Stage-open dedicated slots: the tracker/hull/decide passes run over
/// exactly the slots whose flags carry both bits.
const OPEN: u32 = F_DEDICATED | F_STAGE_OPEN;

/// A mutable window over one chunk of every column — the unit of work
/// the sweep passes (and the kernel worker pool) operate on. Slot
/// indices inside a view are chunk-local; the time-major rings arrive
/// as `w` row slices covering the chunk's slots, so ring position `q`
/// of local slot `j` is `ring[q][j]`.
struct ChunkView<'a> {
    w: usize,
    arrived: &'a [f64],
    flags: &'a mut [u32],
    keys: &'a [u64],
    stage_ticks: &'a mut [u64],
    low_total: &'a mut [f64],
    high_window_sum: &'a mut [f64],
    high_min_window_sum: &'a mut [f64],
    high_head: &'a mut [u32],
    high_len: &'a mut [u32],
    low_low: &'a mut [f64],
    b_on: &'a mut [f64],
    backlog: &'a mut [f64],
    alg_tick: &'a mut [u64],
    shadow_backlog: &'a mut [f64],
    current_alloc: &'a mut [f64],
    changes: &'a mut [u64],
    peak_alloc: &'a mut [f64],
    total_arrived: &'a mut [f64],
    total_served: &'a mut [f64],
    total_allocated: &'a mut [f64],
    pend_tick: &'a mut [u64],
    pend_bits: &'a mut [f64],
    pend_len: &'a mut [u32],
    delay_tick: &'a mut [u64],
    max_delay: &'a mut [u64],
    max_delay_exact: &'a mut [f64],
    meter_ticks: &'a mut [u64],
    window_arrived: &'a mut [f64],
    window_allocated: &'a mut [f64],
    recent_head: &'a mut [u32],
    recent_len: &'a mut [u32],
    min_util: &'a mut [f64],
    hull: &'a mut [Vec<(f64, f64)>],
    high_ring: Vec<&'a mut [f64]>,
    recent_ring: Vec<&'a mut [(f64, f64)]>,
    pend_spill: &'a mut [VecDeque<(u64, f64)>],
    stages: &'a mut [StageLog],
}

/// One step of the shadow link queue plus the metering totals —
/// branch-free so the flow pass autovectorizes. Bitwise-identical to
/// the branchy original: the `select` forms produce the same values,
/// and the totals only read `arrivals`/`allocation`/`served`, so
/// hoisting them ahead of the FIFO drain reorders across independent
/// fields only. Returns the bits served this tick.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn flow_step(
    arrivals: f64,
    allocation: f64,
    current_alloc: &mut f64,
    changes: &mut u64,
    shadow_backlog: &mut f64,
    total_arrived: &mut f64,
    total_served: &mut f64,
    total_allocated: &mut f64,
    peak_alloc: &mut f64,
) -> f64 {
    let changed = (allocation - *current_alloc).abs() > EPS;
    *changes += changed as u64;
    *current_alloc = if changed { allocation } else { *current_alloc };
    let offered = *shadow_backlog + arrivals;
    let served = offered.min(allocation);
    let backlog = offered - served;
    *shadow_backlog = if backlog < EPS { 0.0 } else { backlog };
    *total_arrived += arrivals;
    *total_served += served;
    *total_allocated += allocation;
    *peak_alloc = peak_alloc.max(allocation);
    served
}

/// Reusable per-sweep work lists; one per kernel worker (and one on the
/// shard for the group pass and the sequential path), so steady-state
/// ticks allocate nothing.
#[derive(Default)]
struct SweepScratch {
    /// Chunk-local indices of dedicated slots, in slot order.
    ded: Vec<u32>,
    /// Effective arrivals per `ded` entry (leaving slots read as 0).
    ded_arr: Vec<f64>,
    /// Chunk-local indices of stage-open dedicated slots.
    open: Vec<u32>,
    /// Effective arrivals per `open` entry.
    open_arr: Vec<f64>,
    /// Per-`ded` allocation decided this tick.
    alloc: Vec<f64>,
    /// Per-index bits served by the flow pass.
    served: Vec<f64>,
    /// Keys whose drain completed this tick, in slot order.
    retire: Vec<u64>,
    /// Slot indices of pooled-group members metered this tick.
    grp: Vec<u32>,
    /// Effective arrivals per `grp` entry.
    grp_arr: Vec<f64>,
    /// Pool-decided allocation per `grp` entry.
    grp_alloc: Vec<f64>,
}

impl ChunkView<'_> {
    /// The tracker-push pass over the stage-open slots: the
    /// `HullLowTracker` point push and the `HighTracker` ring push,
    /// same float-op order as `SingleSession::on_tick`. The hull
    /// *query* is hoisted into [`ChunkView::pass_hull_query`], so this
    /// pass is straight-line ring arithmetic.
    fn pass_track(&mut self, open: &[u32], open_arr: &[f64], p: &KernelParams) {
        for (&j, &arrivals) in open.iter().zip(open_arr) {
            let j = j as usize;
            debug_assert!(
                self.flags[j] & F_STAGE_OPEN != 0,
                "tracker push on an open stage"
            );
            // Both trackers clamp identically; one shared clamp is the
            // same value.
            let a2 = arrivals.max(0.0);
            // Low push: candidate window-start x = stage tick, P[x] =
            // total so far; the query uses the post-arrival total.
            hull_add_point(
                &mut self.hull[j],
                (self.stage_ticks[j] as f64, self.low_total[j]),
            );
            self.low_total[j] += a2;
            // High push: circular window of the last W arrivals. The
            // running sum adds the new entry before subtracting the
            // evicted one, exactly as the VecDeque form did. Slots that
            // joined together share a cursor position, so these row
            // accesses stream one dense row, not a line per slot.
            if (self.high_len[j] as usize) < p.w {
                self.high_ring[self.high_len[j] as usize][j] = a2;
                self.high_len[j] += 1;
                self.high_window_sum[j] += a2;
            } else {
                let idx = self.high_head[j] as usize;
                let old = self.high_ring[idx][j];
                self.high_ring[idx][j] = a2;
                self.high_head[j] = if idx + 1 == p.w { 0 } else { (idx + 1) as u32 };
                self.high_window_sum[j] += a2;
                self.high_window_sum[j] -= old;
                if self.high_window_sum[j] < 0.0 {
                    self.high_window_sum[j] = 0.0; // float-noise guard
                }
            }
            // One shared stage clock: the two trackers advance in
            // lockstep.
            self.stage_ticks[j] += 1;
            // The full-window minimum merge reads only high-tracker
            // fields, so folding it into this pass (ahead of the hull
            // query it used to follow) cannot move a bit of either
            // tracker.
            if self.high_len[j] as usize == p.w {
                self.high_min_window_sum[j] =
                    self.high_min_window_sum[j].min(self.high_window_sum[j]);
            }
        }
    }

    /// The hoisted hull query as its own pass over the stage-open index
    /// list: the `HullLowTracker::max_slope` binary search merged into
    /// the running `low` maximum — the one data-dependent, branchy part
    /// of the allocator step, kept out of the vectorizable passes.
    fn pass_hull_query(&mut self, open: &[u32], p: &KernelParams) {
        for &j in open {
            let j = j as usize;
            let q = ((self.stage_ticks[j] + p.d_o) as f64, self.low_total[j]);
            let candidate = hull_max_slope(&self.hull[j], q);
            if candidate > self.low_low[j] {
                self.low_low[j] = candidate;
            }
        }
    }

    /// The decision pass over the dedicated slots: certificate check,
    /// `B_on` ladder, link queue, and RESET reopen —
    /// `SingleSession::on_tick` after the tracker pushes and the hull
    /// query already ran this tick for stage-open slots. Fills
    /// `alloc_out` parallel to `ded`.
    fn pass_decide(
        &mut self,
        ded: &[u32],
        ded_arr: &[f64],
        alloc_out: &mut Vec<f64>,
        p: &KernelParams,
    ) {
        alloc_out.clear();
        for (&j, &arrivals) in ded.iter().zip(ded_arr) {
            let j = j as usize;
            let alloc = if self.flags[j] & F_STAGE_OPEN != 0 {
                let l = self.low_low[j];
                let hi = if self.high_min_window_sum[j].is_infinite() {
                    p.b_max // grace: no full window constrains the offline yet
                } else {
                    self.high_min_window_sum[j] / p.high_denom
                };
                if crossed(l, hi) {
                    // Certificate fired: end the stage, enter RESET.
                    self.stages[j].close(self.alg_tick[j] as usize, StageKind::BoundsCrossed);
                    self.flags[j] &= !F_STAGE_OPEN;
                    self.b_on[j] = p.b_max;
                    p.b_max
                } else {
                    if self.b_on[j] < l {
                        self.b_on[j] = next_power_of_two(l).min(p.b_max);
                    }
                    self.b_on[j]
                }
            } else {
                p.b_max
            };
            // The session's link queue (`BitQueue::tick` on the backlog
            // field; inputs are validated upstream, so the clamps it
            // would apply are identities).
            let offered = self.backlog[j] + arrivals;
            let served = offered.min(alloc);
            let mut backlog = offered - served;
            if backlog < EPS {
                backlog = 0.0;
            }
            self.backlog[j] = backlog;
            if self.flags[j] & F_STAGE_OPEN == 0 && backlog <= EPS {
                // RESET complete: the next tick starts a new stage with
                // fresh trackers (cursors and sentinels re-armed in
                // place).
                self.stages[j].open(self.alg_tick[j] as usize + 1);
                self.flags[j] |= F_STAGE_OPEN;
                self.hull[j].clear();
                self.stage_ticks[j] = 0;
                self.low_total[j] = 0.0;
                self.low_low[j] = 0.0;
                self.high_head[j] = 0;
                self.high_len[j] = 0;
                self.high_window_sum[j] = 0.0;
                self.high_min_window_sum[j] = f64::INFINITY;
                self.b_on[j] = 0.0;
            }
            self.alg_tick[j] += 1;
            alloc_out.push(alloc);
        }
    }

    /// The metering flow pass: shadow link queue plus totals, via the
    /// branch-free [`flow_step`]. When the index list is one dense
    /// ascending run the loop specializes to pre-sliced contiguous
    /// columns, which is the form the compiler autovectorizes; the
    /// gather fallback handles sparse lists bit-identically.
    fn pass_meter_flow(
        &mut self,
        idx: &[u32],
        arr: &[f64],
        alloc: &[f64],
        served_out: &mut Vec<f64>,
    ) {
        let n = idx.len();
        served_out.clear();
        served_out.resize(n, 0.0);
        if n == 0 {
            return;
        }
        let base = idx[0] as usize;
        // Dense-run detection must check every element: group-gathered
        // lists need not be monotonic, so a first/last/len probe lies.
        let dense = idx.iter().enumerate().all(|(k, &j)| j as usize == base + k);
        if dense {
            let current_alloc = &mut self.current_alloc[base..base + n];
            let changes = &mut self.changes[base..base + n];
            let shadow_backlog = &mut self.shadow_backlog[base..base + n];
            let total_arrived = &mut self.total_arrived[base..base + n];
            let total_served = &mut self.total_served[base..base + n];
            let total_allocated = &mut self.total_allocated[base..base + n];
            let peak_alloc = &mut self.peak_alloc[base..base + n];
            for k in 0..n {
                served_out[k] = flow_step(
                    arr[k],
                    alloc[k],
                    &mut current_alloc[k],
                    &mut changes[k],
                    &mut shadow_backlog[k],
                    &mut total_arrived[k],
                    &mut total_served[k],
                    &mut total_allocated[k],
                    &mut peak_alloc[k],
                );
            }
        } else {
            for k in 0..n {
                let j = idx[k] as usize;
                served_out[k] = flow_step(
                    arr[k],
                    alloc[k],
                    &mut self.current_alloc[j],
                    &mut self.changes[j],
                    &mut self.shadow_backlog[j],
                    &mut self.total_arrived[j],
                    &mut self.total_served[j],
                    &mut self.total_allocated[j],
                    &mut self.peak_alloc[j],
                );
            }
        }
    }

    /// The FIFO delay-tracker pass (`OnlineDelayTracker::push`): the
    /// head entry lives inline in the columns; older entries spill.
    /// Data-dependent drain loop, so it stays its own scalar pass.
    fn pass_meter_fifo(&mut self, idx: &[u32], arr: &[f64], served: &[f64]) {
        for (k, &j) in idx.iter().enumerate() {
            let j = j as usize;
            let arrivals = arr[k];
            if arrivals > EPS {
                if self.pend_len[j] == 0 {
                    self.pend_tick[j] = self.delay_tick[j];
                    self.pend_bits[j] = arrivals;
                } else {
                    self.pend_spill[j].push_back((self.delay_tick[j], arrivals));
                }
                self.pend_len[j] += 1;
            }
            let total = served[k];
            let mut left = total;
            while left > EPS && self.pend_len[j] > 0 {
                let take = self.pend_bits[j].min(left);
                self.pend_bits[j] -= take;
                left -= take;
                if self.pend_bits[j] <= EPS {
                    self.max_delay[j] =
                        self.max_delay[j].max(self.delay_tick[j] - self.pend_tick[j]);
                    // The entry completes after the fraction of this
                    // tick's service consumed so far (see
                    // `OnlineDelayTracker`).
                    let consumed = ((total - left) / total).clamp(0.0, 1.0);
                    let exact =
                        ((self.delay_tick[j] - self.pend_tick[j]) as f64 - 1.0 + consumed).max(0.0);
                    self.max_delay_exact[j] = self.max_delay_exact[j].max(exact);
                    self.pend_len[j] -= 1;
                    if self.pend_len[j] > 0 {
                        let (t0, bits) = self.pend_spill[j]
                            .pop_front()
                            .expect("len counts the spill");
                        self.pend_tick[j] = t0;
                        self.pend_bits[j] = bits;
                    }
                }
            }
            // A still-pending head already implies at least this much
            // delay.
            if self.pend_len[j] > 0 {
                self.max_delay[j] = self.max_delay[j].max(self.delay_tick[j] - self.pend_tick[j]);
                self.max_delay_exact[j] =
                    self.max_delay_exact[j].max((self.delay_tick[j] - self.pend_tick[j]) as f64);
            }
            self.delay_tick[j] += 1;
        }
    }

    /// The utilization-window pass: the rolling `recent` ring and the
    /// windowed-minimum merge. The running sums add the new pair before
    /// subtracting the evicted one, as the VecDeque form did.
    fn pass_meter_window(&mut self, idx: &[u32], arr: &[f64], alloc: &[f64]) {
        let w = self.w;
        for (k, &j) in idx.iter().enumerate() {
            let j = j as usize;
            let (arrivals, allocation) = (arr[k], alloc[k]);
            self.meter_ticks[j] += 1;
            if (self.recent_len[j] as usize) < w {
                self.recent_ring[self.recent_len[j] as usize][j] = (arrivals, allocation);
                self.recent_len[j] += 1;
                self.window_arrived[j] += arrivals;
                self.window_allocated[j] += allocation;
            } else {
                let idx2 = self.recent_head[j] as usize;
                let (a0, b0) = self.recent_ring[idx2][j];
                self.recent_ring[idx2][j] = (arrivals, allocation);
                self.recent_head[j] = if idx2 + 1 == w { 0 } else { (idx2 + 1) as u32 };
                self.window_arrived[j] += arrivals;
                self.window_allocated[j] += allocation;
                self.window_arrived[j] -= a0;
                self.window_allocated[j] -= b0;
            }
            if self.recent_len[j] as usize == w && self.window_allocated[j] > EPS {
                let ratio = self.window_arrived[j].max(0.0) / self.window_allocated[j];
                // `min` returns the other operand when one side is NaN,
                // so the NaN "none yet" sentinel picks up the first
                // ratio.
                self.min_util[j] = self.min_util[j].min(ratio);
            }
        }
    }

    /// One full dedicated-session sweep over this chunk: build the
    /// dense index lists, then run the phase passes in order. Leaves
    /// the keys of drain-completed slots in `s.retire`, in slot order.
    /// Slots are independent, so per-slot state after the sweep is a
    /// function of that slot alone — chunking cannot change a bit.
    fn sweep(&mut self, p: &KernelParams, s: &mut SweepScratch) {
        s.ded.clear();
        s.ded_arr.clear();
        s.open.clear();
        s.open_arr.clear();
        s.retire.clear();
        for j in 0..self.flags.len() {
            let f = self.flags[j];
            if f & F_DEDICATED == 0 {
                continue;
            }
            // A leaving session stops arriving; it only drains.
            let a = if f & F_LEAVING != 0 {
                0.0
            } else {
                self.arrived[j]
            };
            s.ded.push(j as u32);
            s.ded_arr.push(a);
            // Every metered tick mutates the slot (clocks, rings,
            // window sums), so list membership is exactly dirtiness.
            self.flags[j] = f | F_DIRTY;
            // Capture stage-open membership before the decide pass can
            // close or reopen stages: matches the fused kernel, which
            // read the flag once at the top of the slot's step.
            if f & OPEN == OPEN {
                s.open.push(j as u32);
                s.open_arr.push(a);
            }
        }
        self.pass_track(&s.open, &s.open_arr, p);
        self.pass_hull_query(&s.open, p);
        self.pass_decide(&s.ded, &s.ded_arr, &mut s.alloc, p);
        self.pass_meter_flow(&s.ded, &s.ded_arr, &s.alloc, &mut s.served);
        self.pass_meter_fifo(&s.ded, &s.ded_arr, &s.served);
        self.pass_meter_window(&s.ded, &s.ded_arr, &s.alloc);
        for &j in &s.ded {
            let j = j as usize;
            if self.flags[j] & F_LEAVING != 0 && self.shadow_backlog[j] <= EPS {
                s.retire.push(self.keys[j]);
            }
        }
    }
}

/// A job handed to a kernel worker: a lifetime-erased chunk view plus
/// the tick's parameters. Safety: the erased borrows are only valid
/// until the dispatching tick returns, so the dispatcher MUST collect
/// every worker's completion (panic or not) before it returns or
/// unwinds — `ShardState::tick` does, and `KernelPool` sits before
/// `cols` in `ShardState` so drop joins the workers first.
struct KernelJob {
    view: ChunkView<'static>,
    params: KernelParams,
    chunk: usize,
}

/// A small reusable per-shard worker pool for the intra-shard parallel
/// sweep. Workers are spawned once and fed one fixed chunk per tick;
/// each returns its retire list, which the dispatcher concatenates in
/// chunk order (= slot order), so the reduction is deterministic and
/// independent of completion order.
struct KernelPool {
    jobs: Vec<crossbeam::channel::Sender<KernelJob>>,
    done: crossbeam::channel::Receiver<(usize, std::thread::Result<Vec<u64>>)>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl KernelPool {
    fn new(shard: u64, workers: usize) -> Self {
        let (done_tx, done) = crossbeam::channel::unbounded();
        let mut jobs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for k in 0..workers {
            let (tx, rx) = crossbeam::channel::unbounded::<KernelJob>();
            let done_tx = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("cdba-kernel-{shard}-{k}"))
                .spawn(move || {
                    let mut scratch = SweepScratch::default();
                    while let Ok(mut job) = rx.recv() {
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                job.view.sweep(&job.params, &mut scratch);
                                std::mem::take(&mut scratch.retire)
                            }));
                        if done_tx.send((job.chunk, outcome)).is_err() {
                            return;
                        }
                    }
                })
                .expect("spawn kernel worker");
            jobs.push(tx);
            handles.push(handle);
        }
        KernelPool {
            jobs,
            done,
            handles,
        }
    }
}

impl Drop for KernelPool {
    fn drop(&mut self) {
        self.jobs.clear(); // disconnect: workers exit their recv loop
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Reusable scratch for [`ShardState::apply_frame`]'s validation pass, so
/// applying a long incremental chain allocates the key tables once.
#[derive(Default)]
pub(crate) struct ApplyScratch {
    /// `(key, row)` of the frame being validated, sorted by key.
    keys: Vec<(u64, u32)>,
    /// The frame's tombstones, sorted.
    tombs: Vec<u64>,
}

/// The per-shard session store and tick loop.
pub(crate) struct ShardState {
    shard: u64,
    /// Epoch of the worker driving this state (0 inline); stamped into
    /// collect replies so the driver can discard superseded reports.
    pub(crate) epoch: u64,
    single_cfg: SingleConfig,
    multi_cfg: MultiConfig,
    cost: CostModel,
    window: usize,
    sessions: Slab<SessionEntry>,
    index: KeyMap,
    groups: Slab<GroupEntry>,
    group_index: KeyMap,
    /// How many threads sweep this shard's slot range inside a tick.
    kernel_threads: usize,
    /// Lazily-spawned worker pool for `kernel_threads > 1`; holds
    /// `kernel_threads - 1` workers (the driving thread sweeps chunk 0).
    /// Declared before `cols`: drop joins the workers before the column
    /// storage their erased views may still reference deallocates.
    kernel_pool: Option<KernelPool>,
    /// The driving thread's sweep work lists, reused across ticks.
    scratch: SweepScratch,
    /// Per-session hot state, parallel to `sessions` by slot.
    cols: Columns,
    /// Copy-on-retire: shared with outstanding reports and checkpoints; a
    /// retirement while shared clones once, then appends in place.
    retired: Arc<Vec<SessionMetrics>>,
    ticks: u64,
    /// Keys removed (retired or forgotten) since the last checkpoint
    /// frame was encoded — the tombstone list of the next incremental.
    removed_since_checkpoint: Vec<u64>,
    /// How many `retired` entries the last checkpoint frame already
    /// carried; the next incremental ships only the suffix past this.
    retired_base: usize,
}

impl ShardState {
    pub(crate) fn new(shard: u64, cfg: &ServiceConfig) -> Self {
        ShardState {
            shard,
            epoch: 0,
            single_cfg: cfg.single_config(),
            multi_cfg: cfg.multi_config(),
            cost: cfg.cost,
            window: cfg.w,
            sessions: Slab::new(),
            index: KeyMap::new(),
            groups: Slab::new(),
            group_index: KeyMap::new(),
            kernel_threads: cfg.kernel_threads,
            kernel_pool: None,
            scratch: SweepScratch::default(),
            cols: Columns::default(),
            retired: Arc::new(Vec::new()),
            ticks: 0,
            removed_since_checkpoint: Vec::new(),
            retired_base: 0,
        }
    }

    /// Live sessions on this shard.
    pub(crate) fn live_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Ticks this shard has processed.
    pub(crate) fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Exports the full restorable state. Sessions are listed in slot
    /// order; group and member listings are sorted by id — identical event
    /// histories checkpoint identically. Retained as the reference
    /// representation the columnar lockstep tests canonicalize through.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn checkpoint(&self) -> ShardStateCheckpoint {
        let sessions = self
            .sessions
            .iter()
            .map(|(slot, e)| self.session_checkpoint_at(slot, e))
            .collect();
        let mut groups: Vec<GroupCheckpoint> = self
            .groups
            .iter()
            .map(|(_, g)| {
                let mut members: Vec<(u64, u64)> = g
                    .by_member
                    .iter()
                    .map(|&(member, key, _)| (member.raw(), key))
                    .collect();
                members.sort_unstable();
                GroupCheckpoint {
                    group: g.group,
                    pool: g.pool.checkpoint(),
                    members,
                }
            })
            .collect();
        groups.sort_unstable_by_key(|g| g.group);
        ShardStateCheckpoint {
            sessions,
            groups,
            retired: Arc::clone(&self.retired),
            ticks: self.ticks,
        }
    }

    /// Rebuilds a shard from a checkpoint, bitwise. Sessions re-insert in
    /// checkpoint (slot) order, compacting slots to `0..n`; per-session
    /// dynamics are placement-independent, so the invariant view is
    /// unaffected. Retained as the reference restore path the columnar
    /// lockstep tests compare against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn restore(shard: u64, cfg: &ServiceConfig, cp: &ShardStateCheckpoint) -> Self {
        let mut state = ShardState::new(shard, cfg);
        for s in &cp.sessions {
            state.insert_restored(s);
        }
        for g in &cp.groups {
            let by_member = g
                .members
                .iter()
                .map(|&(member, key)| {
                    let slot = state
                        .index
                        .get(key)
                        .expect("group member session is in the checkpoint");
                    (PoolSessionId::from_raw(member), key, slot)
                })
                .collect();
            let gslot = state.groups.insert(GroupEntry {
                group: g.group,
                pool: SessionPool::restore(&g.pool),
                by_member,
            });
            state.group_index.insert(g.group, gslot);
        }
        state.retired = Arc::clone(&cp.retired);
        state.retired_base = state.retired.len();
        state.ticks = cp.ticks;
        state
    }

    /// Encodes a columnar checkpoint frame ([`columnar::KIND_GENESIS`]
    /// captures every live session; [`columnar::KIND_INCREMENTAL`] only
    /// the sessions dirtied since the previous frame), appends it to
    /// `out`, and advances the emission bookkeeping: dirty bits clear,
    /// the tombstone list drains, and the retired cursor moves up.
    /// Returns the number of session rows encoded.
    pub(crate) fn encode_columnar(
        &mut self,
        kind: u8,
        sink: &mut columnar::ColumnSink,
        out: &mut Vec<u8>,
    ) -> u64 {
        sink.begin();
        let w = self.window;
        let mut encoded = 0u64;
        {
            let ShardState { sessions, cols, .. } = self;
            // Identity + ragged state go row-at-a-time (they interleave
            // per-slot variable-length runs); the encoded slot list they
            // produce then drives one sequential append pass per fixed
            // scalar column, streaming each per-field column directly.
            let mut rows: Vec<u32> = Vec::new();
            let (mut high_scratch, mut recent_scratch) = (Vec::new(), Vec::new());
            for (slot, e) in sessions.iter() {
                let i = slot.index as usize;
                if kind == columnar::KIND_INCREMENTAL && cols.flags[i] & F_DIRTY == 0 {
                    continue;
                }
                encoded += 1;
                rows.push(i as u32);
                let (group, member) = match &e.kind {
                    SessionKind::Dedicated => (u64::MAX, 0),
                    SessionKind::Pooled { group, member } => (*group, member.raw()),
                };
                gather_ring(
                    &cols.high_ring,
                    cols.ring_cap,
                    i,
                    w,
                    cols.high_head[i],
                    cols.high_len[i],
                    &mut high_scratch,
                );
                gather_ring(
                    &cols.recent_ring,
                    cols.ring_cap,
                    i,
                    w,
                    cols.recent_head[i],
                    cols.recent_len[i],
                    &mut recent_scratch,
                );
                sink.push_row(&columnar::RowRef {
                    key: e.key,
                    tenant: &e.tenant,
                    flags: cols.flags[i] & !F_DIRTY,
                    group,
                    member,
                    hull: &cols.hull[i],
                    high: (&high_scratch, &[]),
                    recent: (&recent_scratch, &[]),
                    pend: columnar::PendRows::Split {
                        head: (cols.pend_len[i] > 0)
                            .then_some((cols.pend_tick[i], cols.pend_bits[i])),
                        spill: cols.pend_spill[i].as_slices(),
                    },
                    stages: cols.stages[i].records(),
                });
            }
            let f64_cols: [&[f64]; 16] = [
                &cols.shadow_backlog,
                &cols.current_alloc,
                &cols.peak_alloc,
                &cols.total_arrived,
                &cols.total_served,
                &cols.total_allocated,
                &cols.window_arrived,
                &cols.window_allocated,
                &cols.backlog,
                &cols.b_on,
                &cols.low_total,
                &cols.low_low,
                &cols.high_window_sum,
                &cols.high_min_window_sum,
                &cols.min_util,
                &cols.max_delay_exact,
            ];
            for (j, src) in f64_cols.into_iter().enumerate() {
                sink.put_f64_col(columnar::C_F64 + j, src, &rows);
            }
            let u64_cols: [&[u64]; 6] = [
                &cols.alg_tick,
                &cols.stage_ticks,
                &cols.meter_ticks,
                &cols.changes,
                &cols.delay_tick,
                &cols.max_delay,
            ];
            for (j, src) in u64_cols.into_iter().enumerate() {
                sink.put_u64_col(columnar::C_U64 + j, src, &rows);
            }
        }
        // Group state is tiny relative to the session columns, so every
        // frame rewrites it wholesale (sorted by id, like
        // [`ShardState::checkpoint`]) — apply never has to merge it.
        let mut groups: Vec<GroupCheckpoint> = self
            .groups
            .iter()
            .map(|(_, g)| {
                let mut members: Vec<(u64, u64)> = g
                    .by_member
                    .iter()
                    .map(|&(member, key, _)| (member.raw(), key))
                    .collect();
                members.sort_unstable();
                GroupCheckpoint {
                    group: g.group,
                    pool: g.pool.checkpoint(),
                    members,
                }
            })
            .collect();
        groups.sort_unstable_by_key(|g| g.group);
        let hdr = columnar::FrameHeader {
            kind,
            ticks: self.ticks,
            w: w as u32,
            cost: self.cost,
            b_max: self.single_cfg.b_max,
            d_o: self.single_cfg.d_o as u64,
            u_o: self.single_cfg.u_o,
        };
        let (tombs, retired): (&[u64], &[SessionMetrics]) = if kind == columnar::KIND_GENESIS {
            (&[], &self.retired)
        } else {
            (
                &self.removed_since_checkpoint,
                &self.retired[self.retired_base..],
            )
        };
        sink.finish(&hdr, &groups, tombs, retired, out);
        // The chain now covers everything up to this instant.
        for f in &mut self.cols.flags[..self.sessions.slot_bound()] {
            if *f & F_LIVE != 0 {
                *f &= !F_DIRTY;
            }
        }
        self.removed_since_checkpoint.clear();
        self.retired_base = self.retired.len();
        encoded
    }

    /// Applies one parsed columnar frame. Validation runs in full before
    /// any mutation — a hostile frame yields a typed `columnar.*` field
    /// with the shard untouched; once mutation starts, nothing can fail.
    ///
    /// A genesis frame replaces the whole population (slots compact to
    /// `0..n` in row order, like [`ShardState::restore`]); an incremental
    /// frame removes the tombstoned keys, overwrites/inserts the carried
    /// rows, and appends the retired suffix. Restored slots are *not*
    /// marked dirty: the chain being applied already covers them.
    ///
    /// # Errors
    ///
    /// A `columnar.*` field name for `CtrlError::InvalidCheckpoint`.
    pub(crate) fn apply_frame(
        &mut self,
        f: &columnar::RawFrame<'_>,
        scratch: &mut ApplyScratch,
    ) -> Result<(), &'static str> {
        use crate::codec::columnar::{f64_at, pair_at, pend_at, stage_at, u32_at, u64_at};
        let w = self.window;
        // ---- validate: nothing below this block may touch state ----
        if f.w as usize != w {
            return Err("columnar.w");
        }
        let cfg = &self.single_cfg;
        if f.cost.per_bandwidth_tick.to_bits() != self.cost.per_bandwidth_tick.to_bits()
            || f.cost.per_change.to_bits() != self.cost.per_change.to_bits()
            || f.b_max.to_bits() != cfg.b_max.to_bits()
            || f.d_o != cfg.d_o as u64
            || f.u_o.to_bits() != cfg.u_o.to_bits()
        {
            return Err("columnar.cfg");
        }
        let genesis = f.kind == columnar::KIND_GENESIS;
        if genesis && !f.tombstones.is_empty() {
            return Err("columnar.tombstones");
        }
        let rows = f.rows as usize;
        let key_c = f.fixed(columnar::C_KEY)?;
        let tenant_c = f.fixed(columnar::C_TENANT)?;
        let flags_c = f.fixed(columnar::C_FLAGS)?;
        let group_c = f.fixed(columnar::C_GROUP)?;
        let member_c = f.fixed(columnar::C_MEMBER)?;
        let mut f64_cs = Vec::with_capacity(16);
        for j in 0..16 {
            f64_cs.push(f.fixed(columnar::C_F64 + j)?);
        }
        let mut u64_cs = Vec::with_capacity(6);
        for j in 0..6 {
            u64_cs.push(f.fixed(columnar::C_U64 + j)?);
        }
        let hull_len_c = f.fixed(columnar::C_HULL_LEN)?;
        let hull_c = f.col(columnar::C_HULL)?;
        let high_len_c = f.fixed(columnar::C_HIGH_LEN)?;
        let high_c = f.col(columnar::C_HIGH)?;
        let recent_len_c = f.fixed(columnar::C_RECENT_LEN)?;
        let recent_c = f.col(columnar::C_RECENT)?;
        let pend_len_c = f.fixed(columnar::C_PEND_LEN)?;
        let pend_c = f.col(columnar::C_PEND)?;
        let stage_len_c = f.fixed(columnar::C_STAGE_LEN)?;
        let stage_c = f.col(columnar::C_STAGES)?;
        // Ragged bodies must account for exactly the sum of the per-row
        // run lengths — a mismatched cursor would smear rows together.
        for (len_c, body_c) in [
            (hull_len_c, hull_c),
            (high_len_c, high_c),
            (recent_len_c, recent_c),
            (pend_len_c, pend_c),
            (stage_len_c, stage_c),
        ] {
            let total: u64 = (0..rows).map(|r| u64::from(u32_at(len_c, r))).sum();
            if total != u64::from(body_c.count) {
                return Err("columnar.ragged");
            }
        }
        const KNOWN: u32 = F_LIVE | F_DEDICATED | F_LEAVING | F_STAGE_OPEN;
        scratch.keys.clear();
        for r in 0..rows {
            // The key index is direct-mapped — one table slot per key up
            // to the maximum — so an astronomical key in a hostile frame
            // would translate straight into an astronomical allocation.
            if u64_at(key_c, r) >= MAX_FRAME_KEY {
                return Err("columnar.key");
            }
            if u32_at(high_len_c, r) as usize > w || u32_at(recent_len_c, r) as usize > w {
                return Err("columnar.ring");
            }
            let flags = u32_at(flags_c, r);
            if flags & !KNOWN != 0 || flags & F_LIVE == 0 {
                return Err("columnar.flags");
            }
            let dedicated = flags & F_DEDICATED != 0;
            if dedicated != (u64_at(group_c, r) == u64::MAX)
                || (!dedicated && flags & F_STAGE_OPEN != 0)
            {
                return Err("columnar.flags");
            }
            if u32_at(tenant_c, r) as usize >= f.strings.len() {
                return Err("columnar.tenant");
            }
            scratch.keys.push((u64_at(key_c, r), r as u32));
        }
        scratch.keys.sort_unstable();
        if scratch.keys.windows(2).any(|p| p[0].0 == p[1].0) {
            return Err("columnar.keys"); // overlapping dirty rows
        }
        scratch.tombs.clear();
        scratch.tombs.extend_from_slice(&f.tombstones);
        scratch.tombs.sort_unstable();
        for &(key, r) in &scratch.keys {
            if scratch.tombs.binary_search(&key).is_ok() {
                return Err("columnar.keys"); // a row cannot also be removed
            }
            if !genesis {
                // An incremental row overwriting a live session must keep
                // its kind — sessions never convert in place.
                if let Some(e) = self.index.get(key).and_then(|s| self.sessions.get(s)) {
                    let row_group = u64_at(group_c, r as usize);
                    let stable = match &e.kind {
                        SessionKind::Dedicated => row_group == u64::MAX,
                        SessionKind::Pooled { group, member } => {
                            row_group == *group && u64_at(member_c, r as usize) == member.raw()
                        }
                    };
                    if !stable {
                        return Err("columnar.kind");
                    }
                }
            }
        }
        if !f.groups.windows(2).all(|g| g[0].group < g[1].group) {
            return Err("columnar.groups");
        }
        for g in &f.groups {
            // Group ids feed the same direct-mapped index as session keys.
            if g.group >= MAX_FRAME_KEY {
                return Err("columnar.key");
            }
            if !g.members.windows(2).all(|m| m[0].0 < m[1].0) {
                return Err("columnar.groups");
            }
            for &(member, key) in &g.members {
                // Every listed member must resolve to a session that is
                // live after the frame applies, pooled into exactly this
                // (group, member) — from the frame's rows, or (for an
                // incremental) already on the shard and not tombstoned.
                match scratch.keys.binary_search_by_key(&key, |&(k, _)| k) {
                    Ok(pos) => {
                        let r = scratch.keys[pos].1 as usize;
                        if u64_at(group_c, r) != g.group || u64_at(member_c, r) != member {
                            return Err("columnar.groups");
                        }
                    }
                    Err(_) => {
                        if genesis || scratch.tombs.binary_search(&key).is_ok() {
                            return Err("columnar.groups");
                        }
                        let resident = self
                            .index
                            .get(key)
                            .and_then(|s| self.sessions.get(s))
                            .is_some_and(|e| {
                                matches!(&e.kind, SessionKind::Pooled { group, member: m }
                                    if *group == g.group && m.raw() == member)
                            });
                        if !resident {
                            return Err("columnar.groups");
                        }
                    }
                }
            }
        }
        for r in 0..rows {
            // ... and conversely, every pooled row must be listed by its
            // group, or the rebuilt pool would silently drop it.
            let group = u64_at(group_c, r);
            if group == u64::MAX {
                continue;
            }
            let Ok(gi) = f.groups.binary_search_by_key(&group, |g| g.group) else {
                return Err("columnar.groups");
            };
            let members = &f.groups[gi].members;
            let listed = members
                .binary_search_by_key(&u64_at(member_c, r), |&(m, _)| m)
                .is_ok_and(|pos| members[pos].1 == u64_at(key_c, r));
            if !listed {
                return Err("columnar.groups");
            }
        }
        // ---- mutate: infallible from here on ----
        if genesis {
            self.index.clear();
            self.sessions.clear();
            self.group_index.clear();
            self.groups.clear();
            self.sessions.reserve(rows);
            self.cols.grow_to(rows, w);
        } else {
            for &key in &f.tombstones {
                // Unknown keys are fine: the removal may have raced a
                // retirement this shard already processed.
                if let Some(slot) = self.index.remove(key) {
                    if self.sessions.remove(slot).is_some() {
                        self.cols.clear_slot(slot.index as usize);
                    }
                }
            }
        }
        let frame_tenants: Vec<Arc<str>> = f.strings.iter().map(|&s| Arc::from(s)).collect();
        let (mut hull_off, mut high_off, mut recent_off, mut pend_off, mut stage_off) =
            (0usize, 0usize, 0usize, 0usize, 0usize);
        for r in 0..rows {
            let key = u64_at(key_c, r);
            let flags = u32_at(flags_c, r);
            let group = u64_at(group_c, r);
            let leaving = flags & F_LEAVING != 0;
            let slot = match self.index.get(key) {
                Some(slot) => {
                    let e = self
                        .sessions
                        .get_mut(slot)
                        .expect("the index maps only to live slots");
                    e.leaving = leaving;
                    slot
                }
                None => {
                    let kind = if group == u64::MAX {
                        SessionKind::Dedicated
                    } else {
                        SessionKind::Pooled {
                            group,
                            member: PoolSessionId::from_raw(u64_at(member_c, r)),
                        }
                    };
                    let tenant = Arc::clone(&frame_tenants[u32_at(tenant_c, r) as usize]);
                    self.insert_entry(key, tenant, leaving, kind)
                }
            };
            let i = slot.index as usize;
            let hull_n = u32_at(hull_len_c, r) as usize;
            let high_n = u32_at(high_len_c, r) as usize;
            let recent_n = u32_at(recent_len_c, r) as usize;
            let pend_n = u32_at(pend_len_c, r) as usize;
            let stage_n = u32_at(stage_len_c, r) as usize;
            let cols = &mut self.cols;
            // Every scalar not carried by the frame lands at its vacant
            // value (arrived 0, heads 0, pend head 0/0.0).
            cols.reset_scalars(i);
            cols.keys[i] = key;
            cols.flags[i] = flags;
            cols.shadow_backlog[i] = f64_at(f64_cs[0], r);
            cols.current_alloc[i] = f64_at(f64_cs[1], r);
            cols.peak_alloc[i] = f64_at(f64_cs[2], r);
            cols.total_arrived[i] = f64_at(f64_cs[3], r);
            cols.total_served[i] = f64_at(f64_cs[4], r);
            cols.total_allocated[i] = f64_at(f64_cs[5], r);
            cols.window_arrived[i] = f64_at(f64_cs[6], r);
            cols.window_allocated[i] = f64_at(f64_cs[7], r);
            cols.backlog[i] = f64_at(f64_cs[8], r);
            cols.b_on[i] = f64_at(f64_cs[9], r);
            cols.low_total[i] = f64_at(f64_cs[10], r);
            cols.low_low[i] = f64_at(f64_cs[11], r);
            cols.high_window_sum[i] = f64_at(f64_cs[12], r);
            cols.high_min_window_sum[i] = f64_at(f64_cs[13], r);
            cols.min_util[i] = f64_at(f64_cs[14], r);
            cols.max_delay_exact[i] = f64_at(f64_cs[15], r);
            cols.alg_tick[i] = u64_at(u64_cs[0], r);
            cols.stage_ticks[i] = u64_at(u64_cs[1], r);
            cols.meter_ticks[i] = u64_at(u64_cs[2], r);
            cols.changes[i] = u64_at(u64_cs[3], r);
            cols.delay_tick[i] = u64_at(u64_cs[4], r);
            cols.max_delay[i] = u64_at(u64_cs[5], r);
            // Rings land at head = 0, exactly how the encoder read them.
            for j in 0..high_n {
                cols.high_ring[j * cols.ring_cap + i] = f64_at(high_c, high_off + j);
            }
            cols.high_len[i] = high_n as u32;
            for j in 0..recent_n {
                cols.recent_ring[j * cols.ring_cap + i] = pair_at(recent_c, recent_off + j);
            }
            cols.recent_len[i] = recent_n as u32;
            let hull = &mut cols.hull[i];
            hull.clear();
            hull.extend((0..hull_n).map(|j| pair_at(hull_c, hull_off + j)));
            let spill = &mut cols.pend_spill[i];
            spill.clear();
            cols.pend_len[i] = pend_n as u32;
            if pend_n > 0 {
                let (t0, b0) = pend_at(pend_c, pend_off);
                cols.pend_tick[i] = t0;
                cols.pend_bits[i] = b0;
                spill.extend((1..pend_n).map(|j| pend_at(pend_c, pend_off + j)));
            }
            cols.stages[i]
                .restore_from_iter((0..stage_n).map(|j| stage_at(stage_c, stage_off + j)));
            hull_off += hull_n;
            high_off += high_n;
            recent_off += recent_n;
            pend_off += pend_n;
            stage_off += stage_n;
        }
        // Groups: full overwrite from the frame, every member validated
        // above to resolve.
        self.group_index.clear();
        self.groups.clear();
        for g in &f.groups {
            let by_member = g
                .members
                .iter()
                .map(|&(member, key)| {
                    let slot = self
                        .index
                        .get(key)
                        .expect("validated: member sessions are live after the frame");
                    (PoolSessionId::from_raw(member), key, slot)
                })
                .collect();
            let gslot = self.groups.insert(GroupEntry {
                group: g.group,
                pool: SessionPool::restore(&g.pool),
                by_member,
            });
            self.group_index.insert(g.group, gslot);
        }
        let retired = Arc::make_mut(&mut self.retired);
        if genesis {
            retired.clear();
        }
        retired.extend(f.retired.iter().cloned());
        self.ticks = f.ticks;
        self.retired_base = self.retired.len();
        self.removed_since_checkpoint.clear();
        Ok(())
    }

    pub(crate) fn handle_event(&mut self, event: Event) {
        match event {
            Event::JoinDedicated { key, tenant } => self.join_dedicated(key, tenant),
            Event::JoinGroup {
                group,
                tenant,
                members,
            } => self.join_group(group, tenant, &members),
            Event::Leave { key } => self.leave(key),
            Event::Tick { arrivals } => self.tick(&arrivals),
            Event::Collect { reply } => {
                // The service may already have dropped the receiver (e.g. a
                // torn-down snapshot); losing the report is then harmless.
                let _ = reply.send(self.report());
            }
            Event::ExportSession { key, reply } => {
                let _ = reply.send(self.checkpoint_session(key));
            }
            Event::Forget { key } => self.forget(key),
            Event::Import { cp } => self.import(&cp),
            Event::Shutdown => {}
        }
    }

    /// One session's restorable state, as [`ShardState::checkpoint`] lists
    /// it.
    fn session_checkpoint_at(&self, slot: SlotId, e: &SessionEntry) -> SessionCheckpoint {
        let i = slot.index as usize;
        let (dedicated, pooled) = match &e.kind {
            SessionKind::Dedicated => (Some(self.cols.alg_checkpoint(i, &self.single_cfg)), None),
            SessionKind::Pooled { group, member } => (None, Some((*group, member.raw()))),
        };
        SessionCheckpoint {
            key: e.key,
            tenant: e.tenant.clone(),
            meter: self.cols.meter_checkpoint(i, self.cost, self.window),
            leaving: e.leaving,
            dedicated,
            pooled,
        }
    }

    /// Captures one dedicated session's restorable state — the same shape
    /// [`ShardState::checkpoint`] emits for it, standalone. `None` for
    /// unknown keys and pooled members (a pool member's dynamics are not
    /// separable from its group).
    pub(crate) fn checkpoint_session(&self, key: u64) -> Option<SessionCheckpoint> {
        let slot = self.index.get(key)?;
        let entry = self.sessions.get(slot)?;
        if !matches!(entry.kind, SessionKind::Dedicated) {
            return None;
        }
        Some(self.session_checkpoint_at(slot, entry))
    }

    /// Removes a migrated-away session without pushing retired metrics:
    /// the session continues on another shard (possibly in another
    /// process) and its meter state travelled with the checkpoint, so
    /// retiring it here would double-count it in the merged view.
    fn forget(&mut self, key: u64) {
        let Some(slot) = self.index.remove(key) else {
            return;
        };
        // Only dedicated sessions are exported, so no group bookkeeping.
        if self.sessions.remove(slot).is_some() {
            self.cols.clear_slot(slot.index as usize);
            self.removed_since_checkpoint.push(key);
        }
    }

    /// Re-creates a migrated-in dedicated session bitwise from its
    /// checkpoint. The caller has already rewritten `cp.key` to a key
    /// that is fresh in this service.
    fn import(&mut self, cp: &SessionCheckpoint) {
        if cp.dedicated.is_none() || cp.pooled.is_some() {
            return; // only dedicated sessions migrate
        }
        self.insert_restored(cp);
        // A migrated-in session is new to this shard's checkpoint chain;
        // a crash restore ([`ShardState::restore`]) deliberately does
        // *not* set the bit — restored state is already captured by the
        // chain being restored from.
        if let Some(slot) = self.index.get(cp.key) {
            self.cols.flags[slot.index as usize] |= F_DIRTY;
        }
    }

    /// The shard-uniform kernel parameters, derived from the service
    /// config every session on this shard runs.
    fn params(&self) -> KernelParams {
        KernelParams {
            b_max: self.single_cfg.b_max,
            d_o: self.single_cfg.d_o as u64,
            high_denom: self.single_cfg.u_o * self.single_cfg.w as f64,
            w: self.window,
        }
    }

    /// Places an identity entry and grows the columns to cover its slot.
    fn insert_entry(
        &mut self,
        key: u64,
        tenant: Arc<str>,
        leaving: bool,
        kind: SessionKind,
    ) -> SlotId {
        let slot = self.sessions.insert(SessionEntry {
            key,
            tenant,
            leaving,
            kind,
        });
        self.index.insert(key, slot);
        self.cols.grow_to(self.sessions.slot_bound(), self.window);
        self.cols.keys[slot.index as usize] = key;
        slot
    }

    /// Re-creates one session from its checkpoint, bitwise.
    fn insert_restored(&mut self, cp: &SessionCheckpoint) {
        let kind = match (&cp.dedicated, &cp.pooled) {
            (Some(_), None) => SessionKind::Dedicated,
            (None, &Some((group, member))) => SessionKind::Pooled {
                group,
                member: PoolSessionId::from_raw(member),
            },
            _ => panic!("session checkpoint must be exactly one of dedicated or pooled"),
        };
        let slot = self.insert_entry(cp.key, cp.tenant.clone(), cp.leaving, kind);
        self.cols
            .restore_slot(slot.index as usize, cp, &self.single_cfg);
    }

    fn join_dedicated(&mut self, key: u64, tenant: Arc<str>) {
        let slot = self.insert_entry(key, tenant, false, SessionKind::Dedicated);
        let i = slot.index as usize;
        self.cols.init_fresh(i);
        self.cols.init_dedicated(i);
    }

    fn join_group(&mut self, group: u64, tenant: Arc<str>, members: &[u64]) {
        let gslot = match self.group_index.get(group) {
            Some(slot) => slot,
            None => {
                let slot = self.groups.insert(GroupEntry {
                    group,
                    pool: SessionPool::new(self.multi_cfg.clone()),
                    by_member: Vec::new(),
                });
                self.group_index.insert(group, slot);
                slot
            }
        };
        // Two-phase: every member joins the pool first (the pool's phase
        // arithmetic sees the whole batch), then the session entries land.
        let mut joined = Vec::with_capacity(members.len());
        {
            let entry = self.groups.get_mut(gslot).expect("group slot just placed");
            for &key in members {
                joined.push((key, entry.pool.join()));
            }
        }
        for (key, member) in joined {
            let slot = self.insert_entry(
                key,
                tenant.clone(),
                false,
                SessionKind::Pooled { group, member },
            );
            self.cols.init_fresh(slot.index as usize);
            self.groups
                .get_mut(gslot)
                .expect("group slot just placed")
                .by_member
                .push((member, key, slot));
        }
    }

    fn leave(&mut self, key: u64) {
        let Some(slot) = self.index.get(key) else {
            return; // already retired — leave is idempotent at the shard
        };
        let Some(entry) = self.sessions.get_mut(slot) else {
            return;
        };
        if entry.leaving {
            return;
        }
        entry.leaving = true;
        self.cols.flags[slot.index as usize] |= F_LEAVING | F_DIRTY;
        let pooled = match &entry.kind {
            SessionKind::Pooled { group, member } => Some((*group, *member)),
            // Nothing to tell the allocator; the session now receives zero
            // arrivals and retires once its link queue drains.
            SessionKind::Dedicated => None,
        };
        let drained_now = pooled.is_none() && self.cols.shadow_backlog[slot.index as usize] <= EPS;
        match pooled {
            Some((group, member)) => {
                // The pool moves the residual backlog to the overflow
                // queue and retires the slot once it drains.
                if let Some(gslot) = self.group_index.get(group) {
                    if let Some(g) = self.groups.get_mut(gslot) {
                        let _ = g.pool.leave(member);
                    }
                }
            }
            None if drained_now => self.retire(key),
            None => {}
        }
    }

    pub(crate) fn tick(&mut self, arrivals: &[(u64, f64)]) {
        if self.sessions.is_empty() {
            // Idle shard: no sessions means no groups either (a group
            // dissolves with its last member), so only the clock moves.
            self.ticks += 1;
            return;
        }
        let bound = self.sessions.slot_bound();
        self.cols.grow_to(bound, self.window);
        // Scatter pass: stage the batched arrivals into the arrived column
        // — one direct-mapped lookup, one array write, and one
        // touched-index record per arrival, so the un-scatter afterwards
        // costs O(arrivals), not O(slots) (the column is all-zero between
        // ticks by construction). The service boundary validated every
        // entry (finite, non-negative); the kernel asserts that contract
        // instead of clamping.
        debug_assert!(
            self.cols.arrived[..bound].iter().all(|&a| a == 0.0),
            "the arrived column rests at all-zero between ticks"
        );
        debug_assert!(self.cols.touched.is_empty());
        for &(key, bits) in arrivals {
            debug_assert!(
                bits.is_finite() && bits >= 0.0,
                "arrival ({key}, {bits}) entered the kernel unvalidated"
            );
            if let Some(slot) = self.index.get(key) {
                self.cols.arrived[slot.index as usize] += bits;
                self.cols.touched.push(slot.index);
            }
        }

        let p = self.params();
        let shard = self.shard;
        let kernel_threads = self.kernel_threads;
        let mut to_retire: Vec<u64> = Vec::new();
        {
            let ShardState {
                groups,
                kernel_pool,
                scratch,
                cols,
                ..
            } = self;

            // Group pass: submit and tick each pool once, gathering the
            // members' meter inputs; the metering itself runs below in
            // the same phase passes as the dedicated sweep. Pools never
            // read meter columns and each member is metered exactly once,
            // so deferring the meter past the pool loop reorders across
            // independent state only.
            scratch.grp.clear();
            scratch.grp_arr.clear();
            scratch.grp_alloc.clear();
            for (_, group) in groups.iter_mut() {
                for &(member, _, slot) in &group.by_member {
                    let i = slot.index as usize;
                    if cols.flags[i] & F_LEAVING == 0 {
                        let _ = group.pool.submit(member, cols.arrived[i]);
                    }
                }
                let allocs = group.pool.tick();
                // Pool member ids come from one monotone counter and both
                // the pool's slot order and `by_member` preserve join
                // order, so the allocation output and the membership are
                // two ascending runs: matching them is a single merge
                // cursor. A `by_member` entry the output skips is a
                // leaving member the pool retired (its slot drained on an
                // earlier tick).
                debug_assert!(
                    group.by_member.windows(2).all(|w| w[0].0 < w[1].0),
                    "group membership is ascending by pool member id"
                );
                let mut mi = 0usize;
                for (member, alloc) in allocs {
                    while group.by_member.get(mi).map(|&(m, _, _)| m) != Some(member) {
                        let &(_, key, _) = group
                            .by_member
                            .get(mi)
                            .expect("pool reported an unknown member");
                        to_retire.push(key);
                        mi += 1;
                    }
                    let (_, _, slot) = group.by_member[mi];
                    mi += 1;
                    let i = slot.index as usize;
                    let f = cols.flags[i];
                    let arrived = if f & F_LEAVING != 0 {
                        0.0
                    } else {
                        cols.arrived[i]
                    };
                    // Every metered tick mutates the slot, so gather
                    // membership is exactly dirtiness (skipped retiring
                    // members are not metered and not dirtied).
                    cols.flags[i] = f | F_DIRTY;
                    scratch.grp.push(i as u32);
                    scratch.grp_arr.push(arrived);
                    scratch.grp_alloc.push(alloc);
                }
                for &(_, key, _) in &group.by_member[mi..] {
                    to_retire.push(key);
                }
            }
            if !scratch.grp.is_empty() {
                let mut views = cols.chunk_views(&[bound], p.w);
                let view = &mut views[0];
                view.pass_meter_flow(
                    &scratch.grp,
                    &scratch.grp_arr,
                    &scratch.grp_alloc,
                    &mut scratch.served,
                );
                view.pass_meter_fifo(&scratch.grp, &scratch.grp_arr, &scratch.served);
                view.pass_meter_window(&scratch.grp, &scratch.grp_arr, &scratch.grp_alloc);
            }

            // Dedicated sweep ([`ChunkView::sweep`]): dense index lists
            // drive vectorization-friendly phase passes, in slot order
            // within each chunk. With `kernel_threads > 1` the slot range
            // splits into that many fixed chunks — the driving thread
            // sweeps chunk 0, the worker pool the rest — and the
            // per-chunk retire lists concatenate in chunk order, which
            // *is* slot order: slots are independent inside the sweep, so
            // the result is bitwise-identical across thread counts.
            let chunks = kernel_threads.min(bound).max(1);
            if chunks == 1 {
                let mut views = cols.chunk_views(&[bound], p.w);
                views[0].sweep(&p, scratch);
                to_retire.append(&mut scratch.retire);
            } else {
                let pool =
                    kernel_pool.get_or_insert_with(|| KernelPool::new(shard, kernel_threads - 1));
                let ends: Vec<usize> = (1..=chunks).map(|c| bound * c / chunks).collect();
                let mut views = cols.chunk_views(&ends, p.w).into_iter();
                let mut chunk0 = views.next().expect("at least one chunk");
                for (k, view) in views.enumerate() {
                    // SAFETY: the erased borrow is dead once the worker's
                    // completion lands on `done`, and every completion is
                    // collected below before this scope (and the borrow of
                    // `cols`) can end — even when a chunk panics.
                    let erased =
                        unsafe { std::mem::transmute::<ChunkView<'_>, ChunkView<'static>>(view) };
                    if pool.jobs[k]
                        .send(KernelJob {
                            view: erased,
                            params: p,
                            chunk: k + 1,
                        })
                        .is_err()
                    {
                        unreachable!("kernel workers outlive the pool");
                    }
                }
                let chunk0_outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    chunk0.sweep(&p, scratch);
                }));
                let mut rest: Vec<Option<Vec<u64>>> = (1..chunks).map(|_| None).collect();
                let mut worker_panic: Option<Box<dyn std::any::Any + Send>> = None;
                for _ in 1..chunks {
                    let (chunk, outcome) =
                        pool.done.recv().expect("kernel workers outlive the pool");
                    match outcome {
                        Ok(retire) => rest[chunk - 1] = Some(retire),
                        Err(payload) => worker_panic = Some(payload),
                    }
                }
                // All chunks have reported: no erased view is live, so
                // unwinding (or returning) is now sound.
                if let Err(payload) = chunk0_outcome {
                    std::panic::resume_unwind(payload);
                }
                if let Some(payload) = worker_panic {
                    std::panic::resume_unwind(payload);
                }
                to_retire.append(&mut scratch.retire);
                for retire in rest {
                    to_retire.extend(retire.expect("every chunk reported exactly once"));
                }
            }

            // O(arrivals) un-scatter: restore the column's all-zero
            // resting state by clearing only the touched indices.
            while let Some(i) = cols.touched.pop() {
                cols.arrived[i as usize] = 0.0;
            }
        }

        for key in to_retire {
            self.retire(key);
        }
        self.ticks += 1;
    }

    /// Freezes a session's metrics and removes it from the live set.
    fn retire(&mut self, key: u64) {
        let Some(slot) = self.index.remove(key) else {
            return;
        };
        let Some(entry) = self.sessions.remove(slot) else {
            return;
        };
        if let SessionKind::Pooled { group, member } = entry.kind {
            if let Some(gslot) = self.group_index.get(group) {
                let now_empty = match self.groups.get_mut(gslot) {
                    Some(g) => {
                        g.by_member.retain(|&(m, _, _)| m != member);
                        g.by_member.is_empty()
                    }
                    None => false,
                };
                if now_empty {
                    self.group_index.remove(group);
                    self.groups.remove(gslot);
                }
            }
        }
        let i = slot.index as usize;
        let metrics = self
            .cols
            .metrics(i, entry.key, entry.tenant, self.shard, self.cost);
        self.cols.clear_slot(i);
        Arc::make_mut(&mut self.retired).push(metrics);
        self.removed_since_checkpoint.push(key);
    }

    pub(crate) fn report(&self) -> ShardReport {
        let mut live = Vec::with_capacity(self.sessions.len());
        live.extend(self.sessions.iter().map(|(slot, e)| {
            self.cols.metrics(
                slot.index as usize,
                e.key,
                e.tenant.clone(),
                self.shard,
                self.cost,
            )
        }));
        ShardReport {
            shard: self.shard,
            epoch: self.epoch,
            retired: Arc::clone(&self.retired),
            live,
        }
    }

    /// Live session count (for tests).
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.sessions.len()
    }
}

/// Messages a supervised worker sends back to the driver out of band.
#[derive(Debug, Clone)]
pub(crate) enum WorkerMsg {
    /// A periodic state snapshot.
    Checkpoint(ShardCheckpoint),
    /// One tick event was applied. The driver counts acks against its
    /// dispatched ticks to bound how far the pipeline may run ahead.
    TickAck {
        /// The acking shard.
        shard: u64,
        /// Epoch of the worker that applied the tick; stale acks from a
        /// superseded worker are discarded.
        epoch: u64,
    },
    /// The worker caught a panic and exited.
    Failure(ShardFailure),
}

/// Everything a supervised worker needs beyond its state and event queue.
pub(crate) struct WorkerCtx {
    /// This worker's epoch, stamped into every outgoing message.
    pub epoch: u64,
    /// Set by the supervisor when this worker is superseded; the worker
    /// exits at the next opportunity without touching further events.
    pub cancel: Arc<AtomicBool>,
    /// Out-of-band channel for checkpoints and failure reports.
    pub msgs: crossbeam::channel::Sender<WorkerMsg>,
    /// Checkpoint cadence in ticks (0 = never).
    pub checkpoint_every: u64,
    /// Genesis cadence in checkpoints (every `full_every`-th emission is
    /// a full frame; always ≥ 1).
    pub full_every: u64,
    /// Replayable events already applied to the state at spawn (the
    /// journal replay baseline).
    pub events_base: u64,
    /// Armed fault, if this worker is the sabotage target. Only initial
    /// (epoch-0) workers ever get one, so a fault fires at most once.
    pub fault: Option<FaultPlan>,
}

pub(crate) fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// The supervised worker loop of one threaded shard: apply events until
/// shutdown, disconnection, or cancellation; catch panics and report them
/// as [`ShardFailure`]; ship a [`ShardCheckpoint`] every
/// `checkpoint_every` ticks; host the injected fault, if any.
pub(crate) fn run_worker(
    mut state: ShardState,
    rx: crossbeam::channel::Receiver<Event>,
    ctx: WorkerCtx,
) {
    state.epoch = ctx.epoch;
    let mut events_applied = ctx.events_base;
    let mut fault = ctx.fault;
    // Checkpoint encode buffer and pooled column sink, reused across
    // captures: steady-state checkpointing allocates only the shipped
    // `Arc<[u8]>`.
    let mut cp_buf: Vec<u8> = Vec::new();
    let mut cp_sink = columnar::ColumnSink::new();
    while let Ok(event) = rx.recv() {
        if ctx.cancel.load(Ordering::Acquire) {
            return;
        }
        if matches!(event, Event::Shutdown) {
            return;
        }
        let is_tick = matches!(event, Event::Tick { .. });
        // Read-only events never enter the journal, so they must not
        // advance the applied-events count the checkpoint trim keys on.
        let replayable = !matches!(event, Event::Collect { .. } | Event::ExportSession { .. });
        // Fault injection: fires when the worker is about to process the
        // planned tick, then disarms.
        let mut inject_kill = false;
        if is_tick && fault.is_some_and(|p| state.ticks() >= p.at_tick) {
            let plan = fault.take().expect("checked above");
            match plan.kind {
                FaultKind::Kill => inject_kill = true,
                FaultKind::Hang { millis } | FaultKind::Delay { millis } => {
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                    // A hung worker may have been replaced while asleep; if
                    // so, leave the event unapplied — the supervisor already
                    // replayed it into the replacement.
                    if ctx.cancel.load(Ordering::Acquire) {
                        return;
                    }
                }
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject_kill {
                panic!("injected fault: kill");
            }
            state.handle_event(event);
        }));
        match outcome {
            Ok(()) => {
                if replayable {
                    events_applied += 1;
                }
                if is_tick {
                    let _ = ctx.msgs.send(WorkerMsg::TickAck {
                        shard: state.shard,
                        epoch: ctx.epoch,
                    });
                }
                if is_tick
                    && ctx.checkpoint_every > 0
                    && state.ticks().is_multiple_of(ctx.checkpoint_every)
                {
                    // The genesis cadence keys on the shard clock, not a
                    // per-worker counter, so it is stable across restarts
                    // (a replacement worker's incrementals chain onto the
                    // frames the driver already holds).
                    let emit_no = state.ticks() / ctx.checkpoint_every;
                    let kind = if ctx.full_every <= 1 || emit_no.is_multiple_of(ctx.full_every) {
                        columnar::KIND_GENESIS
                    } else {
                        columnar::KIND_INCREMENTAL
                    };
                    cp_buf.clear();
                    let sessions = state.encode_columnar(kind, &mut cp_sink, &mut cp_buf);
                    let _ = ctx.msgs.send(WorkerMsg::Checkpoint(ShardCheckpoint {
                        shard: state.shard,
                        epoch: ctx.epoch,
                        events_applied,
                        kind,
                        sessions,
                        bytes: cp_buf.as_slice().into(),
                    }));
                }
            }
            Err(payload) => {
                // The state may be torn mid-event; abandon it and let the
                // supervisor rebuild from the last checkpoint + journal.
                let _ = ctx.msgs.send(WorkerMsg::Failure(ShardFailure {
                    shard: state.shard,
                    epoch: ctx.epoch,
                    reason: panic_reason(payload),
                }));
                return;
            }
        }
    }
}

#[cfg(test)]
mod reference {
    //! The pre-refactor entry-based kernel, kept verbatim as the bitwise
    //! oracle for the columnar kernel (see
    //! `tests::soa_kernel_matches_entry_based_reference`). Deliberately
    //! retains the original O(n²) member matching.

    use super::*;
    use crate::meter::SignallingMeter;
    use cdba_core::single::SingleSession;
    use cdba_sim::Allocator;

    enum RefKind {
        Dedicated(Box<SingleSession>),
        Pooled { group: u64, member: PoolSessionId },
    }

    struct RefEntry {
        key: u64,
        tenant: Arc<str>,
        meter: SignallingMeter,
        leaving: bool,
        kind: RefKind,
    }

    struct RefGroup {
        group: u64,
        pool: SessionPool,
        by_member: Vec<(PoolSessionId, u64, SlotId)>,
    }

    pub(crate) struct RefShard {
        shard: u64,
        single_cfg: SingleConfig,
        multi_cfg: MultiConfig,
        cost: CostModel,
        window: usize,
        sessions: Slab<RefEntry>,
        index: KeyMap,
        groups: Slab<RefGroup>,
        group_index: KeyMap,
        retired: Arc<Vec<SessionMetrics>>,
        scratch: Vec<f64>,
        ticks: u64,
    }

    impl RefShard {
        pub(crate) fn new(shard: u64, cfg: &ServiceConfig) -> Self {
            RefShard {
                shard,
                single_cfg: cfg.single_config(),
                multi_cfg: cfg.multi_config(),
                cost: cfg.cost,
                window: cfg.w,
                sessions: Slab::new(),
                index: KeyMap::new(),
                groups: Slab::new(),
                group_index: KeyMap::new(),
                retired: Arc::new(Vec::new()),
                scratch: Vec::new(),
                ticks: 0,
            }
        }

        fn push_session(&mut self, entry: RefEntry) -> SlotId {
            let key = entry.key;
            let slot = self.sessions.insert(entry);
            self.index.insert(key, slot);
            slot
        }

        pub(crate) fn join_dedicated(&mut self, key: u64, tenant: Arc<str>) {
            let alg = Box::new(SingleSession::new(self.single_cfg.clone()));
            self.push_session(RefEntry {
                key,
                tenant,
                meter: SignallingMeter::new(self.cost, self.window),
                leaving: false,
                kind: RefKind::Dedicated(alg),
            });
        }

        pub(crate) fn join_group(&mut self, group: u64, tenant: Arc<str>, members: &[u64]) {
            let gslot = match self.group_index.get(group) {
                Some(slot) => slot,
                None => {
                    let slot = self.groups.insert(RefGroup {
                        group,
                        pool: SessionPool::new(self.multi_cfg.clone()),
                        by_member: Vec::new(),
                    });
                    self.group_index.insert(group, slot);
                    slot
                }
            };
            let mut joined = Vec::with_capacity(members.len());
            {
                let entry = self.groups.get_mut(gslot).expect("group slot just placed");
                for &key in members {
                    joined.push((key, entry.pool.join()));
                }
            }
            for (key, member) in joined {
                let slot = self.push_session(RefEntry {
                    key,
                    tenant: tenant.clone(),
                    meter: SignallingMeter::new(self.cost, self.window),
                    leaving: false,
                    kind: RefKind::Pooled { group, member },
                });
                self.groups
                    .get_mut(gslot)
                    .expect("group slot just placed")
                    .by_member
                    .push((member, key, slot));
            }
        }

        pub(crate) fn leave(&mut self, key: u64) {
            let Some(slot) = self.index.get(key) else {
                return;
            };
            let Some(entry) = self.sessions.get_mut(slot) else {
                return;
            };
            if entry.leaving {
                return;
            }
            entry.leaving = true;
            let pooled = match &entry.kind {
                RefKind::Pooled { group, member } => Some((*group, *member)),
                RefKind::Dedicated(_) => None,
            };
            let drained_now = pooled.is_none() && entry.meter.is_drained();
            match pooled {
                Some((group, member)) => {
                    if let Some(gslot) = self.group_index.get(group) {
                        if let Some(g) = self.groups.get_mut(gslot) {
                            let _ = g.pool.leave(member);
                        }
                    }
                }
                None if drained_now => self.retire(key),
                None => {}
            }
        }

        pub(crate) fn tick(&mut self, arrivals: &[(u64, f64)]) {
            if self.sessions.is_empty() {
                self.ticks += 1;
                return;
            }
            self.scratch.clear();
            self.scratch.resize(self.sessions.slot_bound(), 0.0);
            for &(key, bits) in arrivals {
                if let Some(slot) = self.index.get(key) {
                    self.scratch[slot.index as usize] += bits.max(0.0);
                }
            }

            let RefShard {
                sessions,
                groups,
                scratch,
                ..
            } = self;
            let mut to_retire: Vec<u64> = Vec::new();

            for (_, group) in groups.iter_mut() {
                for &(member, _, slot) in &group.by_member {
                    let entry = sessions.get(slot).expect("member slot is live");
                    if !entry.leaving {
                        let _ = group.pool.submit(member, scratch[slot.index as usize]);
                    }
                }
                let allocs = group.pool.tick();
                let mut seen: Vec<PoolSessionId> = Vec::with_capacity(allocs.len());
                for (member, alloc) in allocs {
                    seen.push(member);
                    let &(_, _, slot) = group
                        .by_member
                        .iter()
                        .find(|&&(m, _, _)| m == member)
                        .expect("pool reported an unknown member");
                    let arrived_slot = scratch[slot.index as usize];
                    let entry = sessions.get_mut(slot).expect("member slot is live");
                    let arrived = if entry.leaving { 0.0 } else { arrived_slot };
                    entry.meter.record(arrived, alloc);
                }
                for &(member, key, _) in &group.by_member {
                    if !seen.contains(&member) {
                        to_retire.push(key);
                    }
                }
            }

            for (slot, entry) in sessions.iter_mut() {
                if let RefKind::Dedicated(alg) = &mut entry.kind {
                    let arrived = if entry.leaving {
                        0.0
                    } else {
                        scratch[slot.index as usize]
                    };
                    let alloc = alg.on_tick(arrived);
                    entry.meter.record(arrived, alloc);
                    if entry.leaving && entry.meter.is_drained() {
                        to_retire.push(entry.key);
                    }
                }
            }

            for key in to_retire {
                self.retire(key);
            }
            self.ticks += 1;
        }

        fn retire(&mut self, key: u64) {
            let Some(slot) = self.index.remove(key) else {
                return;
            };
            let Some(entry) = self.sessions.remove(slot) else {
                return;
            };
            if let RefKind::Pooled { group, member } = entry.kind {
                if let Some(gslot) = self.group_index.get(group) {
                    let now_empty = match self.groups.get_mut(gslot) {
                        Some(g) => {
                            g.by_member.retain(|&(m, _, _)| m != member);
                            g.by_member.is_empty()
                        }
                        None => false,
                    };
                    if now_empty {
                        self.group_index.remove(group);
                        self.groups.remove(gslot);
                    }
                }
            }
            Arc::make_mut(&mut self.retired).push(entry.meter.metrics(
                entry.key,
                entry.tenant,
                self.shard,
            ));
        }

        pub(crate) fn report(&self) -> ShardReport {
            let mut live = Vec::with_capacity(self.sessions.len());
            live.extend(
                self.sessions
                    .iter()
                    .map(|(_, e)| e.meter.metrics(e.key, e.tenant.clone(), self.shard)),
            );
            ShardReport {
                shard: self.shard,
                epoch: 0,
                retired: Arc::clone(&self.retired),
                live,
            }
        }

        pub(crate) fn checkpoint(&self) -> ShardStateCheckpoint {
            let sessions = self
                .sessions
                .iter()
                .map(|(_, e)| {
                    let (dedicated, pooled) = match &e.kind {
                        RefKind::Dedicated(alg) => (Some(alg.checkpoint()), None),
                        RefKind::Pooled { group, member } => (None, Some((*group, member.raw()))),
                    };
                    SessionCheckpoint {
                        key: e.key,
                        tenant: e.tenant.clone(),
                        meter: e.meter.checkpoint(),
                        leaving: e.leaving,
                        dedicated,
                        pooled,
                    }
                })
                .collect();
            let mut groups: Vec<GroupCheckpoint> = self
                .groups
                .iter()
                .map(|(_, g)| {
                    let mut members: Vec<(u64, u64)> = g
                        .by_member
                        .iter()
                        .map(|&(member, key, _)| (member.raw(), key))
                        .collect();
                    members.sort_unstable();
                    GroupCheckpoint {
                        group: g.group,
                        pool: g.pool.checkpoint(),
                        members,
                    }
                })
                .collect();
            groups.sort_unstable_by_key(|g| g.group);
            ShardStateCheckpoint {
                sessions,
                groups,
                retired: Arc::clone(&self.retired),
                ticks: self.ticks,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use proptest::prelude::*;

    fn shard() -> ShardState {
        ShardState::new(0, &shard_cfg())
    }

    fn shard_cfg() -> ServiceConfig {
        ServiceConfig::builder(1024.0)
            .session_b_max(16.0)
            .group_b_o(8.0)
            .offline_delay(4)
            .window(4)
            .build()
            .unwrap()
    }

    fn all_sessions(report: &ShardReport) -> Vec<SessionMetrics> {
        let mut out: Vec<SessionMetrics> = report.retired.as_ref().clone();
        out.extend(report.live.iter().cloned());
        out
    }

    #[test]
    #[ignore = "manual perf probe: cargo test --release -p cdba-ctrl kernel_throughput -- --ignored --nocapture"]
    fn kernel_throughput_probe() {
        let n: usize = 100_000;
        let cfg = ServiceConfig::builder(n as f64 * 16.0)
            .session_b_max(16.0)
            .group_b_o(8.0)
            .offline_delay(8)
            .window(16)
            .build()
            .unwrap();
        let mut arrivals = Vec::with_capacity(n);
        let ticks = 20u64;

        let mut soa = ShardState::new(0, &cfg);
        for key in 0..n as u64 {
            soa.join_dedicated(key, "acme".into());
        }
        let started = std::time::Instant::now();
        for round in 0..ticks {
            arrivals.clear();
            arrivals.extend((0..n as u64).map(|k| (k, ((round + k) % 5) as f64)));
            soa.tick(&arrivals);
        }
        let soa_elapsed = started.elapsed();

        let mut entry = reference::RefShard::new(0, &cfg);
        for key in 0..n as u64 {
            entry.join_dedicated(key, "acme".into());
        }
        let started = std::time::Instant::now();
        for round in 0..ticks {
            arrivals.clear();
            arrivals.extend((0..n as u64).map(|k| (k, ((round + k) % 5) as f64)));
            entry.tick(&arrivals);
        }
        let entry_elapsed = started.elapsed();
        println!(
            "soa: {:.1} ticks/s, entry-based: {:.1} ticks/s",
            ticks as f64 / soa_elapsed.as_secs_f64(),
            ticks as f64 / entry_elapsed.as_secs_f64(),
        );

        // Per-pass timings over the warmed SoA state, via a full-range
        // chunk view and the same phase passes the sweep runs.
        let p = soa.params();
        let cols = &mut soa.cols;
        let rounds = 20u32;
        let per = |d: std::time::Duration| d.as_nanos() as f64 / (rounds as f64 * n as f64);
        let mut s = SweepScratch::default();
        let mut view = cols.chunk_views(&[n], p.w).pop().unwrap();
        let arr: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let started = std::time::Instant::now();
        let mut sink = 0.0f64;
        let mut pass_ns = [0u128; 7];
        for _ in 0..rounds {
            let t0 = std::time::Instant::now();
            s.open.clear();
            s.open_arr.clear();
            s.ded.clear();
            for (j, &a) in arr.iter().enumerate() {
                s.ded.push(j as u32);
                if view.flags[j] & F_STAGE_OPEN != 0 {
                    s.open.push(j as u32);
                    s.open_arr.push(a);
                }
            }
            let t1 = std::time::Instant::now();
            view.pass_track(&s.open, &s.open_arr, &p);
            let t2 = std::time::Instant::now();
            view.pass_hull_query(&s.open, &p);
            let t3 = std::time::Instant::now();
            view.pass_decide(&s.ded, &arr, &mut s.alloc, &p);
            let t4 = std::time::Instant::now();
            sink += s.alloc.iter().sum::<f64>();
            pass_ns[0] += (t1 - t0).as_nanos();
            pass_ns[1] += (t2 - t1).as_nanos();
            pass_ns[2] += (t3 - t2).as_nanos();
            pass_ns[3] += (t4 - t3).as_nanos();
        }
        let alg_elapsed = started.elapsed();
        let started = std::time::Instant::now();
        for _ in 0..rounds {
            let t0 = std::time::Instant::now();
            view.pass_meter_flow(&s.ded, &arr, &s.alloc, &mut s.served);
            let t1 = std::time::Instant::now();
            view.pass_meter_fifo(&s.ded, &arr, &s.served);
            let t2 = std::time::Instant::now();
            view.pass_meter_window(&s.ded, &arr, &s.alloc);
            let t3 = std::time::Instant::now();
            pass_ns[4] += (t1 - t0).as_nanos();
            pass_ns[5] += (t2 - t1).as_nanos();
            pass_ns[6] += (t3 - t2).as_nanos();
        }
        let meter_elapsed = started.elapsed();
        let pn = |i: usize| pass_ns[i] as f64 / (rounds as f64 * n as f64);
        println!(
            "per-pass ns/session: lists {:.1}, track {:.1}, hull {:.1}, decide {:.1}, \
             flow {:.1}, fifo {:.1}, window {:.1}",
            pn(0),
            pn(1),
            pn(2),
            pn(3),
            pn(4),
            pn(5),
            pn(6),
        );
        let mut hull_points = 0usize;
        let mut open_stages = 0usize;
        for j in 0..n {
            if view.flags[j] & F_STAGE_OPEN != 0 {
                open_stages += 1;
                hull_points += view.hull[j].len();
            }
        }
        println!(
            "alg passes: {:.1} ns/session, meter passes: {:.1} ns/session \
             (open stages {open_stages}, avg hull {:.1} pts, sink {sink:.0})",
            per(alg_elapsed),
            per(meter_elapsed),
            hull_points as f64 / open_stages.max(1) as f64,
        );
    }

    #[test]
    fn dedicated_lifecycle_joins_ticks_retires() {
        let mut s = shard();
        s.handle_event(Event::JoinDedicated {
            key: 7,
            tenant: "acme".into(),
        });
        for _ in 0..8 {
            s.handle_event(Event::Tick {
                arrivals: vec![(7, 2.0)].into(),
            });
        }
        assert_eq!(s.live(), 1);
        s.handle_event(Event::Leave { key: 7 });
        // Zero-arrival ticks drain the shadow queue, then the slot retires.
        for _ in 0..32 {
            s.handle_event(Event::Tick {
                arrivals: vec![].into(),
            });
        }
        assert_eq!(s.live(), 0);
        let report = s.report();
        let sessions = all_sessions(&report);
        assert_eq!(sessions.len(), 1);
        let m = &sessions[0];
        assert_eq!(m.session, 7);
        assert_eq!(&*m.tenant, "acme");
        assert!((m.total_served - m.total_arrived).abs() < 1e-9);
        assert!(m.changes > 0);
    }

    #[test]
    fn group_members_share_one_pool() {
        let mut s = shard();
        s.handle_event(Event::JoinGroup {
            group: 1,
            tenant: "acme".into(),
            members: vec![10, 11].into(),
        });
        for _ in 0..12 {
            s.handle_event(Event::Tick {
                arrivals: vec![(10, 1.0), (11, 1.0)].into(),
            });
        }
        let report = s.report();
        let sessions = all_sessions(&report);
        assert_eq!(sessions.len(), 2);
        for m in &sessions {
            assert!(m.total_allocated > 0.0, "pool served {m:?}");
        }
        // One member leaves; the pool drains it and the shard retires it.
        s.handle_event(Event::Leave { key: 10 });
        for _ in 0..32 {
            s.handle_event(Event::Tick {
                arrivals: vec![(11, 1.0)].into(),
            });
        }
        assert_eq!(s.live(), 1);
        assert_eq!(s.groups.len(), 1);
        s.handle_event(Event::Leave { key: 11 });
        for _ in 0..32 {
            s.handle_event(Event::Tick {
                arrivals: vec![].into(),
            });
        }
        assert_eq!(s.live(), 0);
        assert!(s.groups.is_empty(), "empty group is dropped");
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let mut s = shard();
        s.handle_event(Event::Tick {
            arrivals: vec![(99, 5.0)].into(),
        });
        s.handle_event(Event::Leave { key: 99 });
        assert_eq!(s.live(), 0);
    }

    #[test]
    fn retired_slots_are_reused_and_reports_share_the_retired_list() {
        let mut s = shard();
        s.handle_event(Event::JoinDedicated {
            key: 0,
            tenant: "acme".into(),
        });
        s.handle_event(Event::Leave { key: 0 }); // never ticked: drained, retires at once
        assert_eq!(s.live(), 0);
        s.handle_event(Event::JoinDedicated {
            key: 1,
            tenant: "acme".into(),
        });
        assert_eq!(
            s.sessions.slot_bound(),
            1,
            "the retired session's slot is reused"
        );
        let r1 = s.report();
        let r2 = s.report();
        assert!(
            Arc::ptr_eq(&r1.retired, &r2.retired),
            "steady-state reports share one retired list"
        );
        assert_eq!(r1.retired.len(), 1);
        assert_eq!(r1.live.len(), 1);
        // A retirement after a report was taken must not mutate the shared
        // list the earlier report still holds (copy-on-retire).
        s.handle_event(Event::Leave { key: 1 });
        assert_eq!(r1.retired.len(), 1, "earlier report is unaffected");
        assert_eq!(s.report().retired.len(), 2);
    }

    #[test]
    fn export_forget_import_moves_a_session_bitwise() {
        let mut src = shard();
        let mut dst = shard();
        src.handle_event(Event::JoinDedicated {
            key: 3,
            tenant: "acme".into(),
        });
        src.handle_event(Event::JoinGroup {
            group: 0,
            tenant: "globex".into(),
            members: vec![4, 5].into(),
        });
        for t in 0..24u64 {
            src.handle_event(Event::Tick {
                arrivals: vec![(3, (t % 3) as f64), (4, 1.0), (5, 2.0)].into(),
            });
        }
        // Pooled members refuse to export; dedicated sessions capture.
        assert!(src.checkpoint_session(4).is_none());
        assert!(src.checkpoint_session(99).is_none());
        let mut cp = src.checkpoint_session(3).expect("dedicated exports");
        // Move it: forget at the source (no retired metrics left behind),
        // import at the destination under a fresh key.
        src.handle_event(Event::Forget { key: 3 });
        assert_eq!(src.live(), 2);
        assert_eq!(src.report().retired.len(), 0, "forget must not retire");
        cp.key = 7;
        src.handle_event(Event::Tick {
            arrivals: vec![(4, 1.0), (5, 1.0)].into(),
        });
        dst.handle_event(Event::Import { cp: Arc::new(cp) });
        assert_eq!(dst.live(), 1);
        // A twin that never migrated, driven through the same arrival
        // history under key 7, stays bitwise identical to the migrated
        // session.
        let mut twin_ref = shard();
        twin_ref.handle_event(Event::JoinDedicated {
            key: 7,
            tenant: "acme".into(),
        });
        for t in 0..24u64 {
            twin_ref.handle_event(Event::Tick {
                arrivals: vec![(7, (t % 3) as f64)].into(),
            });
        }
        for t in 0..16u64 {
            let bits = ((t + 1) % 4) as f64;
            dst.handle_event(Event::Tick {
                arrivals: vec![(7, bits)].into(),
            });
            twin_ref.handle_event(Event::Tick {
                arrivals: vec![(7, bits)].into(),
            });
        }
        let moved = dst.report().live;
        let stayed = twin_ref.report().live;
        assert_eq!(moved.len(), 1);
        assert_eq!(moved, stayed, "migration is bitwise-invisible");
    }

    #[test]
    fn checkpoint_binary_roundtrip_restores_bitwise() {
        let mut s = shard();
        s.handle_event(Event::JoinDedicated {
            key: 0,
            tenant: "acme".into(),
        });
        s.handle_event(Event::JoinGroup {
            group: 0,
            tenant: "globex".into(),
            members: vec![1, 2].into(),
        });
        for t in 0..20u64 {
            s.handle_event(Event::Tick {
                arrivals: vec![(0, (t % 3) as f64), (1, 1.0), (2, 2.0)].into(),
            });
        }
        s.handle_event(Event::Leave { key: 1 });
        for _ in 0..8 {
            s.handle_event(Event::Tick {
                arrivals: vec![(0, 1.0), (2, 2.0)].into(),
            });
        }
        let cp = s.checkpoint();
        let mut bytes = Vec::new();
        crate::codec::checkpoint::encode(&cp, &mut bytes);
        let decoded = crate::codec::checkpoint::decode(&bytes).unwrap();
        assert_eq!(decoded, cp, "binary checkpoint round-trips exactly");

        let mut twin = ShardState::restore(0, &shard_cfg(), &decoded);
        assert_eq!(twin.checkpoint(), cp, "restore is lossless");
        // Lockstep continuation: the restored shard must stay bitwise
        // identical to the original under further events.
        for _ in 0..16 {
            let arrivals: Arc<[(u64, f64)]> = vec![(0, 2.0), (2, 1.0)].into();
            s.handle_event(Event::Tick {
                arrivals: arrivals.clone(),
            });
            twin.handle_event(Event::Tick { arrivals });
        }
        assert_eq!(twin.checkpoint(), s.checkpoint());
    }

    #[test]
    fn checkpoint_validation_rejects_out_of_domain_floats() {
        let mut s = shard();
        s.handle_event(Event::JoinDedicated {
            key: 0,
            tenant: "acme".into(),
        });
        for t in 0..12u64 {
            s.handle_event(Event::Tick {
                arrivals: vec![(0, (t % 4) as f64)].into(),
            });
        }
        let cp = s.checkpoint_session(0).expect("dedicated exports");
        assert_eq!(cp.validate(), Ok(()), "honest checkpoints validate");

        let mut bad = cp.clone();
        bad.meter.shadow_backlog = f64::NAN;
        assert_eq!(bad.validate(), Err("meter.shadow_backlog"));

        let mut bad = cp.clone();
        bad.meter.total_arrived = -5.0;
        assert_eq!(bad.validate(), Err("meter.totals"));

        let mut bad = cp.clone();
        if let Some(alg) = &mut bad.dedicated {
            alg.backlog = f64::INFINITY;
        }
        assert_eq!(bad.validate(), Err("alg.backlog"));

        let mut bad = cp.clone();
        if let Some(alg) = &mut bad.dedicated {
            if let Some(high) = &mut alg.stage_high {
                high.window_sum = -1.0;
            }
        }
        assert_eq!(bad.validate(), Err("alg.stage_high.window_sum"));

        let mut bad = cp.clone();
        bad.pooled = Some((0, 0));
        assert_eq!(bad.validate(), Err("kind"), "dedicated+pooled is rejected");
    }

    /// Random lifecycle script for the lockstep oracle test.
    #[derive(Debug, Clone)]
    enum Op {
        JoinDedicated,
        JoinGroup(usize),
        Leave(usize),
        Ticks(u8, u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        (0u8..9u8, 0usize..32usize, 1u8..=6u8, 0u8..=255u8).prop_map(|(class, idx, n, seed)| {
            match class {
                0 | 1 => Op::JoinDedicated,
                2 => Op::JoinGroup(2 + idx % 3),
                3 | 4 => Op::Leave(idx),
                _ => Op::Ticks(n, seed),
            }
        })
    }

    /// Hull-and-query pairs for the `hull_max_slope` oracle test, three
    /// arms behind a class selector:
    ///
    /// - classes 0–3: hulls built exactly the way the kernel builds them
    ///   — cumulative arrival totals pushed through [`hull_add_point`] at
    ///   x = 0, 1, 2, …, queried at a later x with the running total as y
    ///   (a one-arrival sequence yields the single-vertex hull);
    /// - class 4: perfectly collinear vertices (which [`hull_add_point`]
    ///   would collapse, so built directly) with an arbitrary query y —
    ///   the slope sequence is then monotone, the edge of unimodality;
    /// - class 5: the explicit one-vertex hull, where the binary search
    ///   never iterates.
    fn hull_and_query() -> impl Strategy<Value = (Vec<(f64, f64)>, (f64, f64))> {
        (
            0u8..6,
            proptest::collection::vec(0.0f64..32.0, 1..200),
            (2usize..50, -100.0f64..100.0, -4.0f64..4.0),
            (-100.0f64..100.0, 1u64..=16),
        )
            .prop_map(|(class, arrivals, (n, c, s), (qy, extra))| match class {
                0..=3 => {
                    let mut hull = Vec::new();
                    let mut total = 0.0f64;
                    for (i, a) in arrivals.iter().enumerate() {
                        hull_add_point(&mut hull, (i as f64, total));
                        total += a;
                    }
                    let q = ((arrivals.len() as u64 - 1 + extra) as f64, total);
                    (hull, q)
                }
                4 => {
                    let hull: Vec<(f64, f64)> =
                        (0..n).map(|i| (i as f64, c + s * i as f64)).collect();
                    (hull, ((n as u64 - 1 + extra) as f64, qy))
                }
                _ => (vec![(0.0, c)], (extra as f64, qy)),
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24 })]

        /// `hull_max_slope`'s unimodal binary search against the naive
        /// linear scan it replaces: over kernel-built hulls, perfectly
        /// collinear hulls, and the single-vertex hull, both must return
        /// the *same f64* — the slope at the best vertex is the same
        /// division either way, so equality is bitwise, not approximate.
        #[test]
        fn hull_max_slope_matches_linear_scan_oracle(hq in hull_and_query()) {
            let (hull, q) = hq;
            let oracle = hull
                .iter()
                .map(|&(x, y)| (q.1 - y) / (q.0 - x))
                .fold(f64::NEG_INFINITY, f64::max);
            let fast = hull_max_slope(&hull, q);
            prop_assert_eq!(fast, oracle);
        }

        /// The kernel-thread knob is bitwise-invisible at the shard
        /// level: the chunked parallel sweep at 2 and 4 threads must
        /// produce byte-identical binary checkpoints to the sequential
        /// sweep after every tick of a random lifecycle script.
        #[test]
        fn kernel_thread_count_is_bitwise_invisible(
            ops in proptest::collection::vec(op_strategy(), 1..40)
        ) {
            let mk = |threads: usize| {
                let cfg = ServiceConfig::builder(1024.0)
                    .session_b_max(16.0)
                    .group_b_o(8.0)
                    .offline_delay(4)
                    .window(4)
                    .kernel_threads(threads)
                    .build()
                    .unwrap();
                ShardState::new(0, &cfg)
            };
            let mut shards = [mk(1), mk(2), mk(4)];
            let mut keys: Vec<u64> = Vec::new();
            let mut next_key = 0u64;
            let mut next_group = 0u64;
            let mut tick_no = 0u64;
            for op in &ops {
                match op {
                    Op::JoinDedicated => {
                        for s in &mut shards {
                            s.join_dedicated(next_key, "acme".into());
                        }
                        keys.push(next_key);
                        next_key += 1;
                    }
                    Op::JoinGroup(n) => {
                        let members: Vec<u64> = (0..*n as u64).map(|j| next_key + j).collect();
                        for s in &mut shards {
                            s.join_group(next_group, "globex".into(), &members);
                        }
                        keys.extend_from_slice(&members);
                        next_key += *n as u64;
                        next_group += 1;
                    }
                    Op::Leave(i) => {
                        if !keys.is_empty() {
                            let key = keys[i % keys.len()];
                            for s in &mut shards {
                                s.leave(key);
                            }
                        }
                    }
                    Op::Ticks(n, seed) => {
                        for _ in 0..*n {
                            let arrivals: Vec<(u64, f64)> = keys
                                .iter()
                                .enumerate()
                                .map(|(j, &k)| {
                                    let lcg = (*seed as u64 + tick_no * 31 + j as u64 * 7) % 5;
                                    (k, lcg as f64 * 0.75)
                                })
                                .collect();
                            for s in &mut shards {
                                s.tick(&arrivals);
                            }
                            tick_no += 1;
                            let enc = |s: &ShardState| {
                                let mut out = Vec::new();
                                crate::codec::checkpoint::encode(&s.checkpoint(), &mut out);
                                out
                            };
                            let base = enc(&shards[0]);
                            prop_assert_eq!(&base, &enc(&shards[1]));
                            prop_assert_eq!(&base, &enc(&shards[2]));
                        }
                    }
                }
            }
        }

        /// The columnar kernel against the retained entry-based kernel:
        /// after every tick of a random join/leave/arrival script, the two
        /// shards' binary-encoded checkpoints must be byte-identical —
        /// i.e. every per-session float (backlogs, tracker hulls, window
        /// sums, metric totals) matches bitwise, not just approximately.
        #[test]
        fn soa_kernel_matches_entry_based_reference(
            ops in proptest::collection::vec(op_strategy(), 1..40)
        ) {
            let cfg = shard_cfg();
            let mut soa = ShardState::new(0, &cfg);
            let mut oracle = reference::RefShard::new(0, &cfg);
            let mut keys: Vec<u64> = Vec::new();
            let mut next_key = 0u64;
            let mut next_group = 0u64;
            let mut tick_no = 0u64;
            for op in &ops {
                match op {
                    Op::JoinDedicated => {
                        soa.join_dedicated(next_key, "acme".into());
                        oracle.join_dedicated(next_key, "acme".into());
                        keys.push(next_key);
                        next_key += 1;
                    }
                    Op::JoinGroup(n) => {
                        let members: Vec<u64> = (0..*n as u64).map(|j| next_key + j).collect();
                        soa.join_group(next_group, "globex".into(), &members);
                        oracle.join_group(next_group, "globex".into(), &members);
                        keys.extend_from_slice(&members);
                        next_key += *n as u64;
                        next_group += 1;
                    }
                    Op::Leave(i) => {
                        if !keys.is_empty() {
                            let key = keys[i % keys.len()];
                            soa.leave(key);
                            oracle.leave(key);
                        }
                    }
                    Op::Ticks(n, seed) => {
                        for _ in 0..*n {
                            // Arrivals for every key ever issued — retired
                            // and draining keys included, which both
                            // kernels must ignore identically.
                            let arrivals: Vec<(u64, f64)> = keys
                                .iter()
                                .enumerate()
                                .map(|(j, &k)| {
                                    let lcg = (*seed as u64 + tick_no * 31 + j as u64 * 7) % 5;
                                    (k, lcg as f64 * 0.75)
                                })
                                .collect();
                            soa.tick(&arrivals);
                            oracle.tick(&arrivals);
                            tick_no += 1;
                            let mut a = Vec::new();
                            let mut b = Vec::new();
                            crate::codec::checkpoint::encode(&soa.checkpoint(), &mut a);
                            crate::codec::checkpoint::encode(&oracle.checkpoint(), &mut b);
                            prop_assert_eq!(a, b);
                        }
                    }
                }
            }
            let (soa_report, oracle_report) = (soa.report(), oracle.report());
            prop_assert_eq!(soa_report.live, oracle_report.live);
            prop_assert_eq!(soa_report.retired.as_ref(), oracle_report.retired.as_ref());
        }

        /// The columnar chain against the full v1 codec: a mirror shard
        /// fed only (genesis + dirty incremental) frames must stay
        /// bitwise-identical to the live shard it mirrors, session for
        /// session. Slot placement may diverge (the mirror compacts in
        /// frame-row order), so both sides are compared through their
        /// key-sorted canonical checkpoints — still a per-float bitwise
        /// comparison, just order-insensitive. Every dedicated session is
        /// also round-tripped through the single-row migration frame.
        #[test]
        fn columnar_chain_matches_full_checkpoint(
            ops in proptest::collection::vec(op_strategy(), 1..40),
            full_every in 1u64..5,
        ) {
            let cfg = shard_cfg();
            let mut live = ShardState::new(0, &cfg);
            let mut mirror = ShardState::new(0, &cfg);
            let mut sink = columnar::ColumnSink::new();
            let mut scratch = ApplyScratch::default();
            let mut buf = Vec::new();
            let mut keys: Vec<u64> = Vec::new();
            let mut next_key = 0u64;
            let mut next_group = 0u64;
            let mut tick_no = 0u64;
            for (frame_no, op) in ops.iter().enumerate() {
                match op {
                    Op::JoinDedicated => {
                        live.join_dedicated(next_key, "acme".into());
                        keys.push(next_key);
                        next_key += 1;
                    }
                    Op::JoinGroup(n) => {
                        let members: Vec<u64> = (0..*n as u64).map(|j| next_key + j).collect();
                        live.join_group(next_group, "globex".into(), &members);
                        keys.extend_from_slice(&members);
                        next_key += *n as u64;
                        next_group += 1;
                    }
                    Op::Leave(i) => {
                        if !keys.is_empty() {
                            live.leave(keys[i % keys.len()]);
                        }
                    }
                    Op::Ticks(n, seed) => {
                        for _ in 0..*n {
                            let arrivals: Vec<(u64, f64)> = keys
                                .iter()
                                .enumerate()
                                .map(|(j, &k)| {
                                    let lcg = (*seed as u64 + tick_no * 31 + j as u64 * 7) % 5;
                                    (k, lcg as f64 * 0.75)
                                })
                                .collect();
                            live.tick(&arrivals);
                            tick_no += 1;
                        }
                    }
                }
                let kind = if (frame_no as u64).is_multiple_of(full_every) {
                    columnar::KIND_GENESIS
                } else {
                    columnar::KIND_INCREMENTAL
                };
                buf.clear();
                live.encode_columnar(kind, &mut sink, &mut buf);
                let frame = columnar::parse(&buf).expect("own frames parse");
                mirror.apply_frame(&frame, &mut scratch).expect("own frames apply");
                prop_assert_eq!(canonical_bytes(&live), canonical_bytes(&mirror));
            }
            // The v1 restore of the mirrored state is equivalent too.
            let restored = ShardState::restore(0, &cfg, &mirror.checkpoint());
            prop_assert_eq!(canonical_bytes(&live), canonical_bytes(&restored));
            // Migration frames: every session round-trips bitwise through
            // the single-row column slice.
            for s in &live.checkpoint().sessions {
                buf.clear();
                columnar::encode_session_frame(s, &mut sink, &mut buf);
                let frame = columnar::parse(&buf).expect("migration frame parses");
                let rt = columnar::session_from_frame(&frame).expect("migration frame lands");
                let (mut a, mut b) = (Vec::new(), Vec::new());
                crate::codec::checkpoint::encode_session(s, &mut a);
                crate::codec::checkpoint::encode_session(&rt, &mut b);
                prop_assert_eq!(a, b);
            }
        }
    }

    /// Both shards' full state, key-sorted and v1-encoded: the bitwise
    /// yardstick for chain-vs-full comparisons (slot order is placement,
    /// not state).
    fn canonical_bytes(state: &ShardState) -> Vec<u8> {
        let mut cp = state.checkpoint();
        cp.sessions.sort_by_key(|s| s.key);
        let mut out = Vec::new();
        crate::codec::checkpoint::encode(&cp, &mut out);
        out
    }
}
