//! The shard executor: the event-driven state machine that drives session
//! allocators and meters.
//!
//! One [`ShardState`] owns every session placed on it. Both execution
//! backends — the inline deterministic fallback and the per-shard worker
//! threads — drive the *same* [`ShardState::handle_event`] code path, so
//! the two modes cannot diverge. Sessions never interact across shards
//! (a pooled group lives wholly on one shard), which is what makes the
//! service's metrics invariant under the shard count.
//!
//! Threaded workers are supervised: [`run_worker`] catches panics
//! (reporting a typed [`ShardFailure`] instead of dying silently),
//! periodically ships a [`ShardCheckpoint`] — a serde snapshot of every
//! session's meter and algorithm state — back to the driver, honours a
//! cancellation flag so a superseded worker cannot corrupt anything after
//! the supervisor moves on, and hosts the fault-injection hooks of
//! [`crate::fault`]. Every message carries the worker's *epoch* so the
//! driver can discard stragglers from replaced workers.

use crate::config::ServiceConfig;
use crate::fault::{FaultKind, FaultPlan};
use crate::meter::{MeterCheckpoint, SessionMetrics, SignallingMeter};
use cdba_analysis::cost::CostModel;
use cdba_core::config::{MultiConfig, SingleConfig};
use cdba_core::multi::pool::{PoolCheckpoint, SessionId as PoolSessionId, SessionPool};
use cdba_core::single::{SingleCheckpoint, SingleSession};
use cdba_sim::Allocator;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A control event delivered to one shard. Within a shard, events apply in
/// send order (the channels are FIFO), which is all the ordering the
/// executor needs.
///
/// Payloads are `Arc`-shared with the driver's journal: delivering an
/// event costs a refcount bump, not a deep clone of tenants, member lists,
/// or arrival batches.
#[derive(Debug)]
pub(crate) enum Event {
    /// Place a dedicated session running the single-session algorithm.
    JoinDedicated {
        /// Service-wide session key.
        key: u64,
        /// Owning tenant.
        tenant: Arc<str>,
    },
    /// Place a pooled group running the phased algorithm; all members land
    /// on this shard.
    JoinGroup {
        /// Service-wide group id.
        group: u64,
        /// Owning tenant.
        tenant: Arc<str>,
        /// Service-wide keys of the members, in join order.
        members: Arc<[u64]>,
    },
    /// Begin draining a session out.
    Leave {
        /// The session to drain.
        key: u64,
    },
    /// Advance every session on this shard by one tick.
    Tick {
        /// `(key, bits)` arrivals for this tick; sessions not listed get 0.
        arrivals: Arc<[(u64, f64)]>,
    },
    /// Report all metrics (live and retired sessions) back.
    Collect {
        /// Where to send the report.
        reply: crossbeam::channel::Sender<ShardReport>,
    },
    /// Stop the worker loop.
    Shutdown,
}

/// One shard's answer to [`Event::Collect`].
#[derive(Debug, Clone)]
pub(crate) struct ShardReport {
    /// The reporting shard.
    pub shard: u64,
    /// Epoch of the worker that produced the report (0 inline). The driver
    /// discards reports from superseded workers.
    pub epoch: u64,
    /// Metrics of every session the shard has seen: live ones at their
    /// current totals, retired ones frozen at retirement.
    pub sessions: Vec<SessionMetrics>,
}

/// A replayable control event, as the driver journals it. Everything but
/// `Collect`/`Shutdown` — exactly the events that mutate shard state.
///
/// Journal entries share their payload allocations with the delivered
/// [`Event`], so journaling costs a refcount bump per event.
#[derive(Debug, Clone)]
pub(crate) enum ReplayEvent {
    /// See [`Event::JoinDedicated`].
    JoinDedicated {
        /// Service-wide session key.
        key: u64,
        /// Owning tenant.
        tenant: Arc<str>,
    },
    /// See [`Event::JoinGroup`].
    JoinGroup {
        /// Service-wide group id.
        group: u64,
        /// Owning tenant.
        tenant: Arc<str>,
        /// Member keys in join order.
        members: Arc<[u64]>,
    },
    /// See [`Event::Leave`].
    Leave {
        /// The session to drain.
        key: u64,
    },
    /// See [`Event::Tick`].
    Tick {
        /// `(key, bits)` arrivals for the tick.
        arrivals: Arc<[(u64, f64)]>,
    },
}

impl ReplayEvent {
    /// The executor event this journal entry replays as. Payloads are
    /// shared, not copied.
    pub(crate) fn to_event(&self) -> Event {
        match self {
            ReplayEvent::JoinDedicated { key, tenant } => Event::JoinDedicated {
                key: *key,
                tenant: tenant.clone(),
            },
            ReplayEvent::JoinGroup {
                group,
                tenant,
                members,
            } => Event::JoinGroup {
                group: *group,
                tenant: tenant.clone(),
                members: members.clone(),
            },
            ReplayEvent::Leave { key } => Event::Leave { key: *key },
            ReplayEvent::Tick { arrivals } => Event::Tick {
                arrivals: arrivals.clone(),
            },
        }
    }
}

/// A typed worker-failure report: the worker panicked (organically or via
/// an injected fault) and has exited.
#[derive(Debug, Clone)]
pub(crate) struct ShardFailure {
    /// The failed shard.
    pub shard: u64,
    /// Epoch of the failed worker.
    pub epoch: u64,
    /// The panic message.
    pub reason: String,
}

/// A periodic snapshot of one shard, shipped to the driver so a restarted
/// worker can resume from it instead of replaying the whole history.
#[derive(Debug, Clone)]
pub(crate) struct ShardCheckpoint {
    /// The checkpointing shard.
    pub shard: u64,
    /// Epoch of the worker that took the checkpoint.
    pub epoch: u64,
    /// Replayable events applied when the checkpoint was taken. The
    /// driver trims its journal to this point: recovery restores the
    /// state and replays only the journal suffix past this count.
    pub events_applied: u64,
    /// The restorable shard state.
    pub state: ShardStateCheckpoint,
}

/// A restorable snapshot of one session entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct SessionCheckpoint {
    /// Service-wide session key.
    pub key: u64,
    /// Owning tenant.
    pub tenant: String,
    /// The meter state.
    pub meter: MeterCheckpoint,
    /// `true` if the session is draining out.
    pub leaving: bool,
    /// Single-session algorithm state; `Some` iff the session is
    /// dedicated.
    pub dedicated: Option<SingleCheckpoint>,
    /// `(group id, raw pool member id)`; `Some` iff the session is pooled.
    pub pooled: Option<(u64, u64)>,
}

/// A restorable snapshot of one pooled group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct GroupCheckpoint {
    /// Service-wide group id.
    pub group: u64,
    /// The shared pool state.
    pub pool: PoolCheckpoint,
    /// `(raw pool member id, session key)` pairs, sorted by member id.
    pub members: Vec<(u64, u64)>,
}

/// The full serde-exportable state of a [`ShardState`]. Restoring with
/// [`ShardState::restore`] reproduces the shard bitwise (the in-memory
/// checkpoint preserves every `f64` exactly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct ShardStateCheckpoint {
    /// Live sessions, in slot order (order matters: ticks process
    /// dedicated sessions in it).
    pub sessions: Vec<SessionCheckpoint>,
    /// Pooled groups, sorted by group id.
    pub groups: Vec<GroupCheckpoint>,
    /// Metrics of retired sessions, frozen at retirement.
    pub retired: Vec<SessionMetrics>,
    /// Ticks the shard has processed.
    pub ticks: u64,
}

enum SessionKind {
    Dedicated(Box<SingleSession>),
    Pooled { group: u64, member: PoolSessionId },
}

struct SessionEntry {
    key: u64,
    tenant: Arc<str>,
    meter: SignallingMeter,
    leaving: bool,
    kind: SessionKind,
}

struct GroupEntry {
    pool: SessionPool,
    by_member: HashMap<PoolSessionId, u64>,
}

/// The per-shard session store and tick loop.
pub(crate) struct ShardState {
    shard: u64,
    /// Epoch of the worker driving this state (0 inline); stamped into
    /// collect replies so the driver can discard superseded reports.
    pub(crate) epoch: u64,
    single_cfg: SingleConfig,
    multi_cfg: MultiConfig,
    cost: CostModel,
    window: usize,
    sessions: Vec<SessionEntry>,
    index: HashMap<u64, usize>,
    groups: HashMap<u64, GroupEntry>,
    retired: Vec<SessionMetrics>,
    scratch: Vec<f64>,
    ticks: u64,
}

impl ShardState {
    pub(crate) fn new(shard: u64, cfg: &ServiceConfig) -> Self {
        ShardState {
            shard,
            epoch: 0,
            single_cfg: cfg.single_config(),
            multi_cfg: cfg.multi_config(),
            cost: cfg.cost,
            window: cfg.w,
            sessions: Vec::new(),
            index: HashMap::new(),
            groups: HashMap::new(),
            retired: Vec::new(),
            scratch: Vec::new(),
            ticks: 0,
        }
    }

    /// Ticks this shard has processed.
    pub(crate) fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Exports the full restorable state. Group and member listings are
    /// sorted by id so identical states checkpoint identically regardless
    /// of hash-map iteration order.
    pub(crate) fn checkpoint(&self) -> ShardStateCheckpoint {
        let sessions = self
            .sessions
            .iter()
            .map(|e| {
                let (dedicated, pooled) = match &e.kind {
                    SessionKind::Dedicated(alg) => (Some(alg.checkpoint()), None),
                    SessionKind::Pooled { group, member } => (None, Some((*group, member.raw()))),
                };
                SessionCheckpoint {
                    key: e.key,
                    tenant: e.tenant.as_ref().to_string(),
                    meter: e.meter.checkpoint(),
                    leaving: e.leaving,
                    dedicated,
                    pooled,
                }
            })
            .collect();
        let mut groups: Vec<GroupCheckpoint> = self
            .groups
            .iter()
            .map(|(&group, g)| {
                let mut members: Vec<(u64, u64)> = g
                    .by_member
                    .iter()
                    .map(|(&member, &key)| (member.raw(), key))
                    .collect();
                members.sort_unstable();
                GroupCheckpoint {
                    group,
                    pool: g.pool.checkpoint(),
                    members,
                }
            })
            .collect();
        groups.sort_unstable_by_key(|g| g.group);
        ShardStateCheckpoint {
            sessions,
            groups,
            retired: self.retired.clone(),
            ticks: self.ticks,
        }
    }

    /// Rebuilds a shard from a checkpoint, bitwise.
    pub(crate) fn restore(shard: u64, cfg: &ServiceConfig, cp: &ShardStateCheckpoint) -> Self {
        let mut state = ShardState::new(shard, cfg);
        for s in &cp.sessions {
            let kind = match (&s.dedicated, &s.pooled) {
                (Some(alg), None) => SessionKind::Dedicated(Box::new(SingleSession::restore(alg))),
                (None, &Some((group, member))) => SessionKind::Pooled {
                    group,
                    member: PoolSessionId::from_raw(member),
                },
                _ => panic!("session checkpoint must be exactly one of dedicated or pooled"),
            };
            state.push_session(SessionEntry {
                key: s.key,
                tenant: s.tenant.as_str().into(),
                meter: SignallingMeter::restore(&s.meter),
                leaving: s.leaving,
                kind,
            });
        }
        for g in &cp.groups {
            state.groups.insert(
                g.group,
                GroupEntry {
                    pool: SessionPool::restore(&g.pool),
                    by_member: g
                        .members
                        .iter()
                        .map(|&(member, key)| (PoolSessionId::from_raw(member), key))
                        .collect(),
                },
            );
        }
        state.retired = cp.retired.clone();
        state.ticks = cp.ticks;
        state
    }

    pub(crate) fn handle_event(&mut self, event: Event) {
        match event {
            Event::JoinDedicated { key, tenant } => self.join_dedicated(key, tenant),
            Event::JoinGroup {
                group,
                tenant,
                members,
            } => self.join_group(group, tenant, &members),
            Event::Leave { key } => self.leave(key),
            Event::Tick { arrivals } => self.tick(&arrivals),
            Event::Collect { reply } => {
                // The service may already have dropped the receiver (e.g. a
                // torn-down snapshot); losing the report is then harmless.
                let _ = reply.send(self.report());
            }
            Event::Shutdown => {}
        }
    }

    fn push_session(&mut self, entry: SessionEntry) {
        self.index.insert(entry.key, self.sessions.len());
        self.sessions.push(entry);
    }

    fn join_dedicated(&mut self, key: u64, tenant: Arc<str>) {
        let alg = Box::new(SingleSession::new(self.single_cfg.clone()));
        self.push_session(SessionEntry {
            key,
            tenant,
            meter: SignallingMeter::new(self.cost, self.window),
            leaving: false,
            kind: SessionKind::Dedicated(alg),
        });
    }

    fn join_group(&mut self, group: u64, tenant: Arc<str>, members: &[u64]) {
        let entry = self.groups.entry(group).or_insert_with(|| GroupEntry {
            pool: SessionPool::new(self.multi_cfg.clone()),
            by_member: HashMap::new(),
        });
        let mut joined = Vec::with_capacity(members.len());
        for &key in members {
            let member = entry.pool.join();
            entry.by_member.insert(member, key);
            joined.push((key, member));
        }
        for (key, member) in joined {
            self.push_session(SessionEntry {
                key,
                tenant: tenant.clone(),
                meter: SignallingMeter::new(self.cost, self.window),
                leaving: false,
                kind: SessionKind::Pooled { group, member },
            });
        }
    }

    fn leave(&mut self, key: u64) {
        let Some(&idx) = self.index.get(&key) else {
            return; // already retired — leave is idempotent at the shard
        };
        let entry = &mut self.sessions[idx];
        if entry.leaving {
            return;
        }
        entry.leaving = true;
        match entry.kind {
            SessionKind::Dedicated(_) => {
                // Nothing to tell the allocator; the session now receives
                // zero arrivals and retires once its link queue drains.
                if entry.meter.is_drained() {
                    self.retire(key);
                }
            }
            SessionKind::Pooled { group, member } => {
                if let Some(g) = self.groups.get_mut(&group) {
                    // The pool moves the residual backlog to the overflow
                    // queue and retires the slot once it drains.
                    let _ = g.pool.leave(member);
                }
            }
        }
    }

    pub(crate) fn tick(&mut self, arrivals: &[(u64, f64)]) {
        // Stage arrivals into a buffer parallel to the session vector.
        self.scratch.clear();
        self.scratch.resize(self.sessions.len(), 0.0);
        for &(key, bits) in arrivals {
            if let Some(&idx) = self.index.get(&key) {
                self.scratch[idx] += bits.max(0.0);
            }
        }

        let mut to_retire: Vec<u64> = Vec::new();

        // Pooled groups: submit, tick the pool once, meter each member.
        for group in self.groups.values_mut() {
            for (&member, &key) in &group.by_member {
                let idx = self.index[&key];
                if !self.sessions[idx].leaving {
                    let _ = group.pool.submit(member, self.scratch[idx]);
                }
            }
            let allocs = group.pool.tick();
            let mut seen: Vec<PoolSessionId> = Vec::with_capacity(allocs.len());
            for (member, alloc) in allocs {
                seen.push(member);
                let key = group.by_member[&member];
                let idx = self.index[&key];
                let entry = &mut self.sessions[idx];
                let arrived = if entry.leaving {
                    0.0
                } else {
                    self.scratch[idx]
                };
                entry.meter.record(arrived, alloc);
            }
            // A leaving member absent from the pool's output has retired
            // (its slot drained on an earlier tick).
            for (&member, &key) in &group.by_member {
                if !seen.contains(&member) {
                    to_retire.push(key);
                }
            }
        }

        // Dedicated sessions: one allocator step each.
        for idx in 0..self.sessions.len() {
            let arrived = if self.sessions[idx].leaving {
                0.0
            } else {
                self.scratch[idx]
            };
            let entry = &mut self.sessions[idx];
            if let SessionKind::Dedicated(alg) = &mut entry.kind {
                let alloc = alg.on_tick(arrived);
                entry.meter.record(arrived, alloc);
                if entry.leaving && entry.meter.is_drained() {
                    to_retire.push(entry.key);
                }
            }
        }

        for key in to_retire {
            self.retire(key);
        }
        self.ticks += 1;
    }

    /// Freezes a session's metrics and removes it from the live set.
    fn retire(&mut self, key: u64) {
        let Some(idx) = self.index.remove(&key) else {
            return;
        };
        let entry = self.sessions.swap_remove(idx);
        if let Some(moved) = self.sessions.get(idx) {
            self.index.insert(moved.key, idx);
        }
        if let SessionKind::Pooled { group, member } = entry.kind {
            if let Some(g) = self.groups.get_mut(&group) {
                g.by_member.remove(&member);
                if g.by_member.is_empty() {
                    self.groups.remove(&group);
                }
            }
        }
        self.retired
            .push(entry.meter.metrics(entry.key, &entry.tenant, self.shard));
    }

    pub(crate) fn report(&self) -> ShardReport {
        let mut sessions = self.retired.clone();
        sessions.extend(
            self.sessions
                .iter()
                .map(|e| e.meter.metrics(e.key, &e.tenant, self.shard)),
        );
        ShardReport {
            shard: self.shard,
            epoch: self.epoch,
            sessions,
        }
    }

    /// Live session count (for tests).
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.sessions.len()
    }
}

/// Messages a supervised worker sends back to the driver out of band.
#[derive(Debug, Clone)]
pub(crate) enum WorkerMsg {
    /// A periodic state snapshot.
    Checkpoint(ShardCheckpoint),
    /// One tick event was applied. The driver counts acks against its
    /// dispatched ticks to bound how far the pipeline may run ahead.
    TickAck {
        /// The acking shard.
        shard: u64,
        /// Epoch of the worker that applied the tick; stale acks from a
        /// superseded worker are discarded.
        epoch: u64,
    },
    /// The worker caught a panic and exited.
    Failure(ShardFailure),
}

/// Everything a supervised worker needs beyond its state and event queue.
pub(crate) struct WorkerCtx {
    /// This worker's epoch, stamped into every outgoing message.
    pub epoch: u64,
    /// Set by the supervisor when this worker is superseded; the worker
    /// exits at the next opportunity without touching further events.
    pub cancel: Arc<AtomicBool>,
    /// Out-of-band channel for checkpoints and failure reports.
    pub msgs: crossbeam::channel::Sender<WorkerMsg>,
    /// Checkpoint cadence in ticks (0 = never).
    pub checkpoint_every: u64,
    /// Replayable events already applied to the state at spawn (the
    /// journal replay baseline).
    pub events_base: u64,
    /// Armed fault, if this worker is the sabotage target. Only initial
    /// (epoch-0) workers ever get one, so a fault fires at most once.
    pub fault: Option<FaultPlan>,
}

pub(crate) fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// The supervised worker loop of one threaded shard: apply events until
/// shutdown, disconnection, or cancellation; catch panics and report them
/// as [`ShardFailure`]; ship a [`ShardCheckpoint`] every
/// `checkpoint_every` ticks; host the injected fault, if any.
pub(crate) fn run_worker(
    mut state: ShardState,
    rx: crossbeam::channel::Receiver<Event>,
    ctx: WorkerCtx,
) {
    state.epoch = ctx.epoch;
    let mut events_applied = ctx.events_base;
    let mut fault = ctx.fault;
    while let Ok(event) = rx.recv() {
        if ctx.cancel.load(Ordering::Acquire) {
            return;
        }
        if matches!(event, Event::Shutdown) {
            return;
        }
        let is_tick = matches!(event, Event::Tick { .. });
        let replayable = !matches!(event, Event::Collect { .. });
        // Fault injection: fires when the worker is about to process the
        // planned tick, then disarms.
        let mut inject_kill = false;
        if is_tick && fault.is_some_and(|p| state.ticks() >= p.at_tick) {
            let plan = fault.take().expect("checked above");
            match plan.kind {
                FaultKind::Kill => inject_kill = true,
                FaultKind::Hang { millis } | FaultKind::Delay { millis } => {
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                    // A hung worker may have been replaced while asleep; if
                    // so, leave the event unapplied — the supervisor already
                    // replayed it into the replacement.
                    if ctx.cancel.load(Ordering::Acquire) {
                        return;
                    }
                }
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject_kill {
                panic!("injected fault: kill");
            }
            state.handle_event(event);
        }));
        match outcome {
            Ok(()) => {
                if replayable {
                    events_applied += 1;
                }
                if is_tick {
                    let _ = ctx.msgs.send(WorkerMsg::TickAck {
                        shard: state.shard,
                        epoch: ctx.epoch,
                    });
                }
                if is_tick
                    && ctx.checkpoint_every > 0
                    && state.ticks().is_multiple_of(ctx.checkpoint_every)
                {
                    let _ = ctx.msgs.send(WorkerMsg::Checkpoint(ShardCheckpoint {
                        shard: state.shard,
                        epoch: ctx.epoch,
                        events_applied,
                        state: state.checkpoint(),
                    }));
                }
            }
            Err(payload) => {
                // The state may be torn mid-event; abandon it and let the
                // supervisor rebuild from the last checkpoint + journal.
                let _ = ctx.msgs.send(WorkerMsg::Failure(ShardFailure {
                    shard: state.shard,
                    epoch: ctx.epoch,
                    reason: panic_reason(payload),
                }));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;

    fn shard() -> ShardState {
        let cfg = ServiceConfig::builder(1024.0)
            .session_b_max(16.0)
            .group_b_o(8.0)
            .offline_delay(4)
            .window(4)
            .build()
            .unwrap();
        ShardState::new(0, &cfg)
    }

    #[test]
    fn dedicated_lifecycle_joins_ticks_retires() {
        let mut s = shard();
        s.handle_event(Event::JoinDedicated {
            key: 7,
            tenant: "acme".into(),
        });
        for _ in 0..8 {
            s.handle_event(Event::Tick {
                arrivals: vec![(7, 2.0)].into(),
            });
        }
        assert_eq!(s.live(), 1);
        s.handle_event(Event::Leave { key: 7 });
        // Zero-arrival ticks drain the shadow queue, then the slot retires.
        for _ in 0..32 {
            s.handle_event(Event::Tick {
                arrivals: vec![].into(),
            });
        }
        assert_eq!(s.live(), 0);
        let report = s.report();
        assert_eq!(report.sessions.len(), 1);
        let m = &report.sessions[0];
        assert_eq!(m.session, 7);
        assert_eq!(m.tenant, "acme");
        assert!((m.total_served - m.total_arrived).abs() < 1e-9);
        assert!(m.changes > 0);
    }

    #[test]
    fn group_members_share_one_pool() {
        let mut s = shard();
        s.handle_event(Event::JoinGroup {
            group: 1,
            tenant: "acme".into(),
            members: vec![10, 11].into(),
        });
        for _ in 0..12 {
            s.handle_event(Event::Tick {
                arrivals: vec![(10, 1.0), (11, 1.0)].into(),
            });
        }
        let report = s.report();
        assert_eq!(report.sessions.len(), 2);
        for m in &report.sessions {
            assert!(m.total_allocated > 0.0, "pool served {m:?}");
        }
        // One member leaves; the pool drains it and the shard retires it.
        s.handle_event(Event::Leave { key: 10 });
        for _ in 0..32 {
            s.handle_event(Event::Tick {
                arrivals: vec![(11, 1.0)].into(),
            });
        }
        assert_eq!(s.live(), 1);
        assert_eq!(s.groups.len(), 1);
        s.handle_event(Event::Leave { key: 11 });
        for _ in 0..32 {
            s.handle_event(Event::Tick {
                arrivals: vec![].into(),
            });
        }
        assert_eq!(s.live(), 0);
        assert!(s.groups.is_empty(), "empty group is dropped");
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let mut s = shard();
        s.handle_event(Event::Tick {
            arrivals: vec![(99, 5.0)].into(),
        });
        s.handle_event(Event::Leave { key: 99 });
        assert_eq!(s.live(), 0);
    }
}
