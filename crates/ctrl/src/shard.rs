//! The shard executor: the event-driven state machine that drives session
//! allocators and meters.
//!
//! One [`ShardState`] owns every session placed on it. Both execution
//! backends — the inline deterministic fallback and the per-shard worker
//! threads — drive the *same* [`ShardState::handle_event`] code path, so
//! the two modes cannot diverge. Sessions never interact across shards
//! (a pooled group lives wholly on one shard), which is what makes the
//! service's metrics invariant under the shard count.
//!
//! Sessions live in a dense generational [`Slab`] indexed by a
//! direct-mapped [`KeyMap`] (see [`crate::slab`]): the tick hot path pays
//! one array access per arrival instead of a hash + probe, and entries
//! stay contiguous. Retired-session metrics accumulate behind an `Arc`
//! with copy-on-retire sharing, so a steady-state report costs O(live
//! sessions) regardless of how many sessions have come and gone.
//!
//! Threaded workers are supervised: [`run_worker`] catches panics
//! (reporting a typed [`ShardFailure`] instead of dying silently),
//! periodically ships a [`ShardCheckpoint`] — the binary-encoded state of
//! every session's meter and algorithm — back to the driver, honours a
//! cancellation flag so a superseded worker cannot corrupt anything after
//! the supervisor moves on, and hosts the fault-injection hooks of
//! [`crate::fault`]. Every message carries the worker's *epoch* so the
//! driver can discard stragglers from replaced workers.

use crate::config::ServiceConfig;
use crate::fault::{FaultKind, FaultPlan};
use crate::meter::{MeterCheckpoint, SessionMetrics, SignallingMeter};
use crate::slab::{KeyMap, Slab, SlotId};
use cdba_analysis::cost::CostModel;
use cdba_core::config::{MultiConfig, SingleConfig};
use cdba_core::multi::pool::{PoolCheckpoint, SessionId as PoolSessionId, SessionPool};
use cdba_core::single::{SingleCheckpoint, SingleSession};
use cdba_sim::Allocator;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A control event delivered to one shard. Within a shard, events apply in
/// send order (the channels are FIFO), which is all the ordering the
/// executor needs.
///
/// Payloads are `Arc`-shared with the driver's journal: delivering an
/// event costs a refcount bump, not a deep clone of tenants, member lists,
/// or arrival batches.
#[derive(Debug)]
pub(crate) enum Event {
    /// Place a dedicated session running the single-session algorithm.
    JoinDedicated {
        /// Service-wide session key.
        key: u64,
        /// Owning tenant.
        tenant: Arc<str>,
    },
    /// Place a pooled group running the phased algorithm; all members land
    /// on this shard.
    JoinGroup {
        /// Service-wide group id.
        group: u64,
        /// Owning tenant.
        tenant: Arc<str>,
        /// Service-wide keys of the members, in join order.
        members: Arc<[u64]>,
    },
    /// Begin draining a session out.
    Leave {
        /// The session to drain.
        key: u64,
    },
    /// Advance every session on this shard by one tick.
    Tick {
        /// `(key, bits)` arrivals for this tick; sessions not listed get 0.
        arrivals: Arc<[(u64, f64)]>,
    },
    /// Report all metrics (live and retired sessions) back.
    Collect {
        /// Where to send the report.
        reply: crossbeam::channel::Sender<ShardReport>,
    },
    /// Capture one session's restorable state (read-only, like
    /// [`Event::Collect`]) for a live migration. `None` if the key is not
    /// live on this shard or the session is pooled.
    ExportSession {
        /// The session to capture.
        key: u64,
        /// Where to send the captured state.
        reply: crossbeam::channel::Sender<Option<SessionCheckpoint>>,
    },
    /// Remove a migrated-away session *without* retiring its metrics —
    /// the session lives on elsewhere and its meter travelled with it.
    Forget {
        /// The session to remove.
        key: u64,
    },
    /// Re-create a migrated-in dedicated session from its checkpoint.
    Import {
        /// The captured state (key already rewritten to this service's).
        cp: Arc<SessionCheckpoint>,
    },
    /// Stop the worker loop.
    Shutdown,
}

/// One shard's answer to [`Event::Collect`].
///
/// Retired metrics are shared with the shard's accumulator (`Arc`), so a
/// steady-state report allocates proportionally to the *live* session
/// count only.
#[derive(Debug, Clone)]
pub(crate) struct ShardReport {
    /// The reporting shard.
    pub shard: u64,
    /// Epoch of the worker that produced the report (0 inline). The driver
    /// discards reports from superseded workers.
    pub epoch: u64,
    /// Metrics of retired sessions, frozen at retirement.
    pub retired: Arc<Vec<SessionMetrics>>,
    /// Metrics of live sessions at their current totals, in slot order.
    pub live: Vec<SessionMetrics>,
}

/// A replayable control event, as the driver journals it. Everything but
/// `Collect`/`Shutdown` — exactly the events that mutate shard state.
///
/// Journal entries share their payload allocations with the delivered
/// [`Event`], so journaling costs a refcount bump per event.
#[derive(Debug, Clone)]
pub(crate) enum ReplayEvent {
    /// See [`Event::JoinDedicated`].
    JoinDedicated {
        /// Service-wide session key.
        key: u64,
        /// Owning tenant.
        tenant: Arc<str>,
    },
    /// See [`Event::JoinGroup`].
    JoinGroup {
        /// Service-wide group id.
        group: u64,
        /// Owning tenant.
        tenant: Arc<str>,
        /// Member keys in join order.
        members: Arc<[u64]>,
    },
    /// See [`Event::Leave`].
    Leave {
        /// The session to drain.
        key: u64,
    },
    /// See [`Event::Tick`].
    Tick {
        /// `(key, bits)` arrivals for the tick.
        arrivals: Arc<[(u64, f64)]>,
    },
    /// See [`Event::Forget`].
    Forget {
        /// The session to remove without retiring.
        key: u64,
    },
    /// See [`Event::Import`].
    Import {
        /// The captured state to re-create the session from.
        cp: Arc<SessionCheckpoint>,
    },
}

impl ReplayEvent {
    /// The executor event this journal entry replays as. Payloads are
    /// shared, not copied.
    pub(crate) fn to_event(&self) -> Event {
        match self {
            ReplayEvent::JoinDedicated { key, tenant } => Event::JoinDedicated {
                key: *key,
                tenant: tenant.clone(),
            },
            ReplayEvent::JoinGroup {
                group,
                tenant,
                members,
            } => Event::JoinGroup {
                group: *group,
                tenant: tenant.clone(),
                members: members.clone(),
            },
            ReplayEvent::Leave { key } => Event::Leave { key: *key },
            ReplayEvent::Tick { arrivals } => Event::Tick {
                arrivals: arrivals.clone(),
            },
            ReplayEvent::Forget { key } => Event::Forget { key: *key },
            ReplayEvent::Import { cp } => Event::Import { cp: cp.clone() },
        }
    }
}

/// A typed worker-failure report: the worker panicked (organically or via
/// an injected fault) and has exited.
#[derive(Debug, Clone)]
pub(crate) struct ShardFailure {
    /// The failed shard.
    pub shard: u64,
    /// Epoch of the failed worker.
    pub epoch: u64,
    /// The panic message.
    pub reason: String,
}

/// A periodic snapshot of one shard, shipped to the driver so a restarted
/// worker can resume from it instead of replaying the whole history.
///
/// The state travels as one binary [`crate::codec`] payload: the worker
/// encodes into a buffer it reuses across checkpoints, so the steady-state
/// cost per checkpoint is one encode pass plus one `Arc<[u8]>` copy — not
/// a deep clone of every session's meter and algorithm state.
#[derive(Debug, Clone)]
pub(crate) struct ShardCheckpoint {
    /// The checkpointing shard.
    pub shard: u64,
    /// Epoch of the worker that took the checkpoint.
    pub epoch: u64,
    /// Replayable events applied when the checkpoint was taken. The
    /// driver trims its journal to this point: recovery restores the
    /// state and replays only the journal suffix past this count.
    pub events_applied: u64,
    /// The restorable shard state, binary-encoded
    /// ([`crate::codec::checkpoint`]).
    pub bytes: Arc<[u8]>,
}

impl ShardCheckpoint {
    /// Decodes the carried state.
    ///
    /// # Panics
    ///
    /// Panics if the payload is malformed — impossible for worker-produced
    /// checkpoints; recovery runs this under `catch_unwind`, so a decode
    /// failure degrades to a downed shard rather than a driver crash.
    pub fn decode_state(&self) -> ShardStateCheckpoint {
        crate::codec::checkpoint::decode(&self.bytes).expect("shard checkpoint payload is valid")
    }
}

/// A restorable snapshot of one session entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct SessionCheckpoint {
    /// Service-wide session key.
    pub key: u64,
    /// Owning tenant.
    pub tenant: Arc<str>,
    /// The meter state.
    pub meter: MeterCheckpoint,
    /// `true` if the session is draining out.
    pub leaving: bool,
    /// Single-session algorithm state; `Some` iff the session is
    /// dedicated.
    pub dedicated: Option<SingleCheckpoint>,
    /// `(group id, raw pool member id)`; `Some` iff the session is pooled.
    pub pooled: Option<(u64, u64)>,
}

/// A restorable snapshot of one pooled group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct GroupCheckpoint {
    /// Service-wide group id.
    pub group: u64,
    /// The shared pool state.
    pub pool: PoolCheckpoint,
    /// `(raw pool member id, session key)` pairs, sorted by member id.
    pub members: Vec<(u64, u64)>,
}

/// The full exportable state of a [`ShardState`]. Restoring with
/// [`ShardState::restore`] reproduces the shard bitwise (both the binary
/// codec and the in-memory form preserve every `f64` exactly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct ShardStateCheckpoint {
    /// Live sessions, in slot order (order matters: ticks process
    /// dedicated sessions in it).
    pub sessions: Vec<SessionCheckpoint>,
    /// Pooled groups, sorted by group id.
    pub groups: Vec<GroupCheckpoint>,
    /// Metrics of retired sessions, frozen at retirement. Shared with the
    /// shard's accumulator — capturing a checkpoint bumps a refcount
    /// instead of cloning the history.
    pub retired: Arc<Vec<SessionMetrics>>,
    /// Ticks the shard has processed.
    pub ticks: u64,
}

enum SessionKind {
    Dedicated(Box<SingleSession>),
    Pooled { group: u64, member: PoolSessionId },
}

struct SessionEntry {
    key: u64,
    tenant: Arc<str>,
    meter: SignallingMeter,
    leaving: bool,
    kind: SessionKind,
}

struct GroupEntry {
    /// Service-wide group id (the `group_index` key, kept for checkpoints
    /// and cleanup).
    group: u64,
    pool: SessionPool,
    /// `(pool member id, session key, session slot)` in join order.
    /// Groups are small (a handful of members), so linear scans beat any
    /// map here.
    by_member: Vec<(PoolSessionId, u64, SlotId)>,
}

/// The per-shard session store and tick loop.
pub(crate) struct ShardState {
    shard: u64,
    /// Epoch of the worker driving this state (0 inline); stamped into
    /// collect replies so the driver can discard superseded reports.
    pub(crate) epoch: u64,
    single_cfg: SingleConfig,
    multi_cfg: MultiConfig,
    cost: CostModel,
    window: usize,
    sessions: Slab<SessionEntry>,
    index: KeyMap,
    groups: Slab<GroupEntry>,
    group_index: KeyMap,
    /// Copy-on-retire: shared with outstanding reports and checkpoints; a
    /// retirement while shared clones once, then appends in place.
    retired: Arc<Vec<SessionMetrics>>,
    scratch: Vec<f64>,
    ticks: u64,
}

impl ShardState {
    pub(crate) fn new(shard: u64, cfg: &ServiceConfig) -> Self {
        ShardState {
            shard,
            epoch: 0,
            single_cfg: cfg.single_config(),
            multi_cfg: cfg.multi_config(),
            cost: cfg.cost,
            window: cfg.w,
            sessions: Slab::new(),
            index: KeyMap::new(),
            groups: Slab::new(),
            group_index: KeyMap::new(),
            retired: Arc::new(Vec::new()),
            scratch: Vec::new(),
            ticks: 0,
        }
    }

    /// Ticks this shard has processed.
    pub(crate) fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Exports the full restorable state. Sessions are listed in slot
    /// order; group and member listings are sorted by id — identical event
    /// histories checkpoint identically.
    pub(crate) fn checkpoint(&self) -> ShardStateCheckpoint {
        let sessions = self
            .sessions
            .iter()
            .map(|(_, e)| {
                let (dedicated, pooled) = match &e.kind {
                    SessionKind::Dedicated(alg) => (Some(alg.checkpoint()), None),
                    SessionKind::Pooled { group, member } => (None, Some((*group, member.raw()))),
                };
                SessionCheckpoint {
                    key: e.key,
                    tenant: e.tenant.clone(),
                    meter: e.meter.checkpoint(),
                    leaving: e.leaving,
                    dedicated,
                    pooled,
                }
            })
            .collect();
        let mut groups: Vec<GroupCheckpoint> = self
            .groups
            .iter()
            .map(|(_, g)| {
                let mut members: Vec<(u64, u64)> = g
                    .by_member
                    .iter()
                    .map(|&(member, key, _)| (member.raw(), key))
                    .collect();
                members.sort_unstable();
                GroupCheckpoint {
                    group: g.group,
                    pool: g.pool.checkpoint(),
                    members,
                }
            })
            .collect();
        groups.sort_unstable_by_key(|g| g.group);
        ShardStateCheckpoint {
            sessions,
            groups,
            retired: Arc::clone(&self.retired),
            ticks: self.ticks,
        }
    }

    /// Rebuilds a shard from a checkpoint, bitwise. Sessions re-insert in
    /// checkpoint (slot) order, compacting slots to `0..n`; per-session
    /// dynamics are placement-independent, so the invariant view is
    /// unaffected.
    pub(crate) fn restore(shard: u64, cfg: &ServiceConfig, cp: &ShardStateCheckpoint) -> Self {
        let mut state = ShardState::new(shard, cfg);
        for s in &cp.sessions {
            let kind = match (&s.dedicated, &s.pooled) {
                (Some(alg), None) => SessionKind::Dedicated(Box::new(SingleSession::restore(alg))),
                (None, &Some((group, member))) => SessionKind::Pooled {
                    group,
                    member: PoolSessionId::from_raw(member),
                },
                _ => panic!("session checkpoint must be exactly one of dedicated or pooled"),
            };
            state.push_session(SessionEntry {
                key: s.key,
                tenant: s.tenant.clone(),
                meter: SignallingMeter::restore(&s.meter),
                leaving: s.leaving,
                kind,
            });
        }
        for g in &cp.groups {
            let by_member = g
                .members
                .iter()
                .map(|&(member, key)| {
                    let slot = state
                        .index
                        .get(key)
                        .expect("group member session is in the checkpoint");
                    (PoolSessionId::from_raw(member), key, slot)
                })
                .collect();
            let gslot = state.groups.insert(GroupEntry {
                group: g.group,
                pool: SessionPool::restore(&g.pool),
                by_member,
            });
            state.group_index.insert(g.group, gslot);
        }
        state.retired = Arc::clone(&cp.retired);
        state.ticks = cp.ticks;
        state
    }

    pub(crate) fn handle_event(&mut self, event: Event) {
        match event {
            Event::JoinDedicated { key, tenant } => self.join_dedicated(key, tenant),
            Event::JoinGroup {
                group,
                tenant,
                members,
            } => self.join_group(group, tenant, &members),
            Event::Leave { key } => self.leave(key),
            Event::Tick { arrivals } => self.tick(&arrivals),
            Event::Collect { reply } => {
                // The service may already have dropped the receiver (e.g. a
                // torn-down snapshot); losing the report is then harmless.
                let _ = reply.send(self.report());
            }
            Event::ExportSession { key, reply } => {
                let _ = reply.send(self.checkpoint_session(key));
            }
            Event::Forget { key } => self.forget(key),
            Event::Import { cp } => self.import(&cp),
            Event::Shutdown => {}
        }
    }

    /// Captures one dedicated session's restorable state — the same shape
    /// [`ShardState::checkpoint`] emits for it, standalone. `None` for
    /// unknown keys and pooled members (a pool member's dynamics are not
    /// separable from its group).
    pub(crate) fn checkpoint_session(&self, key: u64) -> Option<SessionCheckpoint> {
        let slot = self.index.get(key)?;
        let entry = self.sessions.get(slot)?;
        let dedicated = match &entry.kind {
            SessionKind::Dedicated(alg) => Some(alg.checkpoint()),
            SessionKind::Pooled { .. } => return None,
        };
        Some(SessionCheckpoint {
            key: entry.key,
            tenant: entry.tenant.clone(),
            meter: entry.meter.checkpoint(),
            leaving: entry.leaving,
            dedicated,
            pooled: None,
        })
    }

    /// Removes a migrated-away session without pushing retired metrics:
    /// the session continues on another shard (possibly in another
    /// process) and its meter state travelled with the checkpoint, so
    /// retiring it here would double-count it in the merged view.
    fn forget(&mut self, key: u64) {
        let Some(slot) = self.index.remove(key) else {
            return;
        };
        // Only dedicated sessions are exported, so no group bookkeeping.
        let _ = self.sessions.remove(slot);
    }

    /// Re-creates a migrated-in dedicated session bitwise from its
    /// checkpoint. The caller has already rewritten `cp.key` to a key
    /// that is fresh in this service.
    fn import(&mut self, cp: &SessionCheckpoint) {
        let Some(alg) = &cp.dedicated else {
            return; // only dedicated sessions migrate
        };
        self.push_session(SessionEntry {
            key: cp.key,
            tenant: cp.tenant.clone(),
            meter: SignallingMeter::restore(&cp.meter),
            leaving: cp.leaving,
            kind: SessionKind::Dedicated(Box::new(SingleSession::restore(alg))),
        });
    }

    fn push_session(&mut self, entry: SessionEntry) -> SlotId {
        let key = entry.key;
        let slot = self.sessions.insert(entry);
        self.index.insert(key, slot);
        slot
    }

    fn join_dedicated(&mut self, key: u64, tenant: Arc<str>) {
        let alg = Box::new(SingleSession::new(self.single_cfg.clone()));
        self.push_session(SessionEntry {
            key,
            tenant,
            meter: SignallingMeter::new(self.cost, self.window),
            leaving: false,
            kind: SessionKind::Dedicated(alg),
        });
    }

    fn join_group(&mut self, group: u64, tenant: Arc<str>, members: &[u64]) {
        let gslot = match self.group_index.get(group) {
            Some(slot) => slot,
            None => {
                let slot = self.groups.insert(GroupEntry {
                    group,
                    pool: SessionPool::new(self.multi_cfg.clone()),
                    by_member: Vec::new(),
                });
                self.group_index.insert(group, slot);
                slot
            }
        };
        // Two-phase: every member joins the pool first (the pool's phase
        // arithmetic sees the whole batch), then the session entries land.
        let mut joined = Vec::with_capacity(members.len());
        {
            let entry = self.groups.get_mut(gslot).expect("group slot just placed");
            for &key in members {
                joined.push((key, entry.pool.join()));
            }
        }
        for (key, member) in joined {
            let slot = self.push_session(SessionEntry {
                key,
                tenant: tenant.clone(),
                meter: SignallingMeter::new(self.cost, self.window),
                leaving: false,
                kind: SessionKind::Pooled { group, member },
            });
            self.groups
                .get_mut(gslot)
                .expect("group slot just placed")
                .by_member
                .push((member, key, slot));
        }
    }

    fn leave(&mut self, key: u64) {
        let Some(slot) = self.index.get(key) else {
            return; // already retired — leave is idempotent at the shard
        };
        let Some(entry) = self.sessions.get_mut(slot) else {
            return;
        };
        if entry.leaving {
            return;
        }
        entry.leaving = true;
        let pooled = match &entry.kind {
            SessionKind::Pooled { group, member } => Some((*group, *member)),
            // Nothing to tell the allocator; the session now receives zero
            // arrivals and retires once its link queue drains.
            SessionKind::Dedicated(_) => None,
        };
        let drained_now = pooled.is_none() && entry.meter.is_drained();
        match pooled {
            Some((group, member)) => {
                // The pool moves the residual backlog to the overflow
                // queue and retires the slot once it drains.
                if let Some(gslot) = self.group_index.get(group) {
                    if let Some(g) = self.groups.get_mut(gslot) {
                        let _ = g.pool.leave(member);
                    }
                }
            }
            None if drained_now => self.retire(key),
            None => {}
        }
    }

    pub(crate) fn tick(&mut self, arrivals: &[(u64, f64)]) {
        if self.sessions.is_empty() {
            // Idle shard: no sessions means no groups either (a group
            // dissolves with its last member), so only the clock moves.
            self.ticks += 1;
            return;
        }
        // Stage arrivals into a buffer parallel to the slot space: one
        // direct-mapped lookup and one array write per arrival.
        self.scratch.clear();
        self.scratch.resize(self.sessions.slot_bound(), 0.0);
        for &(key, bits) in arrivals {
            if let Some(slot) = self.index.get(key) {
                self.scratch[slot.index as usize] += bits.max(0.0);
            }
        }

        let ShardState {
            sessions,
            groups,
            scratch,
            ..
        } = self;
        let mut to_retire: Vec<u64> = Vec::new();

        // Pooled groups: submit, tick the pool once, meter each member.
        for (_, group) in groups.iter_mut() {
            for &(member, _, slot) in &group.by_member {
                let entry = sessions.get(slot).expect("member slot is live");
                if !entry.leaving {
                    let _ = group.pool.submit(member, scratch[slot.index as usize]);
                }
            }
            let allocs = group.pool.tick();
            let mut seen: Vec<PoolSessionId> = Vec::with_capacity(allocs.len());
            for (member, alloc) in allocs {
                seen.push(member);
                let &(_, _, slot) = group
                    .by_member
                    .iter()
                    .find(|&&(m, _, _)| m == member)
                    .expect("pool reported an unknown member");
                let arrived_slot = scratch[slot.index as usize];
                let entry = sessions.get_mut(slot).expect("member slot is live");
                let arrived = if entry.leaving { 0.0 } else { arrived_slot };
                entry.meter.record(arrived, alloc);
            }
            // A leaving member absent from the pool's output has retired
            // (its slot drained on an earlier tick).
            for &(member, key, _) in &group.by_member {
                if !seen.contains(&member) {
                    to_retire.push(key);
                }
            }
        }

        // Dedicated sessions: one allocator step each, in slot order.
        for (slot, entry) in sessions.iter_mut() {
            if let SessionKind::Dedicated(alg) = &mut entry.kind {
                let arrived = if entry.leaving {
                    0.0
                } else {
                    scratch[slot.index as usize]
                };
                let alloc = alg.on_tick(arrived);
                entry.meter.record(arrived, alloc);
                if entry.leaving && entry.meter.is_drained() {
                    to_retire.push(entry.key);
                }
            }
        }

        for key in to_retire {
            self.retire(key);
        }
        self.ticks += 1;
    }

    /// Freezes a session's metrics and removes it from the live set.
    fn retire(&mut self, key: u64) {
        let Some(slot) = self.index.remove(key) else {
            return;
        };
        let Some(entry) = self.sessions.remove(slot) else {
            return;
        };
        if let SessionKind::Pooled { group, member } = entry.kind {
            if let Some(gslot) = self.group_index.get(group) {
                let now_empty = match self.groups.get_mut(gslot) {
                    Some(g) => {
                        g.by_member.retain(|&(m, _, _)| m != member);
                        g.by_member.is_empty()
                    }
                    None => false,
                };
                if now_empty {
                    self.group_index.remove(group);
                    self.groups.remove(gslot);
                }
            }
        }
        Arc::make_mut(&mut self.retired).push(entry.meter.metrics(
            entry.key,
            entry.tenant,
            self.shard,
        ));
    }

    pub(crate) fn report(&self) -> ShardReport {
        let mut live = Vec::with_capacity(self.sessions.len());
        live.extend(
            self.sessions
                .iter()
                .map(|(_, e)| e.meter.metrics(e.key, e.tenant.clone(), self.shard)),
        );
        ShardReport {
            shard: self.shard,
            epoch: self.epoch,
            retired: Arc::clone(&self.retired),
            live,
        }
    }

    /// Live session count (for tests).
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.sessions.len()
    }
}

/// Messages a supervised worker sends back to the driver out of band.
#[derive(Debug, Clone)]
pub(crate) enum WorkerMsg {
    /// A periodic state snapshot.
    Checkpoint(ShardCheckpoint),
    /// One tick event was applied. The driver counts acks against its
    /// dispatched ticks to bound how far the pipeline may run ahead.
    TickAck {
        /// The acking shard.
        shard: u64,
        /// Epoch of the worker that applied the tick; stale acks from a
        /// superseded worker are discarded.
        epoch: u64,
    },
    /// The worker caught a panic and exited.
    Failure(ShardFailure),
}

/// Everything a supervised worker needs beyond its state and event queue.
pub(crate) struct WorkerCtx {
    /// This worker's epoch, stamped into every outgoing message.
    pub epoch: u64,
    /// Set by the supervisor when this worker is superseded; the worker
    /// exits at the next opportunity without touching further events.
    pub cancel: Arc<AtomicBool>,
    /// Out-of-band channel for checkpoints and failure reports.
    pub msgs: crossbeam::channel::Sender<WorkerMsg>,
    /// Checkpoint cadence in ticks (0 = never).
    pub checkpoint_every: u64,
    /// Replayable events already applied to the state at spawn (the
    /// journal replay baseline).
    pub events_base: u64,
    /// Armed fault, if this worker is the sabotage target. Only initial
    /// (epoch-0) workers ever get one, so a fault fires at most once.
    pub fault: Option<FaultPlan>,
}

pub(crate) fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// The supervised worker loop of one threaded shard: apply events until
/// shutdown, disconnection, or cancellation; catch panics and report them
/// as [`ShardFailure`]; ship a [`ShardCheckpoint`] every
/// `checkpoint_every` ticks; host the injected fault, if any.
pub(crate) fn run_worker(
    mut state: ShardState,
    rx: crossbeam::channel::Receiver<Event>,
    ctx: WorkerCtx,
) {
    state.epoch = ctx.epoch;
    let mut events_applied = ctx.events_base;
    let mut fault = ctx.fault;
    // Checkpoint encode buffer, reused across captures: steady-state
    // checkpointing allocates only the shipped `Arc<[u8]>`.
    let mut cp_buf: Vec<u8> = Vec::new();
    while let Ok(event) = rx.recv() {
        if ctx.cancel.load(Ordering::Acquire) {
            return;
        }
        if matches!(event, Event::Shutdown) {
            return;
        }
        let is_tick = matches!(event, Event::Tick { .. });
        // Read-only events never enter the journal, so they must not
        // advance the applied-events count the checkpoint trim keys on.
        let replayable = !matches!(event, Event::Collect { .. } | Event::ExportSession { .. });
        // Fault injection: fires when the worker is about to process the
        // planned tick, then disarms.
        let mut inject_kill = false;
        if is_tick && fault.is_some_and(|p| state.ticks() >= p.at_tick) {
            let plan = fault.take().expect("checked above");
            match plan.kind {
                FaultKind::Kill => inject_kill = true,
                FaultKind::Hang { millis } | FaultKind::Delay { millis } => {
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                    // A hung worker may have been replaced while asleep; if
                    // so, leave the event unapplied — the supervisor already
                    // replayed it into the replacement.
                    if ctx.cancel.load(Ordering::Acquire) {
                        return;
                    }
                }
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject_kill {
                panic!("injected fault: kill");
            }
            state.handle_event(event);
        }));
        match outcome {
            Ok(()) => {
                if replayable {
                    events_applied += 1;
                }
                if is_tick {
                    let _ = ctx.msgs.send(WorkerMsg::TickAck {
                        shard: state.shard,
                        epoch: ctx.epoch,
                    });
                }
                if is_tick
                    && ctx.checkpoint_every > 0
                    && state.ticks().is_multiple_of(ctx.checkpoint_every)
                {
                    cp_buf.clear();
                    crate::codec::checkpoint::encode(&state.checkpoint(), &mut cp_buf);
                    let _ = ctx.msgs.send(WorkerMsg::Checkpoint(ShardCheckpoint {
                        shard: state.shard,
                        epoch: ctx.epoch,
                        events_applied,
                        bytes: cp_buf.as_slice().into(),
                    }));
                }
            }
            Err(payload) => {
                // The state may be torn mid-event; abandon it and let the
                // supervisor rebuild from the last checkpoint + journal.
                let _ = ctx.msgs.send(WorkerMsg::Failure(ShardFailure {
                    shard: state.shard,
                    epoch: ctx.epoch,
                    reason: panic_reason(payload),
                }));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;

    fn shard() -> ShardState {
        let cfg = ServiceConfig::builder(1024.0)
            .session_b_max(16.0)
            .group_b_o(8.0)
            .offline_delay(4)
            .window(4)
            .build()
            .unwrap();
        ShardState::new(0, &cfg)
    }

    fn all_sessions(report: &ShardReport) -> Vec<SessionMetrics> {
        let mut out: Vec<SessionMetrics> = report.retired.as_ref().clone();
        out.extend(report.live.iter().cloned());
        out
    }

    #[test]
    fn dedicated_lifecycle_joins_ticks_retires() {
        let mut s = shard();
        s.handle_event(Event::JoinDedicated {
            key: 7,
            tenant: "acme".into(),
        });
        for _ in 0..8 {
            s.handle_event(Event::Tick {
                arrivals: vec![(7, 2.0)].into(),
            });
        }
        assert_eq!(s.live(), 1);
        s.handle_event(Event::Leave { key: 7 });
        // Zero-arrival ticks drain the shadow queue, then the slot retires.
        for _ in 0..32 {
            s.handle_event(Event::Tick {
                arrivals: vec![].into(),
            });
        }
        assert_eq!(s.live(), 0);
        let report = s.report();
        let sessions = all_sessions(&report);
        assert_eq!(sessions.len(), 1);
        let m = &sessions[0];
        assert_eq!(m.session, 7);
        assert_eq!(&*m.tenant, "acme");
        assert!((m.total_served - m.total_arrived).abs() < 1e-9);
        assert!(m.changes > 0);
    }

    #[test]
    fn group_members_share_one_pool() {
        let mut s = shard();
        s.handle_event(Event::JoinGroup {
            group: 1,
            tenant: "acme".into(),
            members: vec![10, 11].into(),
        });
        for _ in 0..12 {
            s.handle_event(Event::Tick {
                arrivals: vec![(10, 1.0), (11, 1.0)].into(),
            });
        }
        let report = s.report();
        let sessions = all_sessions(&report);
        assert_eq!(sessions.len(), 2);
        for m in &sessions {
            assert!(m.total_allocated > 0.0, "pool served {m:?}");
        }
        // One member leaves; the pool drains it and the shard retires it.
        s.handle_event(Event::Leave { key: 10 });
        for _ in 0..32 {
            s.handle_event(Event::Tick {
                arrivals: vec![(11, 1.0)].into(),
            });
        }
        assert_eq!(s.live(), 1);
        assert_eq!(s.groups.len(), 1);
        s.handle_event(Event::Leave { key: 11 });
        for _ in 0..32 {
            s.handle_event(Event::Tick {
                arrivals: vec![].into(),
            });
        }
        assert_eq!(s.live(), 0);
        assert!(s.groups.is_empty(), "empty group is dropped");
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let mut s = shard();
        s.handle_event(Event::Tick {
            arrivals: vec![(99, 5.0)].into(),
        });
        s.handle_event(Event::Leave { key: 99 });
        assert_eq!(s.live(), 0);
    }

    #[test]
    fn retired_slots_are_reused_and_reports_share_the_retired_list() {
        let mut s = shard();
        s.handle_event(Event::JoinDedicated {
            key: 0,
            tenant: "acme".into(),
        });
        s.handle_event(Event::Leave { key: 0 }); // never ticked: drained, retires at once
        assert_eq!(s.live(), 0);
        s.handle_event(Event::JoinDedicated {
            key: 1,
            tenant: "acme".into(),
        });
        assert_eq!(
            s.sessions.slot_bound(),
            1,
            "the retired session's slot is reused"
        );
        let r1 = s.report();
        let r2 = s.report();
        assert!(
            Arc::ptr_eq(&r1.retired, &r2.retired),
            "steady-state reports share one retired list"
        );
        assert_eq!(r1.retired.len(), 1);
        assert_eq!(r1.live.len(), 1);
        // A retirement after a report was taken must not mutate the shared
        // list the earlier report still holds (copy-on-retire).
        s.handle_event(Event::Leave { key: 1 });
        assert_eq!(r1.retired.len(), 1, "earlier report is unaffected");
        assert_eq!(s.report().retired.len(), 2);
    }

    #[test]
    fn export_forget_import_moves_a_session_bitwise() {
        let mut src = shard();
        let mut dst = shard();
        src.handle_event(Event::JoinDedicated {
            key: 3,
            tenant: "acme".into(),
        });
        src.handle_event(Event::JoinGroup {
            group: 0,
            tenant: "globex".into(),
            members: vec![4, 5].into(),
        });
        for t in 0..24u64 {
            src.handle_event(Event::Tick {
                arrivals: vec![(3, (t % 3) as f64), (4, 1.0), (5, 2.0)].into(),
            });
        }
        // Pooled members refuse to export; dedicated sessions capture.
        assert!(src.checkpoint_session(4).is_none());
        assert!(src.checkpoint_session(99).is_none());
        let mut cp = src.checkpoint_session(3).expect("dedicated exports");
        // Move it: forget at the source (no retired metrics left behind),
        // import at the destination under a fresh key.
        src.handle_event(Event::Forget { key: 3 });
        assert_eq!(src.live(), 2);
        assert_eq!(src.report().retired.len(), 0, "forget must not retire");
        cp.key = 7;
        src.handle_event(Event::Tick {
            arrivals: vec![(4, 1.0), (5, 1.0)].into(),
        });
        dst.handle_event(Event::Import { cp: Arc::new(cp) });
        assert_eq!(dst.live(), 1);
        // A twin that never migrated, driven through the same arrival
        // history under key 7, stays bitwise identical to the migrated
        // session.
        let mut twin_ref = shard();
        twin_ref.handle_event(Event::JoinDedicated {
            key: 7,
            tenant: "acme".into(),
        });
        for t in 0..24u64 {
            twin_ref.handle_event(Event::Tick {
                arrivals: vec![(7, (t % 3) as f64)].into(),
            });
        }
        for t in 0..16u64 {
            let bits = ((t + 1) % 4) as f64;
            dst.handle_event(Event::Tick {
                arrivals: vec![(7, bits)].into(),
            });
            twin_ref.handle_event(Event::Tick {
                arrivals: vec![(7, bits)].into(),
            });
        }
        let moved = dst.report().live;
        let stayed = twin_ref.report().live;
        assert_eq!(moved.len(), 1);
        assert_eq!(moved, stayed, "migration is bitwise-invisible");
    }

    #[test]
    fn checkpoint_binary_roundtrip_restores_bitwise() {
        let mut s = shard();
        s.handle_event(Event::JoinDedicated {
            key: 0,
            tenant: "acme".into(),
        });
        s.handle_event(Event::JoinGroup {
            group: 0,
            tenant: "globex".into(),
            members: vec![1, 2].into(),
        });
        for t in 0..20u64 {
            s.handle_event(Event::Tick {
                arrivals: vec![(0, (t % 3) as f64), (1, 1.0), (2, 2.0)].into(),
            });
        }
        s.handle_event(Event::Leave { key: 1 });
        for _ in 0..8 {
            s.handle_event(Event::Tick {
                arrivals: vec![(0, 1.0), (2, 2.0)].into(),
            });
        }
        let cp = s.checkpoint();
        let mut bytes = Vec::new();
        crate::codec::checkpoint::encode(&cp, &mut bytes);
        let decoded = crate::codec::checkpoint::decode(&bytes).unwrap();
        assert_eq!(decoded, cp, "binary checkpoint round-trips exactly");

        let cfg = ServiceConfig::builder(1024.0)
            .session_b_max(16.0)
            .group_b_o(8.0)
            .offline_delay(4)
            .window(4)
            .build()
            .unwrap();
        let mut twin = ShardState::restore(0, &cfg, &decoded);
        assert_eq!(twin.checkpoint(), cp, "restore is lossless");
        // Lockstep continuation: the restored shard must stay bitwise
        // identical to the original under further events.
        for _ in 0..16 {
            let arrivals: Arc<[(u64, f64)]> = vec![(0, 2.0), (2, 1.0)].into();
            s.handle_event(Event::Tick {
                arrivals: arrivals.clone(),
            });
            twin.handle_event(Event::Tick { arrivals });
        }
        assert_eq!(twin.checkpoint(), s.checkpoint());
    }
}
