//! Public consumers of the columnar checkpoint stream.
//!
//! Two façades over the crate-private shard machinery:
//!
//! * [`CheckpointMirror`] — a passive replica of one shard, fed the same
//!   columnar frames the driver retains (over the wire, from a file, or
//!   straight from a bench harness). A genesis frame resets it; an
//!   incremental extends it. Frames land in the mirror's preallocated
//!   slab columns — after the first genesis at a given population, a
//!   warm re-apply performs no per-session heap allocation.
//! * [`CheckpointProbe`] — a self-contained shard driver for benchmarks:
//!   populate, tick, churn, and encode checkpoint frames without spinning
//!   up a [`crate::ControlPlane`], its threads, or its channels. The
//!   probe reuses one encode sink and hands out frames byte-identical to
//!   what a worker would ship.
//!
//! Both speak the frame format of [`crate::codec::columnar`]; nothing
//! here can diverge from the service path because it *is* the service
//! path, minus the supervisor.

use crate::codec::columnar;
use crate::config::ServiceConfig;
use crate::shard::{ApplyScratch, Event, ShardState};
use crate::CtrlError;
use std::sync::Arc;

/// A passive shard replica built from columnar checkpoint frames.
///
/// The mirror enforces the same validate-then-mutate contract the
/// driver's recovery path does: a frame that fails validation leaves the
/// mirror untouched and returns [`CtrlError::InvalidCheckpoint`] with a
/// typed field, so a hostile or corrupted stream cannot leave a
/// half-written replica behind.
pub struct CheckpointMirror {
    state: ShardState,
    scratch: ApplyScratch,
}

impl CheckpointMirror {
    /// An empty mirror running `cfg`. The config must match the service
    /// that produced the frames — the frame header carries the kernel
    /// parameters and [`CheckpointMirror::apply`] rejects a mismatch
    /// (`columnar.cfg`).
    pub fn new(cfg: &ServiceConfig) -> Self {
        CheckpointMirror {
            state: ShardState::new(0, cfg),
            scratch: ApplyScratch::default(),
        }
    }

    /// Applies one columnar frame (genesis or incremental), returning the
    /// number of session rows it carried.
    ///
    /// # Errors
    ///
    /// [`CtrlError::InvalidCheckpoint`] with the offending field for a
    /// frame that is truncated, structurally malformed, or semantically
    /// inconsistent with the mirror's state; the mirror is unchanged.
    pub fn apply(&mut self, frame: &[u8]) -> Result<u64, CtrlError> {
        let parsed = columnar::parse(frame).map_err(|err| CtrlError::InvalidCheckpoint {
            field: columnar::error_field(&err),
        })?;
        let rows = parsed.rows;
        self.state
            .apply_frame(&parsed, &mut self.scratch)
            .map_err(|field| CtrlError::InvalidCheckpoint { field })?;
        Ok(u64::from(rows))
    }

    /// Ticks the mirrored shard has processed (as of the last frame).
    pub fn ticks(&self) -> u64 {
        self.state.ticks()
    }

    /// Live sessions in the mirrored shard.
    pub fn live_sessions(&self) -> usize {
        self.state.live_sessions()
    }
}

/// A bench harness around one shard: drive a population directly and
/// encode/apply checkpoint frames with no control plane in the way.
pub struct CheckpointProbe {
    state: ShardState,
    sink: columnar::ColumnSink,
    /// Next session key to hand out (keys are dense, like the driver's).
    next_key: u64,
    /// Oldest key not yet marked leaving, for churn.
    churn_cursor: u64,
    /// Tenant handles, reused so joins don't allocate per session.
    tenants: Vec<Arc<str>>,
}

/// Tenants the probe spreads sessions across — enough to exercise the
/// frame's string table without dominating it.
const PROBE_TENANTS: usize = 16;

impl CheckpointProbe {
    /// An empty probe shard running `cfg`.
    pub fn new(cfg: &ServiceConfig) -> Self {
        CheckpointProbe {
            state: ShardState::new(0, cfg),
            sink: columnar::ColumnSink::new(),
            next_key: 0,
            churn_cursor: 0,
            tenants: (0..PROBE_TENANTS)
                .map(|t| Arc::from(format!("bench-{t}").as_str()))
                .collect(),
        }
    }

    /// Joins `sessions` fresh dedicated sessions (each starts dirty, as
    /// in the live path).
    pub fn populate(&mut self, sessions: usize) {
        for _ in 0..sessions {
            let key = self.next_key;
            self.next_key += 1;
            self.state.handle_event(Event::JoinDedicated {
                key,
                tenant: Arc::clone(&self.tenants[key as usize % PROBE_TENANTS]),
            });
        }
    }

    /// Advances the shard `n` ticks, every not-yet-churned session
    /// receiving arrivals (so each carries backlog and a later
    /// [`CheckpointProbe::churn`] marks it leaving instead of retiring it
    /// on the spot). A tick dirties the whole live population regardless
    /// — the meter's clocks and window sums advance on every session —
    /// exactly like production.
    pub fn tick(&mut self, n: usize) {
        let arrivals: Arc<[(u64, f64)]> = (self.churn_cursor..self.next_key)
            .map(|k| (k, 8.0))
            .collect();
        for _ in 0..n {
            self.state.handle_event(Event::Tick {
                arrivals: Arc::clone(&arrivals),
            });
        }
    }

    /// Dirties exactly `k` sessions *without* advancing the clock, by
    /// marking the oldest `k` live sessions as leaving — the scenario an
    /// incremental checkpoint is built for (between-tick mutations touch
    /// a few rows, not the population).
    pub fn churn(&mut self, k: usize) {
        for _ in 0..k {
            if self.churn_cursor >= self.next_key {
                break;
            }
            let key = self.churn_cursor;
            self.churn_cursor += 1;
            self.state.handle_event(Event::Leave { key });
        }
    }

    /// Encodes a checkpoint frame into `out` (cleared first), returning
    /// the number of session rows encoded. `full` selects a genesis
    /// frame; otherwise only rows dirtied since the last encode are
    /// carried. Either way the dirty bits are cleared, as on the worker.
    pub fn encode(&mut self, full: bool, out: &mut Vec<u8>) -> u64 {
        out.clear();
        let kind = if full {
            columnar::KIND_GENESIS
        } else {
            columnar::KIND_INCREMENTAL
        };
        self.state.encode_columnar(kind, &mut self.sink, out)
    }

    /// Live sessions on the probe shard.
    pub fn live_sessions(&self) -> usize {
        self.state.live_sessions()
    }

    /// Ticks the probe shard has processed.
    pub fn ticks(&self) -> u64 {
        self.state.ticks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ServiceConfig {
        ServiceConfig::builder(4096.0)
            .session_b_max(16.0)
            .group_b_o(8.0)
            .offline_delay(4)
            .window(4)
            .build()
            .unwrap()
    }

    #[test]
    fn probe_frames_replicate_into_a_mirror() {
        let cfg = cfg();
        let mut probe = CheckpointProbe::new(&cfg);
        let mut mirror = CheckpointMirror::new(&cfg);
        let mut frame = Vec::new();

        probe.populate(100);
        probe.tick(6);
        let rows = probe.encode(true, &mut frame);
        assert_eq!(rows, 100);
        assert_eq!(mirror.apply(&frame).unwrap(), 100);
        assert_eq!(mirror.live_sessions(), 100);
        assert_eq!(mirror.ticks(), 6);

        // Between-tick churn dirties exactly the churned rows; the
        // incremental carries them and nothing else.
        probe.churn(7);
        let rows = probe.encode(false, &mut frame);
        assert_eq!(rows, 7, "incremental carries only the churned rows");
        assert_eq!(mirror.apply(&frame).unwrap(), 7);
        assert_eq!(mirror.live_sessions(), 100, "leaving sessions stay live");

        // A tick dirties the whole population again.
        probe.tick(1);
        let rows = probe.encode(false, &mut frame);
        assert!(rows >= 93, "a metered tick dirties every live session");
        mirror.apply(&frame).unwrap();
        assert_eq!(mirror.ticks(), 7);
    }

    #[test]
    fn parallel_swept_frames_match_sequential_and_replicate() {
        // kernel_threads is an execution detail, not a kernel parameter:
        // a probe sweeping with 4 pooled workers must emit frames
        // byte-identical to the sequential sweep's, and a mirror that
        // never heard of the knob must replicate them.
        let base = cfg();
        let k4 = ServiceConfig::builder(4096.0)
            .session_b_max(16.0)
            .group_b_o(8.0)
            .offline_delay(4)
            .window(4)
            .kernel_threads(4)
            .build()
            .unwrap();
        let mut seq = CheckpointProbe::new(&base);
        let mut par = CheckpointProbe::new(&k4);
        let mut mirror = CheckpointMirror::new(&base);
        let (mut frame_seq, mut frame_par) = (Vec::new(), Vec::new());

        for round in 0..3 {
            seq.populate(40);
            par.populate(40);
            seq.tick(5);
            par.tick(5);
            seq.churn(3);
            par.churn(3);
            let full = round == 0;
            seq.encode(full, &mut frame_seq);
            par.encode(full, &mut frame_par);
            assert_eq!(
                frame_seq, frame_par,
                "round {round}: parallel sweep changed the frame bytes"
            );
            mirror.apply(&frame_par).unwrap();
        }
        assert_eq!(mirror.live_sessions(), par.live_sessions());
        assert_eq!(mirror.ticks(), par.ticks());
    }

    #[test]
    fn malformed_frame_leaves_the_mirror_untouched() {
        let cfg = cfg();
        let mut probe = CheckpointProbe::new(&cfg);
        let mut mirror = CheckpointMirror::new(&cfg);
        let mut frame = Vec::new();
        probe.populate(10);
        probe.tick(2);
        probe.encode(true, &mut frame);
        mirror.apply(&frame).unwrap();

        probe.churn(3);
        probe.encode(false, &mut frame);
        let err = mirror.apply(&frame[..frame.len() - 1]).unwrap_err();
        assert!(
            matches!(err, CtrlError::InvalidCheckpoint { field } if field.starts_with("columnar.")),
            "truncation yields a typed columnar error, got {err:?}"
        );
        assert_eq!(mirror.live_sessions(), 10, "failed apply mutated nothing");
        assert_eq!(mirror.ticks(), 2);
        mirror
            .apply(&frame)
            .expect("the intact frame still applies after the failed one");
    }
}
