//! Snapshot aggregation and JSON export.
//!
//! Aggregation is deterministic by construction: per-session metrics are
//! sorted by session key and every float fold runs in that order, so a
//! snapshot's global section is bitwise identical no matter how sessions
//! were spread over shards or threads. The per-shard section is the only
//! placement-dependent part.

use crate::meter::SessionMetrics;
use serde::{Deserialize, Serialize};

/// Supervision status of one shard (placement-dependent; excluded from
/// [`ServiceSnapshot::invariant_view`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: u64,
    /// `false` once the shard exhausted its restart budget and was
    /// declared permanently down.
    pub healthy: bool,
    /// Times the supervisor restarted this shard.
    pub restarts: u64,
    /// The most recent failure reason, if the shard ever failed.
    pub last_failure: Option<String>,
}

/// Totals for one shard (placement-dependent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: u64,
    /// Sessions that ran on the shard (live + retired).
    pub sessions: u64,
    /// Sum of allocation changes.
    pub changes: u64,
    /// Max per-session peak allocation.
    pub peak_allocation: f64,
    /// Max per-session FIFO delay.
    pub max_delay: u64,
    /// Sum of signalling costs.
    pub signalling_cost: f64,
    /// Sum of bandwidth costs.
    pub bandwidth_cost: f64,
}

/// Service-wide totals (placement-invariant).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalMetrics {
    /// Sessions ever admitted to an executor (live + retired).
    pub sessions: u64,
    /// Total allocation changes — the signalling count the paper minimizes.
    pub changes: u64,
    /// Maximum FIFO delay over all sessions, in ticks.
    pub max_delay: u64,
    /// Maximum per-session peak allocation.
    pub peak_allocation: f64,
    /// Total bits submitted.
    pub total_arrived: f64,
    /// Total bits served.
    pub total_served: f64,
    /// Total allocated bandwidth (bandwidth-unit·ticks).
    pub total_allocated: f64,
    /// Minimum windowed utilization over all sessions with a complete
    /// window.
    pub min_windowed_utilization: Option<f64>,
    /// Total signalling cost.
    pub signalling_cost: f64,
    /// Total bandwidth cost.
    pub bandwidth_cost: f64,
}

impl GlobalMetrics {
    /// Folds sessions **already sorted by key**; the order fixes the float
    /// summation sequence.
    fn fold(sessions: &[SessionMetrics]) -> Self {
        let mut g = GlobalMetrics {
            sessions: sessions.len() as u64,
            changes: 0,
            max_delay: 0,
            peak_allocation: 0.0,
            total_arrived: 0.0,
            total_served: 0.0,
            total_allocated: 0.0,
            min_windowed_utilization: None,
            signalling_cost: 0.0,
            bandwidth_cost: 0.0,
        };
        for m in sessions {
            g.changes += m.changes;
            g.max_delay = g.max_delay.max(m.max_delay);
            g.peak_allocation = g.peak_allocation.max(m.peak_allocation);
            g.total_arrived += m.total_arrived;
            g.total_served += m.total_served;
            g.total_allocated += m.total_allocated;
            if let Some(u) = m.windowed_utilization {
                g.min_windowed_utilization = Some(match g.min_windowed_utilization {
                    Some(best) => best.min(u),
                    None => u,
                });
            }
            g.signalling_cost += m.signalling_cost;
            g.bandwidth_cost += m.bandwidth_cost;
        }
        g
    }

    /// Total billed cost.
    pub fn total_cost(&self) -> f64 {
        self.signalling_cost + self.bandwidth_cost
    }
}

/// A full metrics export of the control plane at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// Ticks the service has executed.
    pub ticks: u64,
    /// Configured shard count.
    pub shards: u64,
    /// Joins admitted.
    pub admitted: u64,
    /// Joins rejected by admission control.
    pub rejected: u64,
    /// Shard-worker restarts performed by the supervisor.
    pub restarts: u64,
    /// Journal events replayed into restarted shards during recovery.
    pub events_replayed: u64,
    /// Placement-invariant totals.
    pub global: GlobalMetrics,
    /// Per-shard totals, sorted by shard index.
    pub per_shard: Vec<ShardMetrics>,
    /// Per-shard supervision status, sorted by shard index.
    pub health: Vec<ShardHealth>,
    /// Every session's metrics, sorted by session key.
    pub sessions: Vec<SessionMetrics>,
}

/// The driver-side counters a snapshot carries verbatim: clock, shape,
/// admission tallies, and the supervisor's recovery bookkeeping.
///
/// Public so an out-of-process orchestrator (the fleet driver) can
/// re-assemble a fleet-wide [`ServiceSnapshot`] from per-process parts
/// with its own clock and summed tallies.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotCounters {
    /// Ticks the service has executed.
    pub ticks: u64,
    /// Configured shard count.
    pub shards: u64,
    /// Joins admitted.
    pub admitted: u64,
    /// Joins rejected by admission control.
    pub rejected: u64,
    /// Shard-worker restarts performed by the supervisor.
    pub restarts: u64,
    /// Journal events replayed into restarted shards during recovery.
    pub events_replayed: u64,
}

impl ServiceSnapshot {
    /// Builds a snapshot from raw per-session metrics (any order) and the
    /// driver's counters. `health` must be sorted by shard index (the
    /// supervisor stores it that way).
    pub fn assemble(
        counters: SnapshotCounters,
        health: Vec<ShardHealth>,
        mut sessions: Vec<SessionMetrics>,
    ) -> Self {
        let SnapshotCounters {
            ticks,
            shards,
            admitted,
            rejected,
            restarts,
            events_replayed,
        } = counters;
        sessions.sort_by_key(|m| m.session);
        let global = GlobalMetrics::fold(&sessions);
        let mut per_shard: Vec<ShardMetrics> = (0..shards)
            .map(|shard| ShardMetrics {
                shard,
                sessions: 0,
                changes: 0,
                peak_allocation: 0.0,
                max_delay: 0,
                signalling_cost: 0.0,
                bandwidth_cost: 0.0,
            })
            .collect();
        for m in &sessions {
            let Some(s) = per_shard.get_mut(m.shard as usize) else {
                continue;
            };
            s.sessions += 1;
            s.changes += m.changes;
            s.peak_allocation = s.peak_allocation.max(m.peak_allocation);
            s.max_delay = s.max_delay.max(m.max_delay);
            s.signalling_cost += m.signalling_cost;
            s.bandwidth_cost += m.bandwidth_cost;
        }
        ServiceSnapshot {
            ticks,
            shards,
            admitted,
            rejected,
            restarts,
            events_replayed,
            global,
            per_shard,
            health,
            sessions,
        }
    }

    /// The snapshot as a JSON value.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self)
    }

    /// The snapshot pretty-printed as JSON.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization cannot fail")
    }

    /// The placement-invariant view: everything except shard assignments,
    /// per-shard totals, and supervision bookkeeping (restarts, replay
    /// counts, health). Two runs of the same workload under different
    /// shard counts — or with and without a recovered fault — must agree
    /// on this value exactly.
    pub fn invariant_view(&self) -> (u64, GlobalMetrics, Vec<SessionMetrics>) {
        let sessions = self
            .sessions
            .iter()
            .map(|m| SessionMetrics {
                shard: 0,
                ..m.clone()
            })
            .collect();
        (self.ticks, self.global.clone(), sessions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy(shards: u64) -> Vec<ShardHealth> {
        (0..shards)
            .map(|shard| ShardHealth {
                shard,
                healthy: true,
                restarts: 0,
                last_failure: None,
            })
            .collect()
    }

    fn counters(
        ticks: u64,
        shards: u64,
        admitted: u64,
        restarts: u64,
        events_replayed: u64,
    ) -> SnapshotCounters {
        SnapshotCounters {
            ticks,
            shards,
            admitted,
            rejected: 0,
            restarts,
            events_replayed,
        }
    }

    fn metric(session: u64, shard: u64, changes: u64, arrived: f64) -> SessionMetrics {
        SessionMetrics {
            session,
            tenant: format!("t{session}").into(),
            shard,
            ticks: 10,
            changes,
            peak_allocation: 4.0 + session as f64,
            max_delay: session,
            total_arrived: arrived,
            total_served: arrived,
            total_allocated: arrived * 2.0,
            windowed_utilization: Some(0.5 / (session + 1) as f64),
            signalling_cost: changes as f64,
            bandwidth_cost: arrived * 2.0,
        }
    }

    #[test]
    fn assemble_sorts_and_folds() {
        let snap = ServiceSnapshot::assemble(
            SnapshotCounters {
                rejected: 1,
                ..counters(10, 2, 3, 0, 0)
            },
            healthy(2),
            vec![metric(2, 1, 5, 10.0), metric(0, 0, 3, 20.0)],
        );
        assert_eq!(
            snap.sessions.iter().map(|m| m.session).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(snap.global.changes, 8);
        assert_eq!(snap.global.max_delay, 2);
        assert_eq!(snap.global.sessions, 2);
        assert_eq!(snap.global.peak_allocation, 6.0);
        assert_eq!(snap.global.total_arrived, 30.0);
        assert_eq!(snap.global.min_windowed_utilization, Some(0.5 / 3.0));
        assert_eq!(snap.per_shard.len(), 2);
        assert_eq!(snap.per_shard[0].changes, 3);
        assert_eq!(snap.per_shard[1].changes, 5);
    }

    #[test]
    fn invariant_view_hides_placement() {
        let a = ServiceSnapshot::assemble(
            counters(5, 1, 2, 0, 0),
            healthy(1),
            vec![metric(0, 0, 1, 1.0)],
        );
        let b = ServiceSnapshot::assemble(
            counters(5, 4, 2, 0, 0),
            healthy(4),
            vec![metric(0, 3, 1, 1.0)],
        );
        assert_eq!(a.invariant_view(), b.invariant_view());
        assert_ne!(a.per_shard.len(), b.per_shard.len());
    }

    #[test]
    fn invariant_view_hides_recovery_bookkeeping() {
        let clean = ServiceSnapshot::assemble(
            counters(5, 1, 2, 0, 0),
            healthy(1),
            vec![metric(0, 0, 1, 1.0)],
        );
        let recovered = ServiceSnapshot::assemble(
            counters(5, 1, 2, 2, 17),
            vec![ShardHealth {
                shard: 0,
                healthy: true,
                restarts: 2,
                last_failure: Some("injected fault: kill".into()),
            }],
            vec![metric(0, 0, 1, 1.0)],
        );
        assert_eq!(clean.invariant_view(), recovered.invariant_view());
        assert_ne!(clean, recovered);
    }

    #[test]
    fn json_roundtrip() {
        use serde::Deserialize;
        let snap = ServiceSnapshot::assemble(
            counters(7, 1, 1, 1, 3),
            healthy(1),
            vec![metric(0, 0, 4, 3.0)],
        );
        let text = snap.to_json_string();
        let value = serde_json::from_str::<serde_json::Value>(&text).unwrap();
        let back = ServiceSnapshot::deserialize(&value).unwrap();
        assert_eq!(back, snap);
    }
}
