//! The control plane: session registry, admission, and the sharded
//! executor behind one handle.
//!
//! A [`ControlPlane`] is driven tick-batched: callers admit sessions
//! ([`ControlPlane::admit`] / [`ControlPlane::admit_group`]), feed
//! arrivals with [`ControlPlane::tick`], and read back a
//! [`ServiceSnapshot`] at any point. Under [`ExecMode::Threaded`] each
//! shard is a worker thread fed over a bounded channel (ticks pipeline
//! until the channel fills, which applies backpressure to the driver);
//! under [`ExecMode::Inline`] the same shard code runs on the calling
//! thread. Sessions are placed round-robin, a pooled group always lands
//! whole on one shard, and per-session dynamics are independent of
//! placement — so snapshots' placement-invariant parts are *identical*
//! across shard counts and execution modes.

use crate::admission::AdmissionController;
use crate::config::{ExecMode, ServiceConfig};
use crate::metrics::ServiceSnapshot;
use crate::shard::{run_worker, Event, ShardState};
use crate::CtrlError;
use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::thread::JoinHandle;

/// Events a worker shard can buffer before the driver blocks. Bounded so a
/// slow shard applies backpressure instead of ballooning memory.
const SHARD_QUEUE: usize = 256;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlacementKind {
    Dedicated,
    Pooled { group: u64 },
}

#[derive(Debug, Clone)]
struct Placement {
    shard: usize,
    tenant: String,
    kind: PlacementKind,
}

#[derive(Debug, Clone)]
struct GroupInfo {
    tenant: String,
    live: usize,
    envelope: f64,
}

enum Backend {
    Inline(Vec<ShardState>),
    Threaded {
        txs: Vec<Sender<Event>>,
        handles: Vec<JoinHandle<()>>,
    },
}

impl Backend {
    fn send(&mut self, shard: usize, event: Event) {
        match self {
            Backend::Inline(states) => states[shard].handle_event(event),
            Backend::Threaded { txs, .. } => {
                // A worker can only be gone if it panicked; surface that
                // instead of silently dropping events.
                txs[shard]
                    .send(event)
                    .unwrap_or_else(|_| panic!("shard {shard} worker terminated"));
            }
        }
    }
}

/// The sharded multi-tenant allocation service. See the module docs.
pub struct ControlPlane {
    cfg: ServiceConfig,
    admission: Mutex<AdmissionController>,
    placements: HashMap<u64, Placement>,
    groups: HashMap<u64, GroupInfo>,
    backend: Backend,
    next_key: u64,
    next_group: u64,
    placed: u64,
    clock: u64,
    /// Per-shard arrival buffers reused across ticks.
    routes: Vec<Vec<(u64, f64)>>,
}

impl ControlPlane {
    /// Starts a control plane: shard states are created (and, in threaded
    /// mode, worker threads spawned) immediately.
    pub fn new(cfg: ServiceConfig) -> Self {
        let backend = match cfg.exec {
            ExecMode::Inline => Backend::Inline(
                (0..cfg.shards)
                    .map(|s| ShardState::new(s as u64, &cfg))
                    .collect(),
            ),
            ExecMode::Threaded => {
                let mut txs = Vec::with_capacity(cfg.shards);
                let mut handles = Vec::with_capacity(cfg.shards);
                for s in 0..cfg.shards {
                    let (tx, rx) = bounded(SHARD_QUEUE);
                    let state = ShardState::new(s as u64, &cfg);
                    handles.push(
                        std::thread::Builder::new()
                            .name(format!("cdba-shard-{s}"))
                            .spawn(move || run_worker(state, rx))
                            .expect("spawn shard worker"),
                    );
                    txs.push(tx);
                }
                Backend::Threaded { txs, handles }
            }
        };
        let admission = Mutex::new(AdmissionController::new(cfg.budget, cfg.default_quota));
        let routes = vec![Vec::new(); cfg.shards];
        ControlPlane {
            cfg,
            admission,
            placements: HashMap::new(),
            groups: HashMap::new(),
            backend,
            next_key: 0,
            next_group: 0,
            placed: 0,
            clock: 0,
            routes,
        }
    }

    /// The configuration the service runs under.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.clock
    }

    /// Live sessions (admitted and not yet left).
    pub fn live_sessions(&self) -> usize {
        self.placements.len()
    }

    /// Budget still uncommitted by admission control.
    pub fn available_budget(&self) -> f64 {
        self.admission.lock().available()
    }

    /// Overrides one tenant's quota for future admissions.
    pub fn set_quota(&self, tenant: &str, quota: f64) {
        self.admission.lock().set_quota(tenant, quota);
    }

    fn place(&mut self) -> usize {
        let shard = (self.placed as usize) % self.cfg.shards;
        self.placed += 1;
        shard
    }

    /// Admits a dedicated session for `tenant`, running the single-session
    /// algorithm under the configured `(B_A, D_O, U_O, W)`. The admission
    /// envelope is `B_A`.
    ///
    /// # Errors
    ///
    /// [`CtrlError::Admission`] when the budget or the tenant quota cannot
    /// cover the envelope.
    pub fn admit(&mut self, tenant: &str) -> Result<u64, CtrlError> {
        let envelope = self.cfg.dedicated_envelope();
        self.admission
            .lock()
            .request(tenant, envelope)
            .map_err(CtrlError::Admission)?;
        let key = self.next_key;
        self.next_key += 1;
        let shard = self.place();
        self.placements.insert(
            key,
            Placement {
                shard,
                tenant: tenant.to_string(),
                kind: PlacementKind::Dedicated,
            },
        );
        self.backend.send(
            shard,
            Event::JoinDedicated {
                key,
                tenant: tenant.to_string(),
            },
        );
        Ok(key)
    }

    /// Admits a pooled group of `size ≥ 2` sessions for `tenant`, running
    /// the phased multi-session algorithm over one shared [`SessionPool`].
    /// The whole group lands on one shard; the admission envelope is the
    /// phased bound `4·B_O`, charged once for the group.
    ///
    /// [`SessionPool`]: cdba_core::multi::pool::SessionPool
    ///
    /// # Errors
    ///
    /// [`CtrlError::InvalidService`] for `size < 2`, otherwise as
    /// [`ControlPlane::admit`].
    pub fn admit_group(&mut self, tenant: &str, size: usize) -> Result<Vec<u64>, CtrlError> {
        if size < 2 {
            return Err(CtrlError::InvalidService(format!(
                "pooled groups need at least 2 sessions, got {size}"
            )));
        }
        let envelope = self.cfg.group_envelope();
        self.admission
            .lock()
            .request(tenant, envelope)
            .map_err(CtrlError::Admission)?;
        let group = self.next_group;
        self.next_group += 1;
        let shard = self.place();
        let members: Vec<u64> = (0..size as u64).map(|i| self.next_key + i).collect();
        self.next_key += size as u64;
        for &key in &members {
            self.placements.insert(
                key,
                Placement {
                    shard,
                    tenant: tenant.to_string(),
                    kind: PlacementKind::Pooled { group },
                },
            );
        }
        self.groups.insert(
            group,
            GroupInfo {
                tenant: tenant.to_string(),
                live: size,
                envelope,
            },
        );
        self.backend.send(
            shard,
            Event::JoinGroup {
                group,
                tenant: tenant.to_string(),
                members: members.clone(),
            },
        );
        Ok(members)
    }

    /// Begins draining a session out. Its committed envelope is released
    /// immediately (a pooled group's only once its last member leaves);
    /// the executor retires the session once its backlog drains.
    ///
    /// # Errors
    ///
    /// [`CtrlError::UnknownSession`] if the key is not live.
    pub fn leave(&mut self, key: u64) -> Result<(), CtrlError> {
        let placement = self
            .placements
            .remove(&key)
            .ok_or(CtrlError::UnknownSession(key))?;
        match placement.kind {
            PlacementKind::Dedicated => {
                self.admission
                    .lock()
                    .release(&placement.tenant, self.cfg.dedicated_envelope());
            }
            PlacementKind::Pooled { group } => {
                if let Some(info) = self.groups.get_mut(&group) {
                    info.live -= 1;
                    if info.live == 0 {
                        let info = self.groups.remove(&group).expect("present");
                        self.admission.lock().release(&info.tenant, info.envelope);
                    }
                }
            }
        }
        self.backend.send(placement.shard, Event::Leave { key });
        Ok(())
    }

    /// Advances the whole service by one tick. `arrivals` lists the bits
    /// each named session submits this tick (unlisted live sessions submit
    /// zero). Every shard ticks, listed or not, so session clocks stay in
    /// lockstep.
    ///
    /// # Errors
    ///
    /// [`CtrlError::UnknownSession`] if any named key is not live; nothing
    /// is advanced in that case.
    pub fn tick(&mut self, arrivals: &[(u64, f64)]) -> Result<(), CtrlError> {
        for route in &mut self.routes {
            route.clear();
        }
        for &(key, bits) in arrivals {
            let placement = self
                .placements
                .get(&key)
                .ok_or(CtrlError::UnknownSession(key))?;
            self.routes[placement.shard].push((key, bits));
        }
        for shard in 0..self.cfg.shards {
            let batch = std::mem::take(&mut self.routes[shard]);
            self.backend.send(shard, Event::Tick { arrivals: batch });
        }
        self.clock += 1;
        Ok(())
    }

    /// Collects a full metrics snapshot. In threaded mode this
    /// synchronizes with every shard (the reply arrives only after all
    /// previously sent events were applied).
    pub fn snapshot(&mut self) -> ServiceSnapshot {
        let (reply, rx) = unbounded();
        for shard in 0..self.cfg.shards {
            self.backend.send(
                shard,
                Event::Collect {
                    reply: reply.clone(),
                },
            );
        }
        drop(reply);
        let mut reports = Vec::with_capacity(self.cfg.shards);
        for _ in 0..self.cfg.shards {
            reports.push(rx.recv().expect("all shards report"));
        }
        reports.sort_by_key(|r| r.shard);
        let sessions = reports.into_iter().flat_map(|r| r.sessions).collect();
        let (admitted, rejected) = {
            let admission = self.admission.lock();
            (admission.admitted(), admission.rejected())
        };
        ServiceSnapshot::assemble(
            self.clock,
            self.cfg.shards as u64,
            admitted,
            rejected,
            sessions,
        )
    }

    /// Stops the executor. Equivalent to dropping, but explicit: worker
    /// threads are joined before this returns.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        if let Backend::Threaded { txs, handles } = &mut self.backend {
            for tx in txs.iter() {
                let _ = tx.send(Event::Shutdown);
            }
            txs.clear();
            for handle in handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ControlPlane {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;

    fn config(shards: usize, exec: ExecMode) -> ServiceConfig {
        ServiceConfig::builder(1024.0)
            .session_b_max(16.0)
            .group_b_o(8.0)
            .offline_delay(4)
            .window(4)
            .shards(shards)
            .exec(exec)
            .build()
            .unwrap()
    }

    /// A deterministic churn scenario driven against any service.
    fn run_scenario(mut service: ControlPlane) -> ServiceSnapshot {
        let mut live: Vec<u64> = Vec::new();
        for _ in 0..6 {
            live.push(service.admit("acme").unwrap());
        }
        live.extend(service.admit_group("globex", 3).unwrap());
        for t in 0..200u64 {
            if t == 60 {
                let gone = live.remove(0);
                service.leave(gone).unwrap();
                live.push(service.admit("initech").unwrap());
            }
            let arrivals: Vec<(u64, f64)> = live
                .iter()
                .enumerate()
                .map(|(i, &key)| (key, ((t + i as u64) % 4) as f64))
                .collect();
            service.tick(&arrivals).unwrap();
        }
        let snapshot = service.snapshot();
        service.shutdown();
        snapshot
    }

    #[test]
    fn inline_and_threaded_agree_exactly() {
        let a = run_scenario(ControlPlane::new(config(1, ExecMode::Inline)));
        let b = run_scenario(ControlPlane::new(config(1, ExecMode::Threaded)));
        assert_eq!(a, b, "same shard count: full snapshots agree");
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let one = run_scenario(ControlPlane::new(config(1, ExecMode::Inline)));
        let four = run_scenario(ControlPlane::new(config(4, ExecMode::Threaded)));
        assert_eq!(one.invariant_view(), four.invariant_view());
        assert!(one.global.changes > 0);
        assert!(one.global.total_served > 0.0);
    }

    #[test]
    fn admission_rejections_do_not_allocate() {
        let cfg = ServiceConfig::builder(32.0)
            .session_b_max(16.0)
            .exec(ExecMode::Inline)
            .build()
            .unwrap();
        let mut service = ControlPlane::new(cfg);
        let a = service.admit("acme").unwrap();
        let _b = service.admit("acme").unwrap();
        assert!(matches!(
            service.admit("acme"),
            Err(CtrlError::Admission(_))
        ));
        assert_eq!(service.live_sessions(), 2);
        service.leave(a).unwrap();
        assert!(service.admit("acme").is_ok());
        let snap = service.snapshot();
        assert_eq!(snap.admitted, 3);
        assert_eq!(snap.rejected, 1);
    }

    #[test]
    fn group_envelope_released_on_last_leave() {
        let cfg = ServiceConfig::builder(32.0)
            .group_b_o(8.0) // envelope 32: one group fills the budget
            .exec(ExecMode::Inline)
            .build()
            .unwrap();
        let mut service = ControlPlane::new(cfg);
        let members = service.admit_group("acme", 2).unwrap();
        assert!(service.admit_group("acme", 2).is_err());
        service.leave(members[0]).unwrap();
        assert!(service.admit_group("acme", 2).is_err(), "group still live");
        service.leave(members[1]).unwrap();
        assert!(service.admit_group("acme", 2).is_ok());
    }

    #[test]
    fn unknown_sessions_error() {
        let mut service = ControlPlane::new(config(1, ExecMode::Inline));
        assert!(matches!(
            service.leave(42),
            Err(CtrlError::UnknownSession(42))
        ));
        assert!(matches!(
            service.tick(&[(42, 1.0)]),
            Err(CtrlError::UnknownSession(42))
        ));
    }

    #[test]
    fn left_sessions_reject_arrivals() {
        let mut service = ControlPlane::new(config(2, ExecMode::Inline));
        let key = service.admit("acme").unwrap();
        service.tick(&[(key, 2.0)]).unwrap();
        service.leave(key).unwrap();
        assert!(matches!(
            service.tick(&[(key, 2.0)]),
            Err(CtrlError::UnknownSession(_))
        ));
    }
}
