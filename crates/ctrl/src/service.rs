//! The control plane: session registry, admission, and the supervised
//! sharded executor behind one handle.
//!
//! A [`ControlPlane`] is driven tick-batched: callers admit sessions
//! ([`ControlPlane::admit`] / [`ControlPlane::admit_group`]), feed
//! arrivals with [`ControlPlane::tick`], and read back a
//! [`ServiceSnapshot`] at any point. Under [`ExecMode::Threaded`] each
//! shard is a worker thread fed over a bounded channel (ticks pipeline
//! until the channel fills, which applies backpressure to the driver);
//! under [`ExecMode::Inline`] the same shard code runs on the calling
//! thread. Sessions are placed on the least-loaded healthy shard (lowest
//! index on ties), a pooled group always lands whole on one shard, and
//! per-session dynamics are independent of placement — so snapshots'
//! placement-invariant parts are *identical* across shard counts and
//! execution modes.
//!
//! # Supervision and crash recovery
//!
//! The driver doubles as the shard supervisor. Each threaded worker runs
//! under `catch_unwind` and reports panics as typed
//! [`ShardFailure`](crate::shard::ShardFailure)s instead of poisoning the
//! service; the driver also treats a worker that stalls past
//! [`ServiceConfig::shard_timeout_ms`] (a full event queue, or a missing
//! snapshot reply) as failed. A failed shard is restarted from its last
//! periodic [`ShardCheckpoint`](crate::shard::ShardCheckpoint) (taken
//! every [`ServiceConfig::checkpoint_every`] ticks) by replaying the
//! driver's journal of events sent since that checkpoint — the journal is
//! trimmed on every checkpoint receipt, which is what keeps it bounded.
//! Each incarnation of a worker gets a fresh *epoch*; messages stamped
//! with a superseded epoch are discarded, so a hung worker that wakes up
//! after being replaced cannot corrupt anything. Once a shard exhausts
//! [`ServiceConfig::max_restarts`] (or recovery is disabled with
//! `checkpoint_every = 0`), it is marked permanently down and every
//! operation touching it returns [`CtrlError::ShardDown`] — the driver
//! never panics on a dead shard. Restart and replay totals, plus
//! per-shard health, are surfaced in the [`ServiceSnapshot`].

use crate::admission::AdmissionController;
use crate::config::{ExecMode, ServiceConfig};
use crate::fault::FaultPlan;
use crate::meter::SessionMetrics;
use crate::metrics::{ServiceSnapshot, ShardHealth, SnapshotCounters};
use crate::obs::CtrlMetrics;
use crate::shard::{
    panic_reason, run_worker, Event, ReplayEvent, ShardCheckpoint, ShardState, WorkerCtx, WorkerMsg,
};
use crate::CtrlError;
use cdba_obs::{Registry, TraceEvent, TraceKind, TraceRing};
use crossbeam::channel::{bounded, unbounded, Receiver, SendTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Events a worker shard can buffer before the driver blocks. Bounded so a
/// slow shard applies backpressure instead of ballooning memory.
const SHARD_QUEUE: usize = 256;

/// Ticks [`ExecMode::Adaptive`] observes before it may escalate — enough
/// for the EWMA to settle past start-up noise.
const ADAPTIVE_WARMUP_TICKS: u64 = 32;

/// Smoothed per-tick cost above which [`ExecMode::Adaptive`] escalates to
/// the threaded backend. Below this, channel hops and thread wakeups cost
/// more than the shard work they would overlap.
const ADAPTIVE_ESCALATE_NS: f64 = 100_000.0;

/// EWMA smoothing factor for the adaptive per-tick cost estimate.
const ADAPTIVE_EWMA_ALPHA: f64 = 0.2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlacementKind {
    Dedicated,
    Pooled { group: u64 },
}

#[derive(Debug, Clone)]
struct Placement {
    shard: usize,
    tenant: Arc<str>,
    kind: PlacementKind,
}

/// Direct-mapped placement table. Session keys are dense monotone
/// counters, so a `Vec` indexed by key replaces a hash map on the tick
/// hot path: the per-arrival lookup is one bounds check and a load.
/// Slots of departed sessions stay occupied-free but allocated (keys are
/// never reused), so the footprint is bounded by the highest key issued.
struct PlacementTable {
    slots: Vec<Option<Placement>>,
    /// Dense routing column, parallel to `slots`: the owning shard per
    /// key, `u32::MAX` for a key that is not live. The tick hot loop
    /// resolves each arrival with a 4-byte read here instead of chasing
    /// the full placement record.
    shard_of: Vec<u32>,
    live: usize,
}

/// `shard_of` sentinel for a key with no live placement.
const NO_SHARD: u32 = u32::MAX;

impl PlacementTable {
    fn new() -> Self {
        PlacementTable {
            slots: Vec::new(),
            shard_of: Vec::new(),
            live: 0,
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn get(&self, key: u64) -> Option<&Placement> {
        self.slots.get(key as usize).and_then(Option::as_ref)
    }

    /// The owning shard of a live key (the hot-path subset of
    /// [`PlacementTable::get`]).
    fn shard_of(&self, key: u64) -> Option<usize> {
        match self.shard_of.get(key as usize) {
            Some(&shard) if shard != NO_SHARD => Some(shard as usize),
            _ => None,
        }
    }

    fn insert(&mut self, key: u64, placement: Placement) {
        let at = key as usize;
        if self.slots.len() <= at {
            self.slots.resize_with(at + 1, || None);
            self.shard_of.resize(at + 1, NO_SHARD);
        }
        debug_assert!(self.slots[at].is_none(), "session key {key} reused");
        self.shard_of[at] = placement.shard as u32;
        self.slots[at] = Some(placement);
        self.live += 1;
    }

    fn remove(&mut self, key: u64) -> Option<Placement> {
        let taken = self.slots.get_mut(key as usize).and_then(Option::take);
        if taken.is_some() {
            self.shard_of[key as usize] = NO_SHARD;
            self.live -= 1;
        }
        taken
    }

    /// Live placements in ascending key order.
    fn iter(&self) -> impl Iterator<Item = (u64, &Placement)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(key, slot)| slot.as_ref().map(|p| (key as u64, p)))
    }
}

/// The escalation estimator behind [`ExecMode::Adaptive`]: an EWMA of the
/// measured inline per-tick cost. Dropped (set to `None` on the service)
/// once escalation happens — the switch is one-way.
struct AdaptiveExec {
    ewma_ns: f64,
    observed: u64,
    /// Host parallelism, sampled once at construction. On one core the
    /// threaded backend can only lose, so escalation is disabled.
    cores: usize,
    /// The configured intra-shard kernel thread count: those threads
    /// already occupy cores during every inline tick, so escalation to
    /// one worker per shard only helps when cores remain beyond them.
    kernel_threads: usize,
}

impl AdaptiveExec {
    fn new(kernel_threads: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        AdaptiveExec {
            ewma_ns: 0.0,
            observed: 0,
            cores,
            kernel_threads,
        }
    }

    fn observe(&mut self, tick_ns: f64) {
        self.ewma_ns = if self.observed == 0 {
            tick_ns
        } else {
            ADAPTIVE_EWMA_ALPHA * tick_ns + (1.0 - ADAPTIVE_EWMA_ALPHA) * self.ewma_ns
        };
        self.observed += 1;
    }

    fn should_escalate(&self, shards: usize) -> bool {
        self.observed >= ADAPTIVE_WARMUP_TICKS
            && self.ewma_ns > ADAPTIVE_ESCALATE_NS
            && shards > 1
            && self.cores > self.kernel_threads
    }
}

#[derive(Debug, Clone)]
struct GroupInfo {
    tenant: Arc<str>,
    live: usize,
    envelope: f64,
}

/// One live worker incarnation of a threaded shard.
struct Worker {
    tx: Sender<Event>,
    handle: JoinHandle<()>,
    cancel: Arc<AtomicBool>,
}

/// The driver's supervision record for one shard.
struct ShardSup {
    /// Incarnation counter; bumped on every restart. Worker messages from
    /// older epochs are discarded.
    epoch: u64,
    /// Cleared when the restart budget is exhausted (or recovery is
    /// impossible); a down shard never comes back.
    healthy: bool,
    /// Restarts performed so far.
    restarts: u64,
    /// Most recent failure reason, if any.
    last_failure: Option<String>,
    /// Replayable events sent since the last accepted checkpoint, in send
    /// order. Trimmed on every checkpoint receipt.
    journal: Vec<ReplayEvent>,
    /// Replayable events covered by the chain tip (i.e. sent before
    /// `journal[0]`).
    journal_base: u64,
    /// The retained columnar checkpoint chain: a genesis frame followed
    /// by the incremental frames since it, in emission order. Recovery
    /// applies the whole chain, then replays the journal. A genesis
    /// receipt resets the chain, which is what bounds its length to the
    /// configured genesis cadence.
    chain: Vec<ShardCheckpoint>,
    /// Frames ever pushed onto `chain` (a genesis reset does not rewind
    /// it) — the cursor space checkpoint subscribers resume from. The
    /// chain always holds frames `frames_seq - chain.len()..frames_seq`.
    frames_seq: u64,
    /// Live sessions placed on this shard, for least-loaded placement.
    live: usize,
    /// Ticks dispatched to the current worker incarnation but not yet
    /// acknowledged. Bounds how far the tick pipeline runs ahead.
    inflight: u64,
}

impl ShardSup {
    fn new() -> Self {
        ShardSup {
            epoch: 0,
            healthy: true,
            restarts: 0,
            last_failure: None,
            journal: Vec::new(),
            journal_base: 0,
            chain: Vec::new(),
            frames_seq: 0,
            live: 0,
            inflight: 0,
        }
    }
}

enum Backend {
    Inline(Vec<ShardState>),
    Threaded { workers: Vec<Option<Worker>> },
}

fn spawn_worker(
    shard: usize,
    epoch: u64,
    state: ShardState,
    events_base: u64,
    cfg: &ServiceConfig,
    fault: Option<FaultPlan>,
    msgs: &Sender<WorkerMsg>,
) -> Result<Worker, CtrlError> {
    let (tx, rx) = bounded(SHARD_QUEUE);
    let cancel = Arc::new(AtomicBool::new(false));
    let ctx = WorkerCtx {
        epoch,
        cancel: cancel.clone(),
        msgs: msgs.clone(),
        checkpoint_every: cfg.checkpoint_every,
        full_every: cfg.checkpoint_full_every,
        events_base,
        fault,
    };
    let handle = std::thread::Builder::new()
        .name(format!("cdba-shard-{shard}-e{epoch}"))
        .spawn(move || run_worker(state, rx, ctx))
        .map_err(|e| CtrlError::Spawn {
            shard,
            reason: e.to_string(),
        })?;
    Ok(Worker { tx, handle, cancel })
}

/// A resume cursor plus the retained columnar checkpoint frames past a
/// subscriber's cursor, each frame as `(kind, bytes)` — the return shape
/// of [`ControlPlane::checkpoint_frames_since`].
pub type CheckpointFrames = (u64, Vec<(u8, Arc<[u8]>)>);

/// The sharded multi-tenant allocation service. See the module docs.
pub struct ControlPlane {
    cfg: ServiceConfig,
    admission: Mutex<AdmissionController>,
    placements: PlacementTable,
    groups: HashMap<u64, GroupInfo>,
    backend: Backend,
    /// Out-of-band worker→driver channel (threaded mode only).
    msgs: Option<(Sender<WorkerMsg>, Receiver<WorkerMsg>)>,
    sups: Vec<ShardSup>,
    /// Handles of superseded workers, joined at shutdown. A hung worker
    /// cannot be joined at restart time without blocking the driver.
    graveyard: Vec<JoinHandle<()>>,
    events_replayed: u64,
    next_key: u64,
    next_group: u64,
    clock: u64,
    /// Per-shard arrival buffers reused across ticks.
    routes: Vec<Vec<(u64, f64)>>,
    /// Per-key stamp of the tick that last listed the key, indexed by
    /// session key; replaces a hash set on the duplicate-arrival check
    /// with one indexed load, and never needs clearing between ticks.
    seen_at: Vec<u64>,
    /// The stamp naming the current tick in `seen_at`.
    seen_stamp: u64,
    /// Escalation estimator while running adaptively inline; `None` in the
    /// pure modes and after escalation.
    adaptive: Option<AdaptiveExec>,
    /// The shared empty arrival batch, so idle shards tick without a fresh
    /// allocation.
    empty_batch: Arc<[(u64, f64)]>,
    /// Bumped on every mutation that can change a snapshot; the snapshot
    /// cache is valid only while its stamp matches.
    generation: u64,
    /// The last assembled snapshot, stamped with the generation it
    /// captured.
    snapshot_cache: Option<(u64, Arc<ServiceSnapshot>)>,
    /// Pre-resolved metric handles; `None` until
    /// [`ControlPlane::attach_metrics`]. Every hook is one branch when
    /// unattached.
    obs: Option<CtrlMetrics>,
    /// Structured-event ring; `None` until
    /// [`ControlPlane::attach_trace`].
    trace: Option<Arc<TraceRing>>,
}

impl ControlPlane {
    /// Starts a control plane: shard states are created (and, in threaded
    /// mode, worker threads spawned) immediately. The configured fault
    /// plan, if any, is armed on the targeted shard's initial worker.
    pub fn new(cfg: ServiceConfig) -> Self {
        let mut sups: Vec<ShardSup> = (0..cfg.shards).map(|_| ShardSup::new()).collect();
        let (backend, msgs) = match cfg.exec {
            // Adaptive starts on the inline backend and escalates from
            // `tick` once the measured per-tick cost justifies workers.
            ExecMode::Inline | ExecMode::Adaptive => (
                Backend::Inline(
                    (0..cfg.shards)
                        .map(|s| ShardState::new(s as u64, &cfg))
                        .collect(),
                ),
                None,
            ),
            ExecMode::Threaded => {
                let (msg_tx, msg_rx) = unbounded();
                let mut workers = Vec::with_capacity(cfg.shards);
                for (s, sup) in sups.iter_mut().enumerate() {
                    let fault = cfg.fault.filter(|plan| plan.shard == s);
                    // A failed spawn degrades like any other shard fault:
                    // the shard starts permanently down instead of
                    // aborting the whole service.
                    match spawn_worker(
                        s,
                        0,
                        ShardState::new(s as u64, &cfg),
                        0,
                        &cfg,
                        fault,
                        &msg_tx,
                    ) {
                        Ok(worker) => workers.push(Some(worker)),
                        Err(err) => {
                            sup.healthy = false;
                            sup.last_failure = Some(err.to_string());
                            workers.push(None);
                        }
                    }
                }
                (Backend::Threaded { workers }, Some((msg_tx, msg_rx)))
            }
        };
        let admission = Mutex::new(AdmissionController::new(cfg.budget, cfg.default_quota));
        let routes = vec![Vec::new(); cfg.shards];
        let adaptive =
            (cfg.exec == ExecMode::Adaptive).then(|| AdaptiveExec::new(cfg.kernel_threads));
        ControlPlane {
            cfg,
            admission,
            placements: PlacementTable::new(),
            groups: HashMap::new(),
            backend,
            msgs,
            sups,
            graveyard: Vec::new(),
            events_replayed: 0,
            next_key: 0,
            next_group: 0,
            clock: 0,
            routes,
            seen_at: Vec::new(),
            seen_stamp: 0,
            adaptive,
            empty_batch: Arc::from(Vec::new()),
            generation: 0,
            snapshot_cache: None,
            obs: None,
            trace: None,
        }
    }

    /// Resolves this plane's metric series against `registry` and starts
    /// updating them. The hooks live on the driver thread only (the tick
    /// kernel is untouched); snapshot-derived gauges (signalling cost,
    /// change count, max delay) refresh whenever a snapshot is assembled.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.obs = Some(CtrlMetrics::register(registry, self.cfg.shards));
        self.sync_membership_gauges();
    }

    /// Starts pushing structured control-plane events (admissions,
    /// restarts, checkpoints) into `ring`.
    pub fn attach_trace(&mut self, ring: Arc<TraceRing>) {
        self.trace = Some(ring);
    }

    /// Refreshes the membership-scoped gauges: live totals, per-shard
    /// placement, slab key-space size, and uncommitted budget. Called on
    /// every membership mutation — churn-rate, not tick-rate.
    fn sync_membership_gauges(&self) {
        let Some(m) = &self.obs else { return };
        m.live_sessions.set(self.placements.len() as f64);
        m.slab_slots.set(self.next_key as f64);
        m.available_budget.set(self.admission.lock().available());
        for (shard, sup) in self.sups.iter().enumerate() {
            if let Some(gauge) = m.shard_sessions.get(shard) {
                gauge.set(sup.live as f64);
            }
        }
    }

    /// Pushes one trace event if a ring is attached.
    fn trace_push(&self, event: TraceEvent) {
        if let Some(ring) = &self.trace {
            ring.push(event);
        }
    }

    /// The configuration the service runs under.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.clock
    }

    /// Live sessions (admitted and not yet left).
    pub fn live_sessions(&self) -> usize {
        self.placements.len()
    }

    /// Budget still uncommitted by admission control.
    pub fn available_budget(&self) -> f64 {
        self.admission.lock().available()
    }

    /// Overrides one tenant's quota for future admissions.
    pub fn set_quota(&self, tenant: &str, quota: f64) {
        self.admission.lock().set_quota(tenant, quota);
    }

    /// Shard-worker restarts performed so far.
    pub fn restarts(&self) -> u64 {
        self.sups.iter().map(|s| s.restarts).sum()
    }

    /// Journal events replayed into restarted shards so far.
    pub fn events_replayed(&self) -> u64 {
        self.events_replayed
    }

    fn down_error(&self, shard: usize) -> CtrlError {
        CtrlError::ShardDown {
            shard,
            reason: self.sups[shard]
                .last_failure
                .clone()
                .unwrap_or_else(|| "shard is down".to_string()),
        }
    }

    /// The least-loaded healthy shard (lowest index on ties), or `None`
    /// when every shard is down.
    fn place(&self) -> Option<usize> {
        (0..self.cfg.shards)
            .filter(|&s| self.sups[s].healthy)
            .min_by_key(|&s| (self.sups[s].live, s))
    }

    /// One-way switch from the inline to the threaded backend
    /// ([`ExecMode::Adaptive`] only). Each shard's state moves into its
    /// worker *bitwise* — no encode/decode round trip — so results are
    /// unaffected; each supervisor gets a fresh epoch, an empty journal,
    /// and (when recovery is enabled) a checkpoint seeded from the state
    /// being handed over, so a worker that fails before its first periodic
    /// checkpoint still recovers to the escalation point.
    fn escalate_to_threaded(&mut self) {
        let states = match std::mem::replace(
            &mut self.backend,
            Backend::Threaded {
                workers: Vec::new(),
            },
        ) {
            Backend::Inline(states) => states,
            threaded => {
                self.backend = threaded;
                return;
            }
        };
        let (msg_tx, msg_rx) = unbounded();
        let mut workers = Vec::with_capacity(self.cfg.shards);
        let mut sink = crate::codec::columnar::ColumnSink::new();
        for (s, mut state) in states.into_iter().enumerate() {
            let sup = &mut self.sups[s];
            sup.epoch += 1;
            sup.journal.clear();
            sup.journal_base = 0;
            sup.inflight = 0;
            let epoch = sup.epoch;
            if self.cfg.checkpoint_every > 0 {
                // Seed the chain with a genesis frame of the state being
                // handed over; the worker's incrementals chain onto it.
                let mut bytes = Vec::new();
                let sessions = state.encode_columnar(
                    crate::codec::columnar::KIND_GENESIS,
                    &mut sink,
                    &mut bytes,
                );
                sup.chain.clear();
                sup.chain.push(ShardCheckpoint {
                    shard: s as u64,
                    epoch,
                    events_applied: 0,
                    kind: crate::codec::columnar::KIND_GENESIS,
                    sessions,
                    bytes: bytes.into(),
                });
                sup.frames_seq += 1;
            }
            match spawn_worker(s, epoch, state, 0, &self.cfg, None, &msg_tx) {
                Ok(worker) => workers.push(Some(worker)),
                Err(err) => {
                    // Degrade exactly like a failed spawn at start-up.
                    sup.healthy = false;
                    sup.last_failure = Some(err.to_string());
                    workers.push(None);
                }
            }
        }
        self.backend = Backend::Threaded { workers };
        self.msgs = Some((msg_tx, msg_rx));
        self.adaptive = None;
        self.generation += 1;
    }

    /// Whether the service is currently running on worker threads.
    #[cfg(test)]
    fn is_threaded(&self) -> bool {
        matches!(self.backend, Backend::Threaded { .. })
    }

    /// Applies all pending out-of-band worker messages: accepts
    /// current-epoch checkpoints (trimming the journal they cover), counts
    /// tick acks against the pipeline, and recovers shards that reported a
    /// failure. Recovery errors are not propagated here — the failed shard
    /// is marked down and the caller's own health check surfaces it.
    fn drain_worker_msgs(&mut self) {
        loop {
            let msg = match &self.msgs {
                Some((_, rx)) => match rx.try_recv() {
                    Ok(msg) => msg,
                    Err(_) => return,
                },
                None => return,
            };
            self.apply_worker_msg(msg);
        }
    }

    /// Applies one out-of-band worker message. Messages stamped with a
    /// superseded epoch are discarded.
    fn apply_worker_msg(&mut self, msg: WorkerMsg) {
        match msg {
            WorkerMsg::Checkpoint(cp) => self.accept_checkpoint(cp),
            WorkerMsg::TickAck { shard, epoch } => {
                let sup = &mut self.sups[shard as usize];
                if sup.epoch == epoch {
                    sup.inflight = sup.inflight.saturating_sub(1);
                }
            }
            WorkerMsg::Failure(failure) => {
                let shard = failure.shard as usize;
                if self.sups[shard].epoch == failure.epoch {
                    let _ = self.recover(shard, failure.reason);
                }
            }
        }
    }

    /// Blocks until `shard` has pipeline capacity for one more tick: fewer
    /// than [`ServiceConfig::pipeline_depth`] dispatched-but-unacked ticks.
    /// Worker messages that arrive while waiting (acks, checkpoints,
    /// failures) are applied as they land, so a failure surfaces here as a
    /// recovery rather than a stall. A shard that produces neither an ack
    /// nor a failure within the shard timeout is restarted.
    fn await_pipeline_slot(&mut self, shard: usize) -> Result<(), CtrlError> {
        let depth = u64::from(self.cfg.pipeline_depth);
        if !self.sups[shard].healthy || self.sups[shard].inflight < depth {
            return Ok(());
        }
        let deadline = std::time::Instant::now() + Duration::from_millis(self.cfg.shard_timeout_ms);
        while self.sups[shard].healthy && self.sups[shard].inflight >= depth {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return self.recover(shard, "tick pipeline stalled past the shard timeout".into());
            }
            let msg = match &self.msgs {
                Some((_, rx)) => match rx.recv_timeout(remaining) {
                    Ok(msg) => msg,
                    Err(_) => continue,
                },
                None => return Ok(()),
            };
            self.apply_worker_msg(msg);
        }
        Ok(())
    }

    fn accept_checkpoint(&mut self, cp: ShardCheckpoint) {
        let shard = cp.shard as usize;
        let payload_bytes = cp.bytes.len() as u64;
        let sup = &mut self.sups[shard];
        if sup.epoch != cp.epoch {
            return; // stale: a superseded worker's parting checkpoint
        }
        let covered =
            (cp.events_applied.saturating_sub(sup.journal_base) as usize).min(sup.journal.len());
        sup.journal.drain(..covered);
        sup.journal_base = cp.events_applied;
        // A genesis frame supersedes everything before it; an incremental
        // extends the chain it was emitted against.
        let (kind, sessions) = (cp.kind, cp.sessions);
        if kind == crate::codec::columnar::KIND_GENESIS {
            sup.chain.clear();
        }
        sup.chain.push(cp);
        sup.frames_seq += 1;
        if let Some(m) = &self.obs {
            if let Some(counter) = m.shard_checkpoints.get(shard) {
                counter.inc();
            }
            if let Some(counter) = m.shard_checkpoint_bytes.get(shard) {
                counter.add(payload_bytes);
            }
            if kind == crate::codec::columnar::KIND_GENESIS {
                m.checkpoint_full_sessions.add(sessions);
            } else {
                m.checkpoint_dirty_sessions.add(sessions);
            }
        }
        if self.trace.is_some() {
            self.trace_push(
                TraceEvent::at(self.clock, TraceKind::Checkpoint)
                    .shard(shard as u32)
                    .detail(format!("{payload_bytes} bytes")),
            );
        }
    }

    /// Cancels and retires `shard`'s current worker, if any. The handle
    /// goes to the graveyard: a hung worker only observes the cancel flag
    /// once its stall ends, so joining here would block the driver.
    fn retire_worker(&mut self, shard: usize) {
        if let Backend::Threaded { workers } = &mut self.backend {
            if let Some(old) = workers[shard].take() {
                old.cancel.store(true, Ordering::Release);
                drop(old.tx);
                self.graveyard.push(old.handle);
            }
        }
    }

    /// Restarts `shard` after a failure: rebuild its state from the last
    /// checkpoint plus a journal replay, then spawn a fresh-epoch worker.
    /// Restarted workers never re-arm the injected fault.
    ///
    /// # Errors
    ///
    /// [`CtrlError::ShardDown`] when recovery is disabled
    /// (`checkpoint_every = 0`), the restart budget is exhausted, or the
    /// replay itself panics (a deterministic poison event); the shard is
    /// marked permanently down in all three cases.
    fn recover(&mut self, shard: usize, reason: String) -> Result<(), CtrlError> {
        self.generation += 1;
        self.retire_worker(shard);
        let max_restarts = u64::from(self.cfg.max_restarts);
        let sup = &mut self.sups[shard];
        sup.last_failure = Some(reason.clone());
        // The replay below applies every journaled tick on this thread;
        // nothing dispatched to the old worker is outstanding any more.
        sup.inflight = 0;
        if self.cfg.checkpoint_every == 0 {
            sup.healthy = false;
            return Err(CtrlError::ShardDown {
                shard,
                reason: format!("{reason} (recovery disabled: checkpoint_every = 0)"),
            });
        }
        if sup.restarts >= max_restarts {
            sup.healthy = false;
            return Err(CtrlError::ShardDown {
                shard,
                reason: format!("{reason} (restart budget {max_restarts} exhausted)"),
            });
        }
        sup.restarts += 1;
        sup.epoch += 1;
        let epoch = sup.epoch;
        let events_base = sup.journal_base + sup.journal.len() as u64;
        let chain = sup.chain.clone();
        let journal = sup.journal.clone();
        let cfg = self.cfg.clone();
        // The replay runs on the driver thread; guard it so a poison event
        // that deterministically panics the shard cannot take the driver
        // down with it. The guard also covers decoding the checkpoint
        // chain's binary payloads: a malformed payload downs the shard,
        // not the driver.
        let restore_started = std::time::Instant::now();
        let rebuilt = catch_unwind(AssertUnwindSafe(|| {
            let mut state = ShardState::new(shard as u64, &cfg);
            let mut scratch = crate::shard::ApplyScratch::default();
            for cp in &chain {
                let frame = crate::codec::columnar::parse(&cp.bytes)
                    .expect("retained checkpoint frame must parse");
                state
                    .apply_frame(&frame, &mut scratch)
                    .expect("retained checkpoint chain must apply");
            }
            for ev in &journal {
                state.handle_event(ev.to_event());
            }
            state
        }));
        let restore_seconds = restore_started.elapsed().as_secs_f64();
        let state = match rebuilt {
            Ok(state) => state,
            Err(payload) => {
                let why = format!("recovery replay panicked: {}", panic_reason(payload));
                let sup = &mut self.sups[shard];
                sup.healthy = false;
                sup.last_failure = Some(why.clone());
                return Err(CtrlError::ShardDown { shard, reason: why });
            }
        };
        self.events_replayed += journal.len() as u64;
        let msg_tx = self
            .msgs
            .as_ref()
            .expect("threaded mode has a message channel")
            .0
            .clone();
        let worker = match spawn_worker(shard, epoch, state, events_base, &self.cfg, None, &msg_tx)
        {
            Ok(worker) => worker,
            Err(err) => {
                let sup = &mut self.sups[shard];
                sup.healthy = false;
                sup.last_failure = Some(err.to_string());
                return Err(err);
            }
        };
        let Backend::Threaded { workers } = &mut self.backend else {
            unreachable!("recover is only reachable in threaded mode")
        };
        workers[shard] = Some(worker);
        if let Some(m) = &self.obs {
            if let Some(counter) = m.shard_restarts.get(shard) {
                counter.inc();
            }
            m.events_replayed.add(journal.len() as u64);
            m.restore_seconds.observe(restore_seconds);
        }
        if self.trace.is_some() {
            self.trace_push(
                TraceEvent::at(self.clock, TraceKind::ShardRestart)
                    .shard(shard as u32)
                    .detail(reason),
            );
        }
        Ok(())
    }

    /// Forces `shard` through the full recovery path — retire its worker,
    /// rebuild from the retained checkpoint chain plus a journal replay,
    /// spawn a fresh epoch — exactly as if the worker had failed. An
    /// operator uses this to rotate a worker in place (or a harness to
    /// exercise restore determinism); it counts against the restart
    /// budget like any recovery. Inline mode has no worker to rotate, so
    /// the call is a no-op there.
    ///
    /// # Errors
    ///
    /// [`CtrlError::ShardDown`] under the same conditions as a
    /// failure-driven recovery (budget exhausted, recovery disabled, or a
    /// poisoned replay).
    pub fn restart_shard(&mut self, shard: usize) -> Result<(), CtrlError> {
        if shard >= self.cfg.shards {
            return Err(CtrlError::InvalidService(format!(
                "shard {shard} out of range (shards = {})",
                self.cfg.shards
            )));
        }
        if matches!(self.backend, Backend::Inline(_)) {
            return Ok(());
        }
        self.drain_worker_msgs();
        if !self.sups[shard].healthy {
            return Err(self.down_error(shard));
        }
        self.recover(shard, "operator-requested restart".into())
    }

    /// The columnar checkpoint frames accepted for `shard` since `cursor`
    /// (a value returned by a previous call; 0 for "from the beginning"),
    /// oldest first, plus the cursor to resume from. A subscriber that
    /// fell behind the retained chain gets the whole chain instead — its
    /// first frame is a genesis, which resets the subscriber's
    /// [`crate::CheckpointMirror`] cleanly. Inline mode emits no
    /// checkpoints, so the cursor stays 0 and the list empty.
    ///
    /// # Errors
    ///
    /// [`CtrlError::InvalidService`] for an out-of-range shard.
    pub fn checkpoint_frames_since(
        &mut self,
        shard: usize,
        cursor: u64,
    ) -> Result<CheckpointFrames, CtrlError> {
        if shard >= self.cfg.shards {
            return Err(CtrlError::InvalidService(format!(
                "shard {shard} out of range (shards = {})",
                self.cfg.shards
            )));
        }
        self.drain_worker_msgs();
        let sup = &self.sups[shard];
        let base = sup.frames_seq - sup.chain.len() as u64;
        let skip = cursor.saturating_sub(base).min(sup.chain.len() as u64) as usize;
        let frames = sup.chain[skip..]
            .iter()
            .map(|cp| (cp.kind, Arc::clone(&cp.bytes)))
            .collect();
        Ok((sup.frames_seq, frames))
    }

    /// Delivers one replayable event to `shard`, journaling it first so a
    /// worker failure between journal and delivery is recovered by replay.
    /// A successful recovery therefore counts as delivery.
    ///
    /// # Errors
    ///
    /// [`CtrlError::ShardDown`] if the shard is (or just became)
    /// permanently down.
    fn dispatch(&mut self, shard: usize, ev: ReplayEvent) -> Result<(), CtrlError> {
        if let Backend::Inline(states) = &mut self.backend {
            states[shard].handle_event(ev.to_event());
            return Ok(());
        }
        self.drain_worker_msgs();
        if !self.sups[shard].healthy {
            return Err(self.down_error(shard));
        }
        if self.cfg.checkpoint_every > 0 {
            self.sups[shard].journal.push(ev.clone());
        }
        let timeout = Duration::from_millis(self.cfg.shard_timeout_ms);
        let epoch = self.sups[shard].epoch;
        let sent = {
            let Backend::Threaded { workers } = &self.backend else {
                unreachable!("inline handled above")
            };
            let worker = workers[shard].as_ref().expect("healthy shard has a worker");
            worker.tx.send_timeout(ev.to_event(), timeout)
        };
        match sent {
            Ok(()) => Ok(()),
            Err(SendTimeoutError::Timeout(_)) => {
                self.recover(shard, "event queue stalled past the shard timeout".into())
            }
            Err(SendTimeoutError::Disconnected(_)) => {
                // The worker's failure report, if it made one, is already
                // in the message channel (it is sent before the worker
                // drops its event receiver) — draining recovers the shard.
                self.drain_worker_msgs();
                if !self.sups[shard].healthy {
                    Err(self.down_error(shard))
                } else if self.sups[shard].epoch != epoch {
                    Ok(()) // the drain already restarted the shard
                } else {
                    self.recover(shard, "worker terminated without a failure report".into())
                }
            }
        }
    }

    /// Admits a dedicated session for `tenant`, running the single-session
    /// algorithm under the configured `(B_A, D_O, U_O, W)`. The admission
    /// envelope is `B_A`. If the join cannot be delivered to any shard,
    /// the admission commit is rolled back — a failed join never holds
    /// budget and never counts as admitted.
    ///
    /// # Errors
    ///
    /// [`CtrlError::Admission`] when the budget or the tenant quota cannot
    /// cover the envelope; [`CtrlError::ShardDown`] when no shard could
    /// take the session.
    pub fn admit(&mut self, tenant: &str) -> Result<u64, CtrlError> {
        self.generation += 1;
        let envelope = self.cfg.dedicated_envelope();
        if let Err(refused) = self.admission.lock().request(tenant, envelope) {
            if let Some(m) = &self.obs {
                m.rejected.inc();
            }
            return Err(CtrlError::Admission(refused));
        }
        let Some(shard) = self.place() else {
            self.admission.lock().rollback(tenant, envelope);
            return Err(CtrlError::ShardDown {
                shard: 0,
                reason: "no healthy shard to place the session on".into(),
            });
        };
        let key = self.next_key;
        let tenant_shared: Arc<str> = tenant.into();
        let join = ReplayEvent::JoinDedicated {
            key,
            tenant: tenant_shared.clone(),
        };
        if let Err(err) = self.dispatch(shard, join) {
            self.admission.lock().rollback(tenant, envelope);
            return Err(err);
        }
        self.next_key += 1;
        self.placements.insert(
            key,
            Placement {
                shard,
                tenant: tenant_shared,
                kind: PlacementKind::Dedicated,
            },
        );
        self.sups[shard].live += 1;
        if let Some(m) = &self.obs {
            m.admitted.inc();
            self.sync_membership_gauges();
        }
        if self.trace.is_some() {
            self.trace_push(
                TraceEvent::at(self.clock, TraceKind::Admit)
                    .shard(shard as u32)
                    .session(key),
            );
        }
        Ok(key)
    }

    /// Admits a pooled group of `size ≥ 2` sessions for `tenant`, running
    /// the phased multi-session algorithm over one shared [`SessionPool`].
    /// The whole group lands on one shard; the admission envelope is the
    /// phased bound `4·B_O`, charged once for the group and rolled back if
    /// the join cannot be delivered.
    ///
    /// [`SessionPool`]: cdba_core::multi::pool::SessionPool
    ///
    /// # Errors
    ///
    /// [`CtrlError::InvalidService`] for `size < 2`, otherwise as
    /// [`ControlPlane::admit`].
    pub fn admit_group(&mut self, tenant: &str, size: usize) -> Result<Vec<u64>, CtrlError> {
        if size < 2 {
            return Err(CtrlError::InvalidService(format!(
                "pooled groups need at least 2 sessions, got {size}"
            )));
        }
        self.generation += 1;
        let envelope = self.cfg.group_envelope();
        if let Err(refused) = self.admission.lock().request(tenant, envelope) {
            if let Some(m) = &self.obs {
                m.rejected.inc();
            }
            return Err(CtrlError::Admission(refused));
        }
        let Some(shard) = self.place() else {
            self.admission.lock().rollback(tenant, envelope);
            return Err(CtrlError::ShardDown {
                shard: 0,
                reason: "no healthy shard to place the group on".into(),
            });
        };
        let group = self.next_group;
        let members: Arc<[u64]> = (0..size as u64).map(|i| self.next_key + i).collect();
        let tenant_shared: Arc<str> = tenant.into();
        let join = ReplayEvent::JoinGroup {
            group,
            tenant: tenant_shared.clone(),
            members: members.clone(),
        };
        if let Err(err) = self.dispatch(shard, join) {
            self.admission.lock().rollback(tenant, envelope);
            return Err(err);
        }
        self.next_group += 1;
        self.next_key += size as u64;
        for &key in members.iter() {
            self.placements.insert(
                key,
                Placement {
                    shard,
                    tenant: tenant_shared.clone(),
                    kind: PlacementKind::Pooled { group },
                },
            );
        }
        self.groups.insert(
            group,
            GroupInfo {
                tenant: tenant_shared,
                live: size,
                envelope,
            },
        );
        self.sups[shard].live += size;
        if let Some(m) = &self.obs {
            m.admitted.inc();
            self.sync_membership_gauges();
        }
        if self.trace.is_some() {
            self.trace_push(
                TraceEvent::at(self.clock, TraceKind::AdmitGroup)
                    .shard(shard as u32)
                    .session(members[0])
                    .detail(format!("{size} members")),
            );
        }
        Ok(members.to_vec())
    }

    /// Begins draining a session out. Its committed envelope is released
    /// once the leave is delivered (a pooled group's only once its last
    /// member leaves); the executor retires the session once its backlog
    /// drains.
    ///
    /// # Errors
    ///
    /// [`CtrlError::UnknownSession`] if the key is not live;
    /// [`CtrlError::ShardDown`] if the session's shard is permanently down
    /// (the session then stays registered and keeps its envelope).
    pub fn leave(&mut self, key: u64) -> Result<(), CtrlError> {
        self.generation += 1;
        let (shard, kind) = {
            let placement = self
                .placements
                .get(key)
                .ok_or(CtrlError::UnknownSession(key))?;
            (placement.shard, placement.kind)
        };
        self.dispatch(shard, ReplayEvent::Leave { key })?;
        let placement = self.placements.remove(key).expect("checked above");
        self.sups[shard].live -= 1;
        match kind {
            PlacementKind::Dedicated => {
                self.admission
                    .lock()
                    .release(&placement.tenant, self.cfg.dedicated_envelope());
            }
            PlacementKind::Pooled { group } => {
                if let Some(info) = self.groups.get_mut(&group) {
                    info.live -= 1;
                    if info.live == 0 {
                        let info = self.groups.remove(&group).expect("present");
                        self.admission.lock().release(&info.tenant, info.envelope);
                    }
                }
            }
        }
        if let Some(m) = &self.obs {
            m.leaves.inc();
            self.sync_membership_gauges();
        }
        if self.trace.is_some() {
            self.trace_push(
                TraceEvent::at(self.clock, TraceKind::Leave)
                    .shard(shard as u32)
                    .session(key),
            );
        }
        Ok(())
    }

    /// Keys a live migration can move out of this service: every live
    /// *dedicated* session, sorted. Pooled members are excluded — a pool
    /// member's dynamics are not separable from its group.
    pub fn migratable_keys(&self) -> Vec<u64> {
        // The table iterates in ascending key order already.
        self.placements
            .iter()
            .filter(|(_, p)| p.kind == PlacementKind::Dedicated)
            .map(|(key, _)| key)
            .collect()
    }

    /// Exports one *dedicated* session as a standalone migration blob and
    /// removes it from this service. The export quiesces the session —
    /// in threaded mode the capture reply arrives only after every
    /// previously dispatched event was applied (the queue is FIFO) — then
    /// captures its slab row bitwise via the binary codec, forgets it
    /// *without* retiring its metrics (they travel inside the blob), and
    /// releases its admission envelope. Feeding the blob to
    /// [`ControlPlane::import_session`] on another service resumes the
    /// session bitwise at its next tick.
    ///
    /// # Errors
    ///
    /// [`CtrlError::UnknownSession`] if the key is not live;
    /// [`CtrlError::InvalidService`] for pooled members;
    /// [`CtrlError::ShardDown`] if the session's shard is down or fails
    /// during the export (the session then stays registered and keeps its
    /// envelope).
    pub fn export_session(&mut self, key: u64) -> Result<Vec<u8>, CtrlError> {
        self.generation += 1;
        let (shard, kind) = {
            let placement = self
                .placements
                .get(key)
                .ok_or(CtrlError::UnknownSession(key))?;
            (placement.shard, placement.kind)
        };
        if kind != PlacementKind::Dedicated {
            return Err(CtrlError::InvalidService(format!(
                "session {key} is pooled; only dedicated sessions can migrate"
            )));
        }
        let cp = self.capture_session(shard, key)?;
        let Some(cp) = cp else {
            // The placement table says dedicated-and-live, so the shard
            // must know the key; a miss means the shard lost state.
            return Err(CtrlError::ShardDown {
                shard,
                reason: format!("shard does not know session {key}"),
            });
        };
        self.dispatch(shard, ReplayEvent::Forget { key })?;
        let placement = self.placements.remove(key).expect("checked above");
        self.sups[shard].live -= 1;
        self.admission
            .lock()
            .release(&placement.tenant, self.cfg.dedicated_envelope());
        // A migration blob is a one-session columnar genesis frame — the
        // same frame format (and decoder) the checkpoint chain uses.
        let mut blob = Vec::new();
        let mut sink = crate::codec::columnar::ColumnSink::new();
        crate::codec::columnar::encode_session_frame(&cp, &mut sink, &mut blob);
        self.sync_membership_gauges();
        if self.trace.is_some() {
            self.trace_push(
                TraceEvent::at(self.clock, TraceKind::Migration)
                    .shard(shard as u32)
                    .session(key)
                    .detail("exported"),
            );
        }
        Ok(blob)
    }

    /// Captures `key`'s checkpoint from its shard. Read-only (like the
    /// snapshot path): not journaled, and the reply synchronizes the
    /// shard. A shard that stalls is restarted and retried once, exactly
    /// like [`ControlPlane::collect_sessions`]; a second miss marks it
    /// permanently down.
    fn capture_session(
        &mut self,
        shard: usize,
        key: u64,
    ) -> Result<Option<crate::shard::SessionCheckpoint>, CtrlError> {
        if let Backend::Inline(states) = &mut self.backend {
            return Ok(states[shard].checkpoint_session(key));
        }
        let timeout = Duration::from_millis(self.cfg.shard_timeout_ms);
        for round in 0..2u32 {
            self.drain_worker_msgs();
            if !self.sups[shard].healthy {
                return Err(self.down_error(shard));
            }
            let epoch = self.sups[shard].epoch;
            let (reply, rx) = bounded(1);
            let sent = {
                let Backend::Threaded { workers } = &self.backend else {
                    unreachable!("inline handled above")
                };
                let worker = workers[shard].as_ref().expect("healthy shard has a worker");
                worker
                    .tx
                    .send_timeout(Event::ExportSession { key, reply }, timeout)
            };
            let failure = match sent {
                Ok(()) => match rx.recv_timeout(timeout) {
                    Ok(cp) => {
                        // The reply proves every previously dispatched
                        // event was applied (the queue is FIFO).
                        self.sups[shard].inflight = 0;
                        return Ok(cp);
                    }
                    Err(_) => "session export stalled past the shard timeout",
                },
                Err(SendTimeoutError::Timeout(_)) => "event queue stalled past the shard timeout",
                Err(SendTimeoutError::Disconnected(_)) => {
                    "worker terminated without a failure report"
                }
            };
            self.drain_worker_msgs();
            if self.sups[shard].epoch == epoch {
                if round == 0 {
                    let _ = self.recover(shard, failure.into());
                } else {
                    self.generation += 1;
                    self.retire_worker(shard);
                    let sup = &mut self.sups[shard];
                    sup.healthy = false;
                    sup.inflight = 0;
                    sup.last_failure = Some("session export failed twice despite recovery".into());
                }
            }
        }
        Err(self.down_error(shard))
    }

    /// Admits a migrated-in dedicated session from a blob produced by
    /// [`ControlPlane::export_session`], under a fresh key (returned).
    /// The session passes admission control like any join — its tenant is
    /// charged the dedicated envelope here, mirroring the release on
    /// export — and resumes bitwise: meter totals, allocator state, and
    /// the draining flag all carry over.
    ///
    /// # Errors
    ///
    /// [`CtrlError::InvalidService`] for a malformed blob or one that is
    /// not a dedicated session; [`CtrlError::InvalidCheckpoint`] for a
    /// blob that decodes structurally but carries an out-of-domain value
    /// (a non-finite or negative float, an impossible tracker shape);
    /// [`CtrlError::Admission`] when the budget
    /// or tenant quota cannot cover the envelope; [`CtrlError::ShardDown`]
    /// when no shard could take the session. Admission is rolled back on
    /// a failed delivery, exactly like [`ControlPlane::admit`].
    pub fn import_session(&mut self, blob: &[u8]) -> Result<u64, CtrlError> {
        // Current exporters emit columnar (v2) one-session frames; the v1
        // session codec is still accepted so blobs exported by an older
        // build keep migrating in.
        let mut cp = match blob.first() {
            Some(&crate::codec::columnar::FRAME_VERSION) => {
                let frame = crate::codec::columnar::parse(blob).map_err(|err| {
                    CtrlError::InvalidCheckpoint {
                        field: crate::codec::columnar::error_field(&err),
                    }
                })?;
                crate::codec::columnar::session_from_frame(&frame)
                    .map_err(|field| CtrlError::InvalidCheckpoint { field })?
            }
            _ => crate::codec::checkpoint::decode_session(blob)
                .map_err(|err| CtrlError::InvalidService(format!("bad migration blob: {err}")))?,
        };
        if cp.dedicated.is_none() || cp.pooled.is_some() {
            return Err(CtrlError::InvalidService(
                "migration blob is not a dedicated session".into(),
            ));
        }
        // Structural decode is not enough: a hostile or corrupted blob can
        // carry NaN/negative floats or impossible tracker shapes that the
        // codec happily round-trips — and even a well-formed session must
        // run *this* service's configuration (the kernel applies one
        // shard-wide parameter block, not per-session config copies).
        // Reject both before admission.
        cp.validate()
            .and_then(|()| cp.conforms(&self.cfg))
            .map_err(|field| CtrlError::InvalidCheckpoint { field })?;
        self.generation += 1;
        let envelope = self.cfg.dedicated_envelope();
        let tenant = cp.tenant.clone();
        self.admission
            .lock()
            .request(&tenant, envelope)
            .map_err(CtrlError::Admission)?;
        let Some(shard) = self.place() else {
            self.admission.lock().rollback(&tenant, envelope);
            return Err(CtrlError::ShardDown {
                shard: 0,
                reason: "no healthy shard to place the session on".into(),
            });
        };
        let key = self.next_key;
        cp.key = key;
        let import = ReplayEvent::Import { cp: Arc::new(cp) };
        if let Err(err) = self.dispatch(shard, import) {
            self.admission.lock().rollback(&tenant, envelope);
            return Err(err);
        }
        self.next_key += 1;
        self.placements.insert(
            key,
            Placement {
                shard,
                tenant,
                kind: PlacementKind::Dedicated,
            },
        );
        self.sups[shard].live += 1;
        self.sync_membership_gauges();
        if self.trace.is_some() {
            self.trace_push(
                TraceEvent::at(self.clock, TraceKind::Migration)
                    .shard(shard as u32)
                    .session(key)
                    .detail("imported"),
            );
        }
        Ok(key)
    }

    /// Advances the whole service by one tick. `arrivals` lists the bits
    /// each named session submits this tick (unlisted live sessions submit
    /// zero). Every healthy shard ticks, listed or not, so session clocks
    /// stay in lockstep.
    ///
    /// # Errors
    ///
    /// Validation errors — [`CtrlError::InvalidArrival`] for non-finite or
    /// negative bits, [`CtrlError::UnknownSession`] for a key that is not
    /// live, [`CtrlError::DuplicateArrival`] for a key listed twice, and
    /// [`CtrlError::ShardDown`] for an arrival targeting a dead shard —
    /// are raised before *anything* advances. A shard failure during
    /// dispatch that cannot be recovered also returns
    /// [`CtrlError::ShardDown`], but the remaining healthy shards (and the
    /// service clock) still advance.
    pub fn tick(&mut self, arrivals: &[(u64, f64)]) -> Result<(), CtrlError> {
        for route in &mut self.routes {
            route.clear();
        }
        self.seen_stamp += 1;
        let stamp = self.seen_stamp;
        if self.seen_at.len() < self.next_key as usize {
            self.seen_at.resize(self.next_key as usize, 0);
        }
        // With one shard and the inline backend, the validated batch *is*
        // shard 0's route (same entries, same order), so the copy into the
        // route buffer is skipped and the shard ticks straight from the
        // caller's slice.
        let passthrough = self.cfg.shards == 1 && matches!(self.backend, Backend::Inline(_));
        for &(key, bits) in arrivals {
            crate::validate_arrival(key, bits)?;
            let shard = self
                .placements
                .shard_of(key)
                .ok_or(CtrlError::UnknownSession(key))?;
            if !self.sups[shard].healthy {
                return Err(self.down_error(shard));
            }
            // A live placement proves `key < next_key`, so it indexes
            // `seen_at` after the resize above.
            let seen = &mut self.seen_at[key as usize];
            if *seen == stamp {
                return Err(CtrlError::DuplicateArrival(key));
            }
            *seen = stamp;
            if !passthrough {
                self.routes[shard].push((key, bits));
            }
        }
        self.generation += 1;
        // Inline fallback: run every shard's tick on this thread straight
        // from the reused route buffers — no events, no journal, no
        // allocations on the hot path. Adaptive mode times the loop and
        // escalates to workers once the smoothed cost warrants them.
        if let Backend::Inline(states) = &mut self.backend {
            let timer = self.adaptive.as_ref().map(|_| Instant::now());
            if passthrough {
                states[0].tick(arrivals);
            } else {
                for (state, route) in states.iter_mut().zip(&self.routes) {
                    state.tick(route);
                }
            }
            self.clock += 1;
            if let Some(m) = &self.obs {
                m.ticks.inc();
                m.arrivals.add(arrivals.len() as u64);
            }
            if let (Some(start), Some(adaptive)) = (timer, self.adaptive.as_mut()) {
                adaptive.observe(start.elapsed().as_nanos() as f64);
                if adaptive.should_escalate(self.cfg.shards) {
                    self.escalate_to_threaded();
                }
            }
            return Ok(());
        }
        // Threaded: fan the batches out to every healthy shard. Sends are
        // non-blocking in the steady state — the pipeline-depth gate in
        // `dispatch_tick` keeps each worker queue far below its capacity —
        // so tick N+1's dispatch overlaps tick N's execution on every
        // shard at once, up to the configured depth.
        let mut first_err = None;
        for shard in 0..self.cfg.shards {
            if !self.sups[shard].healthy {
                // Validated above: no arrivals target a dead shard.
                self.routes[shard].clear();
                continue;
            }
            if let Err(err) = self.dispatch_tick(shard) {
                first_err.get_or_insert(err);
            }
        }
        self.clock += 1;
        if let Some(m) = &self.obs {
            m.ticks.inc();
            m.arrivals.add(arrivals.len() as u64);
        }
        match first_err {
            None => Ok(()),
            Some(err) => Err(err),
        }
    }

    /// Dispatches one shard's tick batch: waits for pipeline capacity,
    /// journals, and delivers. The route buffer keeps its capacity; the
    /// batch payload is one shared allocation (none at all when empty).
    fn dispatch_tick(&mut self, shard: usize) -> Result<(), CtrlError> {
        self.await_pipeline_slot(shard)?;
        if !self.sups[shard].healthy {
            return Err(self.down_error(shard));
        }
        let batch: Arc<[(u64, f64)]> = if self.routes[shard].is_empty() {
            self.empty_batch.clone()
        } else {
            let batch = self.routes[shard].as_slice().into();
            self.routes[shard].clear();
            batch
        };
        let epoch = self.sups[shard].epoch;
        let delivered = self.dispatch(shard, ReplayEvent::Tick { arrivals: batch });
        // A recovery inside `dispatch` replayed the journaled tick on this
        // thread; only a delivery to the same worker incarnation will ack.
        if delivered.is_ok() && self.sups[shard].epoch == epoch {
            self.sups[shard].inflight += 1;
        }
        delivered
    }

    /// Collects every shard's session metrics. Inline shards report
    /// directly; threaded shards are collected fan-out/fan-in — one
    /// `Collect` is broadcast to every healthy shard, then replies are
    /// gathered off a shared channel as they land, bounded by the shard
    /// timeout. A shard that misses the deadline is restarted and retried
    /// once; a second miss marks it permanently down. Collection therefore
    /// never blocks past `2 × shard_timeout_ms` and never errors — lost
    /// shards degrade to `health: down`, exactly like the tick path.
    fn collect_sessions(&mut self) -> Vec<SessionMetrics> {
        let mut sessions = Vec::new();
        if let Backend::Inline(states) = &mut self.backend {
            for state in states.iter_mut() {
                let report = state.report();
                sessions.extend(report.retired.iter().cloned());
                sessions.extend(report.live);
            }
            return sessions;
        }
        self.drain_worker_msgs();
        let timeout = Duration::from_millis(self.cfg.shard_timeout_ms);
        let mut collected = vec![false; self.cfg.shards];
        for round in 0..2 {
            // Fan-out: broadcast Collect to every healthy uncollected
            // shard on one shared reply channel.
            let (reply, rx) = unbounded();
            let mut pending: Vec<(usize, u64)> = Vec::new();
            for shard in 0..self.cfg.shards {
                if collected[shard] || !self.sups[shard].healthy {
                    continue;
                }
                let epoch = self.sups[shard].epoch;
                let sent = {
                    let Backend::Threaded { workers } = &self.backend else {
                        unreachable!("inline handled above")
                    };
                    let worker = workers[shard].as_ref().expect("healthy shard has a worker");
                    worker.tx.send_timeout(
                        Event::Collect {
                            reply: reply.clone(),
                        },
                        timeout,
                    )
                };
                match sent {
                    Ok(()) => pending.push((shard, epoch)),
                    Err(SendTimeoutError::Timeout(_)) => {
                        let _ = self
                            .recover(shard, "event queue stalled past the shard timeout".into());
                    }
                    Err(SendTimeoutError::Disconnected(_)) => {
                        // The worker's failure report, if any, is already in
                        // the message channel; draining recovers the shard
                        // for the next round.
                        self.drain_worker_msgs();
                        if self.sups[shard].epoch == epoch {
                            let _ = self.recover(
                                shard,
                                "worker terminated without a failure report".into(),
                            );
                        }
                    }
                }
            }
            drop(reply);
            // Fan-in: take replies as they land until every pending shard
            // reported or the deadline passes.
            let deadline = std::time::Instant::now() + timeout;
            while !pending.is_empty() {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let Ok(report) = rx.recv_timeout(remaining) else {
                    break; // timeout, or every pending worker died
                };
                let Some(at) = pending.iter().position(|&(shard, epoch)| {
                    shard as u64 == report.shard && epoch == report.epoch
                }) else {
                    continue; // a superseded worker's stale reply
                };
                let (shard, _) = pending.swap_remove(at);
                collected[shard] = true;
                // The reply proves every previously dispatched event was
                // applied (the queue is FIFO).
                self.sups[shard].inflight = 0;
                sessions.extend(report.retired.iter().cloned());
                sessions.extend(report.live);
            }
            if pending.is_empty() {
                break;
            }
            // Stragglers: restart and retry on the first round; give up on
            // the second — stop burning restarts on a shard that cannot
            // even report.
            for (shard, epoch) in pending {
                self.drain_worker_msgs();
                if self.sups[shard].epoch != epoch {
                    continue; // the drain already handled a reported failure
                }
                if round == 0 {
                    let _ = self.recover(
                        shard,
                        "snapshot reply stalled past the shard timeout".into(),
                    );
                } else {
                    self.generation += 1;
                    self.retire_worker(shard);
                    let sup = &mut self.sups[shard];
                    sup.healthy = false;
                    sup.inflight = 0;
                    sup.last_failure = Some("snapshot failed twice despite recovery".into());
                }
            }
        }
        sessions
    }

    /// Collects a full metrics snapshot. In threaded mode this
    /// synchronizes with every healthy shard (the reply arrives only after
    /// all previously sent events were applied) via a bounded fan-out/
    /// fan-in; shards already marked down are skipped, and a shard that
    /// stalls past the timeout twice is marked down rather than wedging
    /// the caller — its loss shows up in [`ServiceSnapshot::health`]
    /// rather than as an error.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` is kept so recovery-related
    /// failure modes can surface without an API break.
    pub fn snapshot(&mut self) -> Result<ServiceSnapshot, CtrlError> {
        Ok(self.snapshot_shared()?.as_ref().clone())
    }

    /// Like [`ControlPlane::snapshot`], but returns a shared handle and
    /// caches the assembled snapshot: repeated calls without an
    /// intervening mutation (admit, leave, tick, recovery) are free — the
    /// cache is stamped with a generation counter that every mutating
    /// operation bumps.
    ///
    /// # Errors
    ///
    /// As [`ControlPlane::snapshot`].
    pub fn snapshot_shared(&mut self) -> Result<Arc<ServiceSnapshot>, CtrlError> {
        if let Some((stamp, cached)) = &self.snapshot_cache {
            if *stamp == self.generation {
                return Ok(cached.clone());
            }
        }
        let sessions = self.collect_sessions();
        let (admitted, rejected) = {
            let admission = self.admission.lock();
            (admission.admitted(), admission.rejected())
        };
        let health = self
            .sups
            .iter()
            .enumerate()
            .map(|(shard, sup)| ShardHealth {
                shard: shard as u64,
                healthy: sup.healthy,
                restarts: sup.restarts,
                last_failure: sup.last_failure.clone(),
            })
            .collect();
        let snapshot = Arc::new(ServiceSnapshot::assemble(
            SnapshotCounters {
                ticks: self.clock,
                shards: self.cfg.shards as u64,
                admitted,
                rejected,
                restarts: self.restarts(),
                events_replayed: self.events_replayed,
            },
            health,
            sessions,
        ));
        // The fold above is placement-invariant and bitwise-deterministic,
        // so these gauges are too — a clean and a faulted run expose the
        // same values once recovered.
        if let Some(m) = &self.obs {
            m.changes.set(snapshot.global.changes as f64);
            m.signalling_cost.set(snapshot.global.signalling_cost);
            m.bandwidth_cost.set(snapshot.global.bandwidth_cost);
            m.max_delay.set(snapshot.global.max_delay as f64);
            m.snapshot_tick.set(snapshot.ticks as f64);
        }
        // Collection may itself have recovered or downed shards (bumping
        // the generation); stamp with the value the assembly observed.
        self.snapshot_cache = Some((self.generation, snapshot.clone()));
        Ok(snapshot)
    }

    /// Stops the executor. Equivalent to dropping, but explicit: worker
    /// threads (including superseded ones) are joined before this returns.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        if let Backend::Threaded { workers } = &mut self.backend {
            for slot in workers.iter_mut() {
                if let Some(worker) = slot.take() {
                    // The cancel flag covers a worker whose queue is too
                    // full to take the shutdown event.
                    worker.cancel.store(true, Ordering::Release);
                    let _ = worker
                        .tx
                        .send_timeout(Event::Shutdown, Duration::from_millis(10));
                    drop(worker.tx);
                    self.graveyard.push(worker.handle);
                }
            }
        }
        for handle in self.graveyard.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ControlPlane {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;

    fn config(shards: usize, exec: ExecMode) -> ServiceConfig {
        ServiceConfig::builder(1024.0)
            .session_b_max(16.0)
            .group_b_o(8.0)
            .offline_delay(4)
            .window(4)
            .shards(shards)
            .exec(exec)
            .build()
            .unwrap()
    }

    fn config_k(shards: usize, exec: ExecMode, threads: usize) -> ServiceConfig {
        ServiceConfig::builder(1024.0)
            .session_b_max(16.0)
            .group_b_o(8.0)
            .offline_delay(4)
            .window(4)
            .shards(shards)
            .exec(exec)
            .kernel_threads(threads)
            .build()
            .unwrap()
    }

    /// A deterministic churn scenario driven against any service.
    fn run_scenario(mut service: ControlPlane) -> ServiceSnapshot {
        let mut live: Vec<u64> = Vec::new();
        for _ in 0..6 {
            live.push(service.admit("acme").unwrap());
        }
        live.extend(service.admit_group("globex", 3).unwrap());
        for t in 0..200u64 {
            if t == 60 {
                let gone = live.remove(0);
                service.leave(gone).unwrap();
                live.push(service.admit("initech").unwrap());
            }
            let arrivals: Vec<(u64, f64)> = live
                .iter()
                .enumerate()
                .map(|(i, &key)| (key, ((t + i as u64) % 4) as f64))
                .collect();
            service.tick(&arrivals).unwrap();
        }
        let snapshot = service.snapshot().unwrap();
        service.shutdown();
        snapshot
    }

    #[test]
    fn inline_and_threaded_agree_exactly() {
        let a = run_scenario(ControlPlane::new(config(1, ExecMode::Inline)));
        let b = run_scenario(ControlPlane::new(config(1, ExecMode::Threaded)));
        assert_eq!(a, b, "same shard count: full snapshots agree");
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let one = run_scenario(ControlPlane::new(config(1, ExecMode::Inline)));
        let four = run_scenario(ControlPlane::new(config(4, ExecMode::Threaded)));
        assert_eq!(one.invariant_view(), four.invariant_view());
        assert!(one.global.changes > 0);
        assert!(one.global.total_served > 0.0);
    }

    #[test]
    fn admission_rejections_do_not_allocate() {
        let cfg = ServiceConfig::builder(32.0)
            .session_b_max(16.0)
            .exec(ExecMode::Inline)
            .build()
            .unwrap();
        let mut service = ControlPlane::new(cfg);
        let a = service.admit("acme").unwrap();
        let _b = service.admit("acme").unwrap();
        assert!(matches!(
            service.admit("acme"),
            Err(CtrlError::Admission(_))
        ));
        assert_eq!(service.live_sessions(), 2);
        service.leave(a).unwrap();
        assert!(service.admit("acme").is_ok());
        let snap = service.snapshot().unwrap();
        assert_eq!(snap.admitted, 3);
        assert_eq!(snap.rejected, 1);
    }

    #[test]
    fn group_envelope_released_on_last_leave() {
        let cfg = ServiceConfig::builder(32.0)
            .group_b_o(8.0) // envelope 32: one group fills the budget
            .exec(ExecMode::Inline)
            .build()
            .unwrap();
        let mut service = ControlPlane::new(cfg);
        let members = service.admit_group("acme", 2).unwrap();
        assert!(service.admit_group("acme", 2).is_err());
        service.leave(members[0]).unwrap();
        assert!(service.admit_group("acme", 2).is_err(), "group still live");
        service.leave(members[1]).unwrap();
        assert!(service.admit_group("acme", 2).is_ok());
    }

    #[test]
    fn unknown_sessions_error() {
        let mut service = ControlPlane::new(config(1, ExecMode::Inline));
        assert!(matches!(
            service.leave(42),
            Err(CtrlError::UnknownSession(42))
        ));
        assert!(matches!(
            service.tick(&[(42, 1.0)]),
            Err(CtrlError::UnknownSession(42))
        ));
    }

    #[test]
    fn left_sessions_reject_arrivals() {
        let mut service = ControlPlane::new(config(2, ExecMode::Inline));
        let key = service.admit("acme").unwrap();
        service.tick(&[(key, 2.0)]).unwrap();
        service.leave(key).unwrap();
        assert!(matches!(
            service.tick(&[(key, 2.0)]),
            Err(CtrlError::UnknownSession(_))
        ));
    }

    #[test]
    fn malformed_arrivals_are_rejected_before_anything_advances() {
        let mut service = ControlPlane::new(config(1, ExecMode::Inline));
        let a = service.admit("acme").unwrap();
        let b = service.admit("acme").unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            assert!(matches!(
                service.tick(&[(a, 1.0), (b, bad)]),
                Err(CtrlError::InvalidArrival { session, bits })
                    if session == b && (bits.is_nan() == bad.is_nan() && (bits == bad || bad.is_nan()))
            ));
        }
        assert!(matches!(
            service.tick(&[(a, 1.0), (a, 2.0)]),
            Err(CtrlError::DuplicateArrival(key)) if key == a
        ));
        // Nothing advanced: the clock is untouched and a clean tick works.
        assert_eq!(service.ticks(), 0);
        service.tick(&[(a, 1.0), (b, 0.0)]).unwrap();
        assert_eq!(service.ticks(), 1);
    }

    /// A session exported from one control plane and imported into
    /// another continues bitwise — the core guarantee behind fleet live
    /// migration — and the admission budget moves with it.
    #[test]
    fn export_import_moves_a_session_between_services_bitwise() {
        let mut src = ControlPlane::new(config(1, ExecMode::Inline));
        let mut dst = ControlPlane::new(config(1, ExecMode::Inline));
        let mut twin = ControlPlane::new(config(1, ExecMode::Inline));

        let key = src.admit("acme").unwrap();
        let group = src.admit_group("globex", 2).unwrap();
        let twin_key = twin.admit("acme").unwrap();
        for t in 0..40u64 {
            src.tick(&[(key, (t % 5) as f64)]).unwrap();
            twin.tick(&[(twin_key, (t % 5) as f64)]).unwrap();
        }

        // Pooled members refuse to migrate; unknown keys error.
        assert!(matches!(
            src.export_session(group[0]),
            Err(CtrlError::InvalidService(_))
        ));
        assert!(matches!(
            src.export_session(999),
            Err(CtrlError::UnknownSession(999))
        ));

        let src_budget_before = src.available_budget();
        let dst_budget_before = dst.available_budget();
        let blob = src.export_session(key).unwrap();
        let moved = dst.import_session(&blob).unwrap();

        // The envelope moved: released at the source, charged at the
        // target.
        let envelope = src.config().dedicated_envelope();
        assert_eq!(src.available_budget(), src_budget_before + envelope);
        assert_eq!(dst.available_budget(), dst_budget_before - envelope);
        assert!(src.migratable_keys().is_empty());
        assert_eq!(dst.migratable_keys(), vec![moved]);

        // The source neither serves nor reports the session any more.
        assert!(matches!(
            src.tick(&[(key, 1.0)]),
            Err(CtrlError::UnknownSession(_))
        ));
        let src_snap = src.snapshot().unwrap();
        assert!(src_snap.sessions.iter().all(|m| m.session != key));

        // The moved session and its undisturbed twin agree bitwise after
        // identical continuations.
        for t in 0..25u64 {
            dst.tick(&[(moved, ((t + 1) % 4) as f64)]).unwrap();
            twin.tick(&[(twin_key, ((t + 1) % 4) as f64)]).unwrap();
        }
        let moved_m = dst
            .snapshot()
            .unwrap()
            .sessions
            .iter()
            .find(|m| m.session == moved)
            .cloned()
            .unwrap();
        let twin_m = twin
            .snapshot()
            .unwrap()
            .sessions
            .iter()
            .find(|m| m.session == twin_key)
            .cloned()
            .unwrap();
        assert_eq!(
            SessionMetrics {
                session: twin_key,
                ..moved_m
            },
            twin_m,
            "migrated session diverged from its single-service twin"
        );
    }

    /// The threaded export path (quiesce over the worker channel) emits
    /// the same blob as the inline path after the same history.
    #[test]
    fn threaded_export_matches_inline_export() {
        let run = |exec: ExecMode| {
            let mut plane = ControlPlane::new(config(2, exec));
            let key = plane.admit("acme").unwrap();
            let other = plane.admit("acme").unwrap();
            for t in 0..30u64 {
                plane
                    .tick(&[(key, (t % 3) as f64), (other, ((t + 1) % 3) as f64)])
                    .unwrap();
            }
            let blob = plane.export_session(key).unwrap();
            plane.shutdown();
            blob
        };
        assert_eq!(run(ExecMode::Inline), run(ExecMode::Threaded));
    }

    /// Escalating from the inline to the threaded backend mid-run is
    /// invisible in results: the full snapshot (not just the invariant
    /// view) matches a pure inline run of the same scenario.
    #[test]
    fn forced_escalation_is_bitwise_invisible() {
        let baseline = run_scenario(ControlPlane::new(config(2, ExecMode::Inline)));
        let mut service = ControlPlane::new(config(2, ExecMode::Adaptive));
        assert!(!service.is_threaded(), "adaptive starts inline");
        let mut live: Vec<u64> = Vec::new();
        for _ in 0..6 {
            live.push(service.admit("acme").unwrap());
        }
        live.extend(service.admit_group("globex", 3).unwrap());
        for t in 0..200u64 {
            if t == 60 {
                let gone = live.remove(0);
                service.leave(gone).unwrap();
                live.push(service.admit("initech").unwrap());
            }
            if t == 100 {
                service.escalate_to_threaded();
                assert!(service.is_threaded(), "escalation switched backends");
            }
            let arrivals: Vec<(u64, f64)> = live
                .iter()
                .enumerate()
                .map(|(i, &key)| (key, ((t + i as u64) % 4) as f64))
                .collect();
            service.tick(&arrivals).unwrap();
        }
        let snapshot = service.snapshot().unwrap();
        service.shutdown();
        assert_eq!(baseline, snapshot, "escalation changed results");
    }

    /// The kernel-thread knob is bitwise-invisible end to end on a clean
    /// run: full snapshots (not just the invariant view) agree across
    /// `kernel_threads` 1/2/4 × inline/threaded exec.
    #[test]
    fn kernel_threads_matrix_agrees_on_clean_runs() {
        let baseline = run_scenario(ControlPlane::new(config(2, ExecMode::Inline)));
        for threads in [2usize, 4] {
            for exec in [ExecMode::Inline, ExecMode::Threaded] {
                let snap = run_scenario(ControlPlane::new(config_k(2, exec, threads)));
                assert_eq!(
                    baseline, snap,
                    "clean run diverged at {threads} kernel threads ({exec:?})"
                );
            }
        }
    }

    /// A shard kill and recovery replay cannot observe the thread count:
    /// the recovered run's invariant view is identical at 1/2/4 kernel
    /// threads.
    #[test]
    fn kernel_threads_matrix_agrees_across_shard_kill() {
        let run = |threads: usize| {
            let cfg = ServiceConfig::builder(1024.0)
                .session_b_max(16.0)
                .group_b_o(8.0)
                .offline_delay(4)
                .window(4)
                .shards(2)
                .exec(ExecMode::Threaded)
                .checkpoint_every(8)
                .fault(FaultPlan::kill(0, 50))
                .kernel_threads(threads)
                .build()
                .unwrap();
            run_scenario(ControlPlane::new(cfg)).invariant_view()
        };
        let base = run(1);
        assert_eq!(base, run(2), "kill recovery diverged at 2 kernel threads");
        assert_eq!(base, run(4), "kill recovery diverged at 4 kernel threads");
    }

    /// Drain-and-migrate runs cannot observe the thread count either: a
    /// session exported mid-run and imported into a second plane while
    /// another session drains out leaves both planes' invariant views
    /// identical at 1/2/4 kernel threads.
    #[test]
    fn kernel_threads_matrix_agrees_across_drain_and_migrate() {
        let tick_all = |plane: &mut ControlPlane, live: &[u64], t: u64| {
            let arrivals: Vec<(u64, f64)> = live
                .iter()
                .enumerate()
                .map(|(i, &key)| (key, ((t + i as u64) % 4) as f64))
                .collect();
            plane.tick(&arrivals).unwrap();
        };
        let run = |threads: usize| {
            let mut src = ControlPlane::new(config_k(1, ExecMode::Inline, threads));
            let mut dst = ControlPlane::new(config_k(1, ExecMode::Inline, threads));
            let keys: Vec<u64> = (0..4).map(|_| src.admit("acme").unwrap()).collect();
            let group = src.admit_group("globex", 3).unwrap();
            let mut live: Vec<u64> = keys.iter().chain(group.iter()).copied().collect();
            for t in 0..60u64 {
                tick_all(&mut src, &live, t);
            }
            // One session drains out while another migrates over.
            src.leave(keys[0]).unwrap();
            live.retain(|&k| k != keys[0]);
            let blob = src.export_session(keys[1]).unwrap();
            let moved = dst.import_session(&blob).unwrap();
            live.retain(|&k| k != keys[1]);
            for t in 60..120u64 {
                tick_all(&mut src, &live, t);
                tick_all(&mut dst, &[moved], t);
            }
            let views = (
                src.snapshot().unwrap().invariant_view(),
                dst.snapshot().unwrap().invariant_view(),
            );
            src.shutdown();
            dst.shutdown();
            views
        };
        let base = run(1);
        assert_eq!(
            base,
            run(2),
            "drain-and-migrate diverged at 2 kernel threads"
        );
        assert_eq!(
            base,
            run(4),
            "drain-and-migrate diverged at 4 kernel threads"
        );
    }

    /// A single shard gains nothing from a worker thread, so adaptive mode
    /// never escalates there regardless of measured cost.
    #[test]
    fn adaptive_single_shard_never_escalates() {
        let mut service = ControlPlane::new(config(1, ExecMode::Adaptive));
        let key = service.admit("acme").unwrap();
        for t in 0..100u64 {
            service.tick(&[(key, (t % 3) as f64)]).unwrap();
        }
        assert!(!service.is_threaded());
    }

    #[test]
    fn placement_prefers_least_loaded_shard() {
        let mut service = ControlPlane::new(config(4, ExecMode::Inline));
        let keys: Vec<u64> = (0..4).map(|_| service.admit("acme").unwrap()).collect();
        // One session per shard so far (ties broken by index).
        service.leave(keys[2]).unwrap();
        // Shard 2 is now emptiest; the next session must land there.
        let replacement = service.admit("acme").unwrap();
        // And at one-per-shard again, ties go to the lowest index.
        let next = service.admit("acme").unwrap();
        let snap = service.snapshot().unwrap();
        let shard_of = |key: u64| {
            snap.sessions
                .iter()
                .find(|m| m.session == key)
                .map(|m| m.shard)
                .unwrap()
        };
        assert_eq!(shard_of(replacement), 2);
        assert_eq!(shard_of(next), 0);
    }
}
