//! Validated control-plane configuration.
//!
//! Follows the repo's `C-VALIDATE` convention: every parameter is checked
//! once, in [`ServiceConfigBuilder::build`], so the executor never
//! re-validates. The per-session parameters are exactly the paper's —
//! dedicated sessions run the §2 single-session algorithm under
//! `(B_A, D_O, U_O, W)`, pooled groups run the §3.1 phased algorithm under
//! `(B_O, D_O)` — and the admission envelopes are the theorems' bandwidth
//! bounds for those configurations.

use crate::fault::FaultPlan;
use crate::CtrlError;
use cdba_analysis::cost::CostModel;
use cdba_core::config::{MultiConfig, SingleConfig};

/// How the shard executor runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// All shards execute on the calling thread, in shard order — the
    /// deterministic fallback. Results are identical to [`ExecMode::Threaded`]
    /// (sessions never interact across shards), so this mode exists to make
    /// that claim cheap to check and to debug without thread interleaving.
    Inline,
    /// One worker thread per shard, fed over bounded channels.
    Threaded,
    /// Starts inline and escalates — once, irreversibly — to the threaded
    /// backend when an EWMA of the measured per-tick cost says the work is
    /// heavy enough to pay for channel hops and thread wakeups. On a
    /// single-core host (or with one shard) it never escalates. The switch
    /// is invisible in results: shard state moves into the workers bitwise,
    /// so snapshots' placement-invariant parts are identical to both pure
    /// modes throughout.
    Adaptive,
}

/// Full configuration of a [`crate::service::ControlPlane`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Aggregate bandwidth budget `B_A` admission is held to.
    pub budget: f64,
    /// Default per-tenant quota (overridable per tenant).
    pub default_quota: f64,
    /// Per-dedicated-session maximum bandwidth (a power of two).
    pub session_b_max: f64,
    /// Per-group offline budget `B_O` for pooled sessions.
    pub group_b_o: f64,
    /// Offline delay bound `D_O` in ticks.
    pub d_o: usize,
    /// Offline utilization bound `U_O ∈ (0, 1]`.
    pub u_o: f64,
    /// Utilization window `W ≥ D_O` in ticks (also the meter's window).
    pub w: usize,
    /// Number of worker shards (≥ 1).
    pub shards: usize,
    /// Prices for bandwidth and signalling.
    pub cost: CostModel,
    /// Execution backend.
    pub exec: ExecMode,
    /// Ticks between periodic shard checkpoints (threaded mode). `0`
    /// disables checkpointing *and* the in-driver journal, so a failed
    /// shard cannot be recovered and is marked down on its first fault.
    pub checkpoint_every: u64,
    /// Genesis cadence of the columnar checkpoint chain: every
    /// `checkpoint_full_every`-th checkpoint is a full-population genesis
    /// frame; the frames between carry only sessions dirtied since the
    /// previous frame. `1` makes every checkpoint a genesis (no
    /// incremental chain). Bounds both the driver's retained chain and
    /// the restore replay to `checkpoint_full_every` frames.
    pub checkpoint_full_every: u64,
    /// How many times the supervisor restarts one shard before declaring
    /// it permanently down.
    pub max_restarts: u32,
    /// How long the driver waits on an unresponsive shard (a full event
    /// queue, a missing tick ack, or a missing snapshot reply) before
    /// restarting it.
    pub shard_timeout_ms: u64,
    /// How many ticks the driver may dispatch to a shard beyond the last
    /// one the shard acknowledged (threaded mode). Depth 1 waits for every
    /// tick before dispatching the next; deeper pipelines overlap tick
    /// `N+1`'s dispatch with tick `N`'s execution. Must be ≥ 1.
    pub pipeline_depth: u32,
    /// How many threads sweep one shard's slot range inside a tick (≥ 1).
    /// `1` runs the kernel sequentially on the driving thread; higher
    /// values split the range into that many fixed chunks swept by a
    /// reusable per-shard worker pool with a fixed-order reduction, so
    /// results are bitwise-identical across thread counts. Applies to
    /// every execution backend (each threaded shard worker drives its own
    /// kernel pool).
    pub kernel_threads: usize,
    /// An injected fault for the supervision test harness; `None` in
    /// production. Threaded mode only.
    pub fault: Option<FaultPlan>,
}

impl ServiceConfig {
    /// Starts building a configuration with aggregate budget `budget`.
    pub fn builder(budget: f64) -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            budget,
            default_quota: budget,
            session_b_max: 16.0,
            group_b_o: 8.0,
            d_o: 8,
            u_o: 0.5,
            w: 16,
            shards: 1,
            cost: CostModel::with_change_price(1.0),
            exec: ExecMode::Threaded,
            checkpoint_every: 64,
            checkpoint_full_every: 8,
            max_restarts: 3,
            shard_timeout_ms: 2000,
            pipeline_depth: 4,
            kernel_threads: 1,
            fault: None,
        }
    }

    /// The admission envelope of one dedicated session: its `B_A`.
    pub fn dedicated_envelope(&self) -> f64 {
        self.session_b_max
    }

    /// The admission envelope of one pooled group: the phased algorithm's
    /// `4·B_O` total-bandwidth bound (Theorem 14).
    pub fn group_envelope(&self) -> f64 {
        4.0 * self.group_b_o
    }

    /// The validated single-session configuration dedicated sessions run.
    pub fn single_config(&self) -> SingleConfig {
        SingleConfig::builder(self.session_b_max)
            .offline_delay(self.d_o)
            .offline_utilization(self.u_o)
            .window(self.w)
            .build()
            .expect("validated at ServiceConfig construction")
    }

    /// The validated multi-session configuration pooled groups run.
    pub fn multi_config(&self) -> MultiConfig {
        MultiConfig::new(2, self.group_b_o, self.d_o)
            .expect("validated at ServiceConfig construction")
    }
}

/// Builder for [`ServiceConfig`].
#[derive(Debug, Clone)]
pub struct ServiceConfigBuilder {
    budget: f64,
    default_quota: f64,
    session_b_max: f64,
    group_b_o: f64,
    d_o: usize,
    u_o: f64,
    w: usize,
    shards: usize,
    cost: CostModel,
    exec: ExecMode,
    checkpoint_every: u64,
    checkpoint_full_every: u64,
    max_restarts: u32,
    shard_timeout_ms: u64,
    pipeline_depth: u32,
    kernel_threads: usize,
    fault: Option<FaultPlan>,
}

impl ServiceConfigBuilder {
    /// Sets the default per-tenant quota. Defaults to the full budget.
    pub fn default_quota(mut self, quota: f64) -> Self {
        self.default_quota = quota;
        self
    }

    /// Sets the per-dedicated-session `B_A` (a power of two). Default 16.
    pub fn session_b_max(mut self, b: f64) -> Self {
        self.session_b_max = b;
        self
    }

    /// Sets the per-group `B_O`. Default 8.
    pub fn group_b_o(mut self, b: f64) -> Self {
        self.group_b_o = b;
        self
    }

    /// Sets the offline delay bound `D_O` (ticks). Default 8.
    pub fn offline_delay(mut self, d_o: usize) -> Self {
        self.d_o = d_o;
        self
    }

    /// Sets the offline utilization bound `U_O`. Default 0.5.
    pub fn offline_utilization(mut self, u_o: f64) -> Self {
        self.u_o = u_o;
        self
    }

    /// Sets the utilization window `W` (ticks). Default 16.
    pub fn window(mut self, w: usize) -> Self {
        self.w = w;
        self
    }

    /// Sets the shard count. Default 1.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the cost model. Default: unit bandwidth price, change price 1.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the execution backend. Default [`ExecMode::Threaded`].
    pub fn exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the shard checkpoint period in ticks (`0` disables recovery).
    /// Default 64.
    pub fn checkpoint_every(mut self, ticks: u64) -> Self {
        self.checkpoint_every = ticks;
        self
    }

    /// Sets how many checkpoints pass between full genesis frames (the
    /// ones in between are dirty-only incrementals). `1` disables
    /// incremental checkpointing. Default 8.
    pub fn checkpoint_full_every(mut self, frames: u64) -> Self {
        self.checkpoint_full_every = frames;
        self
    }

    /// Sets the per-shard restart budget. Default 3.
    pub fn max_restarts(mut self, restarts: u32) -> Self {
        self.max_restarts = restarts;
        self
    }

    /// Sets the unresponsive-shard timeout in milliseconds. Default 2000.
    pub fn shard_timeout_ms(mut self, millis: u64) -> Self {
        self.shard_timeout_ms = millis;
        self
    }

    /// Sets how many unacknowledged ticks may be in flight per shard
    /// (threaded mode). Default 4.
    pub fn pipeline_depth(mut self, depth: u32) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Sets how many threads sweep one shard's slot range inside a tick.
    /// Default 1 (sequential kernel).
    pub fn kernel_threads(mut self, threads: usize) -> Self {
        self.kernel_threads = threads;
        self
    }

    /// Injects a fault plan for the supervision test harness. Default none.
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// [`CtrlError::Config`] wraps the violated algorithm-parameter
    /// constraint; [`CtrlError::InvalidService`] reports service-level ones
    /// (budget, quota, shard count, prices).
    pub fn build(self) -> Result<ServiceConfig, CtrlError> {
        if !self.budget.is_finite() || self.budget <= 0.0 {
            return Err(CtrlError::InvalidService(format!(
                "budget {} must be positive and finite",
                self.budget
            )));
        }
        if !self.default_quota.is_finite() || self.default_quota <= 0.0 {
            return Err(CtrlError::InvalidService(format!(
                "default quota {} must be positive and finite",
                self.default_quota
            )));
        }
        if self.shards == 0 {
            return Err(CtrlError::InvalidService("shards must be >= 1".into()));
        }
        for (name, price) in [
            ("per_bandwidth_tick", self.cost.per_bandwidth_tick),
            ("per_change", self.cost.per_change),
        ] {
            if !price.is_finite() || price < 0.0 {
                return Err(CtrlError::InvalidService(format!(
                    "price {name} {price} must be non-negative and finite"
                )));
            }
        }
        if self.shard_timeout_ms == 0 {
            return Err(CtrlError::InvalidService(
                "shard timeout must be at least one millisecond".into(),
            ));
        }
        if self.pipeline_depth == 0 {
            return Err(CtrlError::InvalidService(
                "pipeline depth must be at least 1".into(),
            ));
        }
        if self.checkpoint_full_every == 0 {
            return Err(CtrlError::InvalidService(
                "checkpoint_full_every must be at least 1".into(),
            ));
        }
        if self.kernel_threads == 0 {
            return Err(CtrlError::InvalidService(
                "kernel threads must be at least 1".into(),
            ));
        }
        if let Some(fault) = &self.fault {
            // Adaptive starts inline and may never escalate, so a fault
            // plan (which arms on the initial worker) cannot be honoured.
            if self.exec != ExecMode::Threaded {
                return Err(CtrlError::InvalidService(
                    "fault injection requires threaded execution".into(),
                ));
            }
            if fault.shard >= self.shards {
                return Err(CtrlError::InvalidService(format!(
                    "fault targets shard {} but only {} shards exist",
                    fault.shard, self.shards
                )));
            }
        }
        // Delegate the algorithm-parameter checks to the core builders.
        SingleConfig::builder(self.session_b_max)
            .offline_delay(self.d_o)
            .offline_utilization(self.u_o)
            .window(self.w)
            .build()
            .map_err(CtrlError::Config)?;
        MultiConfig::new(2, self.group_b_o, self.d_o).map_err(CtrlError::Config)?;
        Ok(ServiceConfig {
            budget: self.budget,
            default_quota: self.default_quota,
            session_b_max: self.session_b_max,
            group_b_o: self.group_b_o,
            d_o: self.d_o,
            u_o: self.u_o,
            w: self.w,
            shards: self.shards,
            cost: self.cost,
            exec: self.exec,
            checkpoint_every: self.checkpoint_every,
            checkpoint_full_every: self.checkpoint_full_every,
            max_restarts: self.max_restarts,
            shard_timeout_ms: self.shard_timeout_ms,
            pipeline_depth: self.pipeline_depth,
            kernel_threads: self.kernel_threads,
            fault: self.fault,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_happy_path() {
        let cfg = ServiceConfig::builder(256.0)
            .session_b_max(32.0)
            .group_b_o(16.0)
            .offline_delay(4)
            .window(8)
            .shards(4)
            .exec(ExecMode::Inline)
            .build()
            .unwrap();
        assert_eq!(cfg.dedicated_envelope(), 32.0);
        assert_eq!(cfg.group_envelope(), 64.0);
        assert_eq!(cfg.single_config().b_max, 32.0);
        assert_eq!(cfg.multi_config().d_o, 4);
    }

    #[test]
    fn service_level_violations_are_reported() {
        assert!(matches!(
            ServiceConfig::builder(0.0).build(),
            Err(CtrlError::InvalidService(_))
        ));
        assert!(matches!(
            ServiceConfig::builder(64.0).shards(0).build(),
            Err(CtrlError::InvalidService(_))
        ));
        assert!(matches!(
            ServiceConfig::builder(64.0).default_quota(-1.0).build(),
            Err(CtrlError::InvalidService(_))
        ));
    }

    #[test]
    fn fault_plans_are_validated() {
        // Only threaded execution can host a fault: inline never spawns a
        // worker, and adaptive may never escalate to one.
        for exec in [ExecMode::Inline, ExecMode::Adaptive] {
            assert!(matches!(
                ServiceConfig::builder(64.0)
                    .exec(exec)
                    .fault(FaultPlan::kill(0, 5))
                    .build(),
                Err(CtrlError::InvalidService(_))
            ));
        }
        // The targeted shard must exist.
        assert!(matches!(
            ServiceConfig::builder(64.0)
                .shards(2)
                .fault(FaultPlan::kill(2, 5))
                .build(),
            Err(CtrlError::InvalidService(_))
        ));
        let cfg = ServiceConfig::builder(64.0)
            .shards(2)
            .fault(FaultPlan::hang(1, 5, 100))
            .build()
            .unwrap();
        assert_eq!(cfg.fault, Some(FaultPlan::hang(1, 5, 100)));
        assert!(matches!(
            ServiceConfig::builder(64.0).shard_timeout_ms(0).build(),
            Err(CtrlError::InvalidService(_))
        ));
        assert!(matches!(
            ServiceConfig::builder(64.0).pipeline_depth(0).build(),
            Err(CtrlError::InvalidService(_))
        ));
        assert!(matches!(
            ServiceConfig::builder(64.0).kernel_threads(0).build(),
            Err(CtrlError::InvalidService(_))
        ));
    }

    #[test]
    fn algorithm_violations_are_delegated() {
        assert!(matches!(
            ServiceConfig::builder(64.0).session_b_max(48.0).build(),
            Err(CtrlError::Config(_))
        ));
        assert!(matches!(
            ServiceConfig::builder(64.0)
                .offline_delay(8)
                .window(4)
                .build(),
            Err(CtrlError::Config(_))
        ));
    }
}
