//! Fault injection for the shard supervisor.
//!
//! A [`FaultPlan`] names one shard, one tick, and a failure mode; wire it
//! into a service with
//! [`ServiceConfigBuilder::fault`](crate::config::ServiceConfigBuilder::fault)
//! and the chosen shard's *initial* worker sabotages itself when it is
//! about to process that tick. Restarted workers never re-arm the fault,
//! so a plan fires at most once — which is what lets recovery tests
//! compare a faulted run against a fault-free one.
//!
//! Plans only take effect under [`ExecMode::Threaded`]
//! (config validation rejects them in inline mode, where a kill would
//! panic the driver itself).
//!
//! [`ExecMode::Threaded`]: crate::config::ExecMode::Threaded

use std::fmt;
use std::str::FromStr;

/// What the sabotaged worker does at the chosen tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic before applying the tick. The panic is caught by the worker's
    /// `catch_unwind` and reported as a shard failure; the supervisor
    /// restarts the shard from its last checkpoint.
    Kill,
    /// Stall for `millis` before applying the tick, re-checking for
    /// cancellation afterwards. Pick a value above the configured shard
    /// timeout to force the supervisor to declare the worker unresponsive
    /// and restart it.
    Hang {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Sleep `millis` and then proceed normally. Pick a value below the
    /// shard timeout to exercise the tolerated-slowdown path: no restart,
    /// no metric difference.
    Delay {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
}

/// One injected fault: `kind` strikes shard `shard` when it is about to
/// process its `at_tick`-th tick (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The shard to sabotage.
    pub shard: usize,
    /// The 0-based tick index the fault fires at.
    pub at_tick: u64,
    /// The failure mode.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// A plan that kills `shard` at `at_tick`.
    pub fn kill(shard: usize, at_tick: u64) -> Self {
        FaultPlan {
            shard,
            at_tick,
            kind: FaultKind::Kill,
        }
    }

    /// A plan that stalls `shard` for `millis` at `at_tick`.
    pub fn hang(shard: usize, at_tick: u64, millis: u64) -> Self {
        FaultPlan {
            shard,
            at_tick,
            kind: FaultKind::Hang { millis },
        }
    }

    /// A plan that delays `shard` by `millis` at `at_tick`.
    pub fn delay(shard: usize, at_tick: u64, millis: u64) -> Self {
        FaultPlan {
            shard,
            at_tick,
            kind: FaultKind::Delay { millis },
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}:", self.shard, self.at_tick)?;
        match self.kind {
            FaultKind::Kill => write!(f, "kill"),
            FaultKind::Hang { millis } => write!(f, "hang:{millis}"),
            FaultKind::Delay { millis } => write!(f, "delay:{millis}"),
        }
    }
}

/// Parses the CLI spelling `SHARD@TICK:kill`, `SHARD@TICK:hang:MILLIS`,
/// or `SHARD@TICK:delay:MILLIS` (e.g. `1@50:kill`, `0@100:hang:5000`).
impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let bad = |what: &str| format!("invalid fault spec {spec:?}: {what}");
        let (target, kind) = spec
            .split_once(':')
            .ok_or_else(|| bad("expected SHARD@TICK:KIND"))?;
        let (shard, at_tick) = target
            .split_once('@')
            .ok_or_else(|| bad("expected SHARD@TICK before the colon"))?;
        let shard: usize = shard
            .parse()
            .map_err(|_| bad("shard must be an unsigned integer"))?;
        let at_tick: u64 = at_tick
            .parse()
            .map_err(|_| bad("tick must be an unsigned integer"))?;
        let kind = match kind.split_once(':') {
            None if kind == "kill" => FaultKind::Kill,
            Some((mode, millis)) => {
                let millis: u64 = millis
                    .parse()
                    .map_err(|_| bad("milliseconds must be an unsigned integer"))?;
                match mode {
                    "hang" => FaultKind::Hang { millis },
                    "delay" => FaultKind::Delay { millis },
                    _ => return Err(bad("mode must be kill, hang:MS, or delay:MS")),
                }
            }
            _ => return Err(bad("mode must be kill, hang:MS, or delay:MS")),
        };
        Ok(FaultPlan {
            shard,
            at_tick,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_modes() {
        assert_eq!("1@50:kill".parse(), Ok(FaultPlan::kill(1, 50)));
        assert_eq!("0@100:hang:5000".parse(), Ok(FaultPlan::hang(0, 100, 5000)));
        assert_eq!("3@7:delay:20".parse(), Ok(FaultPlan::delay(3, 7, 20)));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "kill",
            "1@50",
            "x@50:kill",
            "1@y:kill",
            "1@50:explode",
            "1@50:hang",
            "1@50:hang:x",
            "1@50:kill:5",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for plan in [
            FaultPlan::kill(2, 9),
            FaultPlan::hang(0, 3, 750),
            FaultPlan::delay(5, 0, 1),
        ] {
            assert_eq!(plan.to_string().parse(), Ok(plan));
        }
    }
}
