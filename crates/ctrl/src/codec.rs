//! The binary snapshot/checkpoint codec.
//!
//! serde-JSON stays the *reference* encoding — human-readable, stable, and
//! exact (`f64` survives through the shortest round-trip representation).
//! But at 100k sessions a snapshot is tens of megabytes of text and the
//! formatter dominates the export path. This module is the fast twin: a
//! flat little-endian encoding over the same structs, `f64` carried as raw
//! IEEE-754 bits (`to_bits`), so a decoded value is **bitwise identical**
//! to what the JSON path reproduces. Field order is struct declaration
//! order; every top-level payload leads with [`CODEC_VERSION`] and decoding
//! rejects trailing bytes.
//!
//! Primitives: `u64`/`u32`/`u8` little-endian; `usize` as `u64`; `f64` as
//! `to_bits()` little-endian; `bool` as one byte (0/1); `Option<T>` as a
//! 0/1 tag byte then the payload; `String`/`str` as `u32` length + UTF-8
//! bytes; `Vec<T>` as `u32` count + elements. Decoding is hostile-input
//! safe: lengths are checked against the remaining payload *before* any
//! allocation, so a forged count cannot balloon memory.

use crate::meter::SessionMetrics;
use crate::metrics::{GlobalMetrics, ServiceSnapshot, ShardHealth, ShardMetrics};
use std::fmt;
use std::sync::Arc;

/// Version byte leading every top-level binary payload.
pub const CODEC_VERSION: u8 = 1;

/// Why a binary payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the value did.
    Eof,
    /// A tag byte held an undefined value.
    BadTag(u8),
    /// A string was not UTF-8.
    BadUtf8,
    /// The leading version byte is not [`CODEC_VERSION`].
    BadVersion(u8),
    /// A collection count exceeds what the remaining bytes could hold.
    BadLength(u64),
    /// Bytes remained after the top-level value was decoded.
    Trailing(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof => write!(f, "payload truncated"),
            CodecError::BadTag(t) => write!(f, "undefined tag byte {t:#04x}"),
            CodecError::BadUtf8 => write!(f, "string is not UTF-8"),
            CodecError::BadVersion(v) => {
                write!(f, "codec version {v} (this build speaks {CODEC_VERSION})")
            }
            CodecError::BadLength(n) => write!(f, "count {n} exceeds the remaining payload"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes after the value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Binary encoder: appends primitives to a caller-owned buffer, so hot
/// paths (the shard checkpoint loop) can reuse one allocation across
/// captures.
pub struct Enc<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Enc<'a> {
    /// Wraps `buf`; encoded bytes are appended (the caller clears it).
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        Enc { buf }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `f64` as raw IEEE-754 bits: the round trip is the identity, even
    /// for `-0.0`, subnormals, and NaN payloads.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn str(&mut self, v: &str) {
        self.u32(u32::try_from(v.len()).expect("string fits a u32 length"));
        self.buf.extend_from_slice(v.as_bytes());
    }

    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }

    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }

    /// Collection prefix: the element count.
    pub fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("collection fits a u32 count"));
    }
}

/// Binary decoder: a cursor over a payload slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Eof)?;
        if end > self.buf.len() {
            return Err(CodecError::Eof);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::Trailing(n)),
        }
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::BadLength(v))
    }

    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::BadTag(t)),
        }
    }

    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    fn opt<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            t => Err(CodecError::BadTag(t)),
        }
    }

    pub fn opt_f64(&mut self) -> Result<Option<f64>, CodecError> {
        self.opt(Self::f64)
    }

    pub fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        self.opt(Self::u64)
    }

    pub fn opt_str(&mut self) -> Result<Option<String>, CodecError> {
        self.opt(Self::str)
    }

    /// Reads a collection count, validating it against the remaining bytes
    /// at `min_elem` bytes per element — a forged count fails here instead
    /// of reserving gigabytes.
    pub fn len(&mut self, min_elem: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(CodecError::BadLength(n as u64));
        }
        Ok(n)
    }

    /// Leading version byte of a top-level payload.
    pub fn version(&mut self) -> Result<(), CodecError> {
        match self.u8()? {
            CODEC_VERSION => Ok(()),
            v => Err(CodecError::BadVersion(v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot family (public: the gateway reuses these for its wire frames).
// ---------------------------------------------------------------------------

/// Encodes one session's metrics (no version byte; a fragment).
pub fn encode_session_metrics(m: &SessionMetrics, e: &mut Enc<'_>) {
    e.u64(m.session);
    e.str(&m.tenant);
    e.u64(m.shard);
    e.u64(m.ticks);
    e.u64(m.changes);
    e.f64(m.peak_allocation);
    e.u64(m.max_delay);
    e.f64(m.total_arrived);
    e.f64(m.total_served);
    e.f64(m.total_allocated);
    e.opt_f64(m.windowed_utilization);
    e.f64(m.signalling_cost);
    e.f64(m.bandwidth_cost);
}

/// Decodes one session's metrics.
///
/// # Errors
///
/// Any [`CodecError`] raised by a malformed fragment.
pub fn decode_session_metrics(d: &mut Dec<'_>) -> Result<SessionMetrics, CodecError> {
    Ok(SessionMetrics {
        session: d.u64()?,
        tenant: Arc::from(d.str()?.as_str()),
        shard: d.u64()?,
        ticks: d.u64()?,
        changes: d.u64()?,
        peak_allocation: d.f64()?,
        max_delay: d.u64()?,
        total_arrived: d.f64()?,
        total_served: d.f64()?,
        total_allocated: d.f64()?,
        windowed_utilization: d.opt_f64()?,
        signalling_cost: d.f64()?,
        bandwidth_cost: d.f64()?,
    })
}

/// Encodes the placement-invariant global totals (a fragment).
pub fn encode_global_metrics(g: &GlobalMetrics, e: &mut Enc<'_>) {
    e.u64(g.sessions);
    e.u64(g.changes);
    e.u64(g.max_delay);
    e.f64(g.peak_allocation);
    e.f64(g.total_arrived);
    e.f64(g.total_served);
    e.f64(g.total_allocated);
    e.opt_f64(g.min_windowed_utilization);
    e.f64(g.signalling_cost);
    e.f64(g.bandwidth_cost);
}

/// Decodes the global totals.
///
/// # Errors
///
/// Any [`CodecError`] raised by a malformed fragment.
pub fn decode_global_metrics(d: &mut Dec<'_>) -> Result<GlobalMetrics, CodecError> {
    Ok(GlobalMetrics {
        sessions: d.u64()?,
        changes: d.u64()?,
        max_delay: d.u64()?,
        peak_allocation: d.f64()?,
        total_arrived: d.f64()?,
        total_served: d.f64()?,
        total_allocated: d.f64()?,
        min_windowed_utilization: d.opt_f64()?,
        signalling_cost: d.f64()?,
        bandwidth_cost: d.f64()?,
    })
}

/// Encodes one shard's totals (a fragment).
pub fn encode_shard_metrics(s: &ShardMetrics, e: &mut Enc<'_>) {
    e.u64(s.shard);
    e.u64(s.sessions);
    e.u64(s.changes);
    e.f64(s.peak_allocation);
    e.u64(s.max_delay);
    e.f64(s.signalling_cost);
    e.f64(s.bandwidth_cost);
}

/// Decodes one shard's totals.
///
/// # Errors
///
/// Any [`CodecError`] raised by a malformed fragment.
pub fn decode_shard_metrics(d: &mut Dec<'_>) -> Result<ShardMetrics, CodecError> {
    Ok(ShardMetrics {
        shard: d.u64()?,
        sessions: d.u64()?,
        changes: d.u64()?,
        peak_allocation: d.f64()?,
        max_delay: d.u64()?,
        signalling_cost: d.f64()?,
        bandwidth_cost: d.f64()?,
    })
}

/// Encodes one shard's supervision status (a fragment).
pub fn encode_shard_health(h: &ShardHealth, e: &mut Enc<'_>) {
    e.u64(h.shard);
    e.bool(h.healthy);
    e.u64(h.restarts);
    e.opt_str(h.last_failure.as_deref());
}

/// Decodes one shard's supervision status.
///
/// # Errors
///
/// Any [`CodecError`] raised by a malformed fragment.
pub fn decode_shard_health(d: &mut Dec<'_>) -> Result<ShardHealth, CodecError> {
    Ok(ShardHealth {
        shard: d.u64()?,
        healthy: d.bool()?,
        restarts: d.u64()?,
        last_failure: d.opt_str()?,
    })
}

/// Encodes a full service snapshot as a self-contained versioned payload.
pub fn encode_snapshot(snap: &ServiceSnapshot, buf: &mut Vec<u8>) {
    let mut e = Enc::new(buf);
    e.u8(CODEC_VERSION);
    encode_snapshot_fragment(snap, &mut e);
}

/// Encodes a snapshot without the version byte, for embedding inside a
/// larger payload that already carries one.
pub fn encode_snapshot_fragment(snap: &ServiceSnapshot, e: &mut Enc<'_>) {
    e.u64(snap.ticks);
    e.u64(snap.shards);
    e.u64(snap.admitted);
    e.u64(snap.rejected);
    e.u64(snap.restarts);
    e.u64(snap.events_replayed);
    encode_global_metrics(&snap.global, e);
    e.len(snap.per_shard.len());
    for s in &snap.per_shard {
        encode_shard_metrics(s, e);
    }
    e.len(snap.health.len());
    for h in &snap.health {
        encode_shard_health(h, e);
    }
    e.len(snap.sessions.len());
    for m in &snap.sessions {
        encode_session_metrics(m, e);
    }
}

/// Decodes a self-contained snapshot payload (version byte + no trailing
/// bytes).
///
/// # Errors
///
/// Any [`CodecError`] raised by a malformed payload.
pub fn decode_snapshot(payload: &[u8]) -> Result<ServiceSnapshot, CodecError> {
    let mut d = Dec::new(payload);
    d.version()?;
    let snap = decode_snapshot_fragment(&mut d)?;
    d.finish()?;
    Ok(snap)
}

/// Decodes a snapshot fragment (no version byte, trailing bytes allowed —
/// the embedding payload owns them).
///
/// # Errors
///
/// Any [`CodecError`] raised by a malformed fragment.
pub fn decode_snapshot_fragment(d: &mut Dec<'_>) -> Result<ServiceSnapshot, CodecError> {
    let ticks = d.u64()?;
    let shards = d.u64()?;
    let admitted = d.u64()?;
    let rejected = d.u64()?;
    let restarts = d.u64()?;
    let events_replayed = d.u64()?;
    let global = decode_global_metrics(d)?;
    let n = d.len(8)?;
    let mut per_shard = Vec::with_capacity(n);
    for _ in 0..n {
        per_shard.push(decode_shard_metrics(d)?);
    }
    let n = d.len(8)?;
    let mut health = Vec::with_capacity(n);
    for _ in 0..n {
        health.push(decode_shard_health(d)?);
    }
    let n = d.len(8)?;
    let mut sessions = Vec::with_capacity(n);
    for _ in 0..n {
        sessions.push(decode_session_metrics(d)?);
    }
    Ok(ServiceSnapshot {
        ticks,
        shards,
        admitted,
        rejected,
        restarts,
        events_replayed,
        global,
        per_shard,
        health,
        sessions,
    })
}

// ---------------------------------------------------------------------------
// Checkpoint family (crate-private: the worker ships these to the driver).
// ---------------------------------------------------------------------------

pub(crate) mod checkpoint {
    use super::*;
    use crate::meter::MeterCheckpoint;
    use crate::shard::{GroupCheckpoint, SessionCheckpoint, ShardStateCheckpoint};
    use cdba_analysis::cost::CostModel;
    use cdba_core::bounds::{HighTrackerState, LowTrackerState};
    use cdba_core::config::{MultiConfig, SingleConfig};
    use cdba_core::multi::pool::{PoolCheckpoint, SlotCheckpoint};
    use cdba_core::single::SingleCheckpoint;
    use cdba_core::stage::{StageKind, StageLog, StageRecord};
    use cdba_sim::streaming::DelayTrackerState;

    fn enc_cost(c: &CostModel, e: &mut Enc<'_>) {
        e.f64(c.per_bandwidth_tick);
        e.f64(c.per_change);
    }

    fn dec_cost(d: &mut Dec<'_>) -> Result<CostModel, CodecError> {
        Ok(CostModel {
            per_bandwidth_tick: d.f64()?,
            per_change: d.f64()?,
        })
    }

    fn enc_delay(t: &DelayTrackerState, e: &mut Enc<'_>) {
        e.len(t.pending.len());
        for &(tick, bits) in &t.pending {
            e.usize(tick);
            e.f64(bits);
        }
        e.usize(t.tick);
        e.usize(t.max_delay);
        e.f64(t.max_delay_exact);
    }

    fn dec_delay(d: &mut Dec<'_>) -> Result<DelayTrackerState, CodecError> {
        let n = d.len(16)?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            pending.push((d.usize()?, d.f64()?));
        }
        Ok(DelayTrackerState {
            pending,
            tick: d.usize()?,
            max_delay: d.usize()?,
            max_delay_exact: d.f64()?,
        })
    }

    fn enc_meter(m: &MeterCheckpoint, e: &mut Enc<'_>) {
        enc_cost(&m.cost, e);
        e.usize(m.window);
        e.f64(m.shadow_backlog);
        enc_delay(&m.delay, e);
        e.len(m.recent.len());
        for &(a, b) in &m.recent {
            e.f64(a);
            e.f64(b);
        }
        e.f64(m.window_arrived);
        e.f64(m.window_allocated);
        e.opt_f64(m.min_windowed_utilization);
        e.f64(m.current_alloc);
        e.u64(m.ticks);
        e.u64(m.changes);
        e.f64(m.peak_allocation);
        e.f64(m.total_arrived);
        e.f64(m.total_served);
        e.f64(m.total_allocated);
    }

    fn dec_meter(d: &mut Dec<'_>) -> Result<MeterCheckpoint, CodecError> {
        let cost = dec_cost(d)?;
        let window = d.usize()?;
        let shadow_backlog = d.f64()?;
        let delay = dec_delay(d)?;
        let n = d.len(16)?;
        let mut recent = Vec::with_capacity(n);
        for _ in 0..n {
            recent.push((d.f64()?, d.f64()?));
        }
        Ok(MeterCheckpoint {
            cost,
            window,
            shadow_backlog,
            delay,
            recent,
            window_arrived: d.f64()?,
            window_allocated: d.f64()?,
            min_windowed_utilization: d.opt_f64()?,
            current_alloc: d.f64()?,
            ticks: d.u64()?,
            changes: d.u64()?,
            peak_allocation: d.f64()?,
            total_arrived: d.f64()?,
            total_served: d.f64()?,
            total_allocated: d.f64()?,
        })
    }

    fn enc_stage_log(log: &StageLog, e: &mut Enc<'_>) {
        let records = log.records();
        e.len(records.len());
        for r in records {
            e.usize(r.start);
            e.opt_u64(r.end.map(|x| x as u64));
            e.u8(match r.kind {
                StageKind::BoundsCrossed => 0,
                StageKind::RegularOverflow => 1,
                StageKind::GlobalBoundsCrossed => 2,
                StageKind::BudgetChanged => 3,
            });
        }
    }

    fn dec_stage_log(d: &mut Dec<'_>) -> Result<StageLog, CodecError> {
        let n = d.len(10)?;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let start = d.usize()?;
            let end = match d.opt_u64()? {
                None => None,
                Some(v) => Some(usize::try_from(v).map_err(|_| CodecError::BadLength(v))?),
            };
            let kind = match d.u8()? {
                0 => StageKind::BoundsCrossed,
                1 => StageKind::RegularOverflow,
                2 => StageKind::GlobalBoundsCrossed,
                3 => StageKind::BudgetChanged,
                t => return Err(CodecError::BadTag(t)),
            };
            records.push(StageRecord { start, end, kind });
        }
        Ok(StageLog::from_records(records))
    }

    fn enc_low(t: &LowTrackerState, e: &mut Enc<'_>) {
        e.usize(t.d_o);
        e.len(t.hull.len());
        for &(x, y) in &t.hull {
            e.f64(x);
            e.f64(y);
        }
        e.usize(t.ticks);
        e.f64(t.total);
        e.f64(t.low);
    }

    fn dec_low(d: &mut Dec<'_>) -> Result<LowTrackerState, CodecError> {
        let d_o = d.usize()?;
        let n = d.len(16)?;
        let mut hull = Vec::with_capacity(n);
        for _ in 0..n {
            hull.push((d.f64()?, d.f64()?));
        }
        Ok(LowTrackerState {
            d_o,
            hull,
            ticks: d.usize()?,
            total: d.f64()?,
            low: d.f64()?,
        })
    }

    fn enc_high(t: &HighTrackerState, e: &mut Enc<'_>) {
        e.f64(t.u_o);
        e.usize(t.w);
        e.f64(t.grace);
        e.len(t.window.len());
        for &a in &t.window {
            e.f64(a);
        }
        e.f64(t.window_sum);
        e.opt_f64(t.min_window_sum);
        e.usize(t.ticks);
    }

    fn dec_high(d: &mut Dec<'_>) -> Result<HighTrackerState, CodecError> {
        let u_o = d.f64()?;
        let w = d.usize()?;
        let grace = d.f64()?;
        let n = d.len(8)?;
        let mut window = Vec::with_capacity(n);
        for _ in 0..n {
            window.push(d.f64()?);
        }
        Ok(HighTrackerState {
            u_o,
            w,
            grace,
            window,
            window_sum: d.f64()?,
            min_window_sum: d.opt_f64()?,
            ticks: d.usize()?,
        })
    }

    fn enc_single(cp: &SingleCheckpoint, e: &mut Enc<'_>) {
        e.f64(cp.cfg.b_max);
        e.usize(cp.cfg.d_o);
        e.f64(cp.cfg.u_o);
        e.usize(cp.cfg.w);
        e.f64(cp.backlog);
        match &cp.stage_low {
            None => e.u8(0),
            Some(t) => {
                e.u8(1);
                enc_low(t, e);
            }
        }
        match &cp.stage_high {
            None => e.u8(0),
            Some(t) => {
                e.u8(1);
                enc_high(t, e);
            }
        }
        e.f64(cp.b_on);
        e.usize(cp.tick);
        enc_stage_log(&cp.stages, e);
    }

    fn dec_single(d: &mut Dec<'_>) -> Result<SingleCheckpoint, CodecError> {
        let cfg = SingleConfig {
            b_max: d.f64()?,
            d_o: d.usize()?,
            u_o: d.f64()?,
            w: d.usize()?,
        };
        let backlog = d.f64()?;
        let stage_low = match d.u8()? {
            0 => None,
            1 => Some(dec_low(d)?),
            t => return Err(CodecError::BadTag(t)),
        };
        let stage_high = match d.u8()? {
            0 => None,
            1 => Some(dec_high(d)?),
            t => return Err(CodecError::BadTag(t)),
        };
        Ok(SingleCheckpoint {
            cfg,
            backlog,
            stage_low,
            stage_high,
            b_on: d.f64()?,
            tick: d.usize()?,
            stages: dec_stage_log(d)?,
        })
    }

    fn enc_pool(cp: &PoolCheckpoint, e: &mut Enc<'_>) {
        e.usize(cp.cfg.k);
        e.f64(cp.cfg.b_o);
        e.usize(cp.cfg.d_o);
        e.len(cp.slots.len());
        for s in &cp.slots {
            e.u64(s.id);
            e.f64(s.br);
            e.f64(s.bo);
            e.f64(s.qr_backlog);
            e.f64(s.qo_backlog);
            e.bool(s.leaving);
        }
        e.len(cp.pending.len());
        for &(slot, bits) in &cp.pending {
            e.usize(slot);
            e.f64(bits);
        }
        e.u64(cp.next_id);
        e.usize(cp.tick);
        e.usize(cp.phase_anchor);
        enc_stage_log(&cp.stages, e);
        e.usize(cp.membership_changes);
    }

    fn dec_pool(d: &mut Dec<'_>) -> Result<PoolCheckpoint, CodecError> {
        let k = d.usize()?;
        let b_o = d.f64()?;
        let d_o = d.usize()?;
        let cfg = MultiConfig { k, b_o, d_o };
        let n = d.len(41)?;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            slots.push(SlotCheckpoint {
                id: d.u64()?,
                br: d.f64()?,
                bo: d.f64()?,
                qr_backlog: d.f64()?,
                qo_backlog: d.f64()?,
                leaving: d.bool()?,
            });
        }
        let n = d.len(16)?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            pending.push((d.usize()?, d.f64()?));
        }
        Ok(PoolCheckpoint {
            cfg,
            slots,
            pending,
            next_id: d.u64()?,
            tick: d.usize()?,
            phase_anchor: d.usize()?,
            stages: dec_stage_log(d)?,
            membership_changes: d.usize()?,
        })
    }

    fn enc_session(cp: &SessionCheckpoint, e: &mut Enc<'_>) {
        e.u64(cp.key);
        e.str(&cp.tenant);
        enc_meter(&cp.meter, e);
        e.bool(cp.leaving);
        match &cp.dedicated {
            None => e.u8(0),
            Some(alg) => {
                e.u8(1);
                enc_single(alg, e);
            }
        }
        match cp.pooled {
            None => e.u8(0),
            Some((group, member)) => {
                e.u8(1);
                e.u64(group);
                e.u64(member);
            }
        }
    }

    fn dec_session(d: &mut Dec<'_>) -> Result<SessionCheckpoint, CodecError> {
        let key = d.u64()?;
        let tenant: Arc<str> = Arc::from(d.str()?.as_str());
        let meter = dec_meter(d)?;
        let leaving = d.bool()?;
        let dedicated = match d.u8()? {
            0 => None,
            1 => Some(dec_single(d)?),
            t => return Err(CodecError::BadTag(t)),
        };
        let pooled = match d.u8()? {
            0 => None,
            1 => Some((d.u64()?, d.u64()?)),
            t => return Err(CodecError::BadTag(t)),
        };
        Ok(SessionCheckpoint {
            key,
            tenant,
            meter,
            leaving,
            dedicated,
            pooled,
        })
    }

    fn enc_group(cp: &GroupCheckpoint, e: &mut Enc<'_>) {
        e.u64(cp.group);
        enc_pool(&cp.pool, e);
        e.len(cp.members.len());
        for &(member, key) in &cp.members {
            e.u64(member);
            e.u64(key);
        }
    }

    fn dec_group(d: &mut Dec<'_>) -> Result<GroupCheckpoint, CodecError> {
        let group = d.u64()?;
        let pool = dec_pool(d)?;
        let n = d.len(16)?;
        let mut members = Vec::with_capacity(n);
        for _ in 0..n {
            members.push((d.u64()?, d.u64()?));
        }
        Ok(GroupCheckpoint {
            group,
            pool,
            members,
        })
    }

    /// Encodes a shard checkpoint into `buf` (appending — callers reuse
    /// the buffer across captures).
    pub(crate) fn encode(cp: &ShardStateCheckpoint, buf: &mut Vec<u8>) {
        let mut e = Enc::new(buf);
        e.u8(CODEC_VERSION);
        e.len(cp.sessions.len());
        for s in &cp.sessions {
            enc_session(s, &mut e);
        }
        e.len(cp.groups.len());
        for g in &cp.groups {
            enc_group(g, &mut e);
        }
        e.len(cp.retired.len());
        for m in cp.retired.iter() {
            encode_session_metrics(m, &mut e);
        }
        e.u64(cp.ticks);
    }

    /// Decodes a shard checkpoint payload.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] raised by a malformed payload.
    pub(crate) fn decode(payload: &[u8]) -> Result<ShardStateCheckpoint, CodecError> {
        let mut d = Dec::new(payload);
        d.version()?;
        let n = d.len(8)?;
        let mut sessions = Vec::with_capacity(n);
        for _ in 0..n {
            sessions.push(dec_session(&mut d)?);
        }
        let n = d.len(8)?;
        let mut groups = Vec::with_capacity(n);
        for _ in 0..n {
            groups.push(dec_group(&mut d)?);
        }
        let n = d.len(8)?;
        let mut retired = Vec::with_capacity(n);
        for _ in 0..n {
            retired.push(decode_session_metrics(&mut d)?);
        }
        let cp = ShardStateCheckpoint {
            sessions,
            groups,
            retired: Arc::new(retired),
            ticks: d.u64()?,
        };
        d.finish()?;
        Ok(cp)
    }

    /// Encodes one session's checkpoint as a standalone payload — the
    /// migration blob a live session travels between processes as.
    pub(crate) fn encode_session(cp: &SessionCheckpoint, buf: &mut Vec<u8>) {
        let mut e = Enc::new(buf);
        e.u8(CODEC_VERSION);
        enc_session(cp, &mut e);
    }

    /// Decodes a standalone session-checkpoint payload.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] raised by a malformed payload.
    pub(crate) fn decode_session(payload: &[u8]) -> Result<SessionCheckpoint, CodecError> {
        let mut d = Dec::new(payload);
        d.version()?;
        let cp = dec_session(&mut d)?;
        d.finish()?;
        Ok(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(session: u64) -> SessionMetrics {
        SessionMetrics {
            session,
            tenant: Arc::from(format!("tenant-{session}").as_str()),
            shard: session % 3,
            ticks: 100 + session,
            changes: 7,
            peak_allocation: 16.0,
            max_delay: 3,
            total_arrived: 0.1 + session as f64, // not exactly representable
            total_served: 1.0 / 3.0,
            total_allocated: f64::MIN_POSITIVE, // subnormal-adjacent edge
            windowed_utilization: if session.is_multiple_of(2) {
                Some(0.3)
            } else {
                None
            },
            signalling_cost: 7.0,
            bandwidth_cost: -0.0, // signed zero must survive
        }
    }

    fn snapshot() -> ServiceSnapshot {
        ServiceSnapshot {
            ticks: 42,
            shards: 2,
            admitted: 5,
            rejected: 1,
            restarts: 1,
            events_replayed: 17,
            global: GlobalMetrics {
                sessions: 3,
                changes: 21,
                max_delay: 3,
                peak_allocation: 16.0,
                total_arrived: 123.456,
                total_served: 120.0,
                total_allocated: 200.0,
                min_windowed_utilization: Some(0.25),
                signalling_cost: 21.0,
                bandwidth_cost: 200.0,
            },
            per_shard: vec![
                ShardMetrics {
                    shard: 0,
                    sessions: 2,
                    changes: 14,
                    peak_allocation: 16.0,
                    max_delay: 3,
                    signalling_cost: 14.0,
                    bandwidth_cost: 120.0,
                },
                ShardMetrics {
                    shard: 1,
                    sessions: 1,
                    changes: 7,
                    peak_allocation: 8.0,
                    max_delay: 1,
                    signalling_cost: 7.0,
                    bandwidth_cost: 80.0,
                },
            ],
            health: vec![
                ShardHealth {
                    shard: 0,
                    healthy: true,
                    restarts: 0,
                    last_failure: None,
                },
                ShardHealth {
                    shard: 1,
                    healthy: false,
                    restarts: 1,
                    last_failure: Some("injected fault: kill".into()),
                },
            ],
            sessions: (0..3).map(metric).collect(),
        }
    }

    /// Field-for-field bitwise comparison, `f64` by `to_bits`.
    fn assert_bitwise(a: &ServiceSnapshot, b: &ServiceSnapshot) {
        assert_eq!(a, b, "struct equality");
        for (x, y) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(x.peak_allocation.to_bits(), y.peak_allocation.to_bits());
            assert_eq!(x.total_arrived.to_bits(), y.total_arrived.to_bits());
            assert_eq!(x.total_served.to_bits(), y.total_served.to_bits());
            assert_eq!(x.total_allocated.to_bits(), y.total_allocated.to_bits());
            assert_eq!(
                x.windowed_utilization.map(f64::to_bits),
                y.windowed_utilization.map(f64::to_bits)
            );
            assert_eq!(x.signalling_cost.to_bits(), y.signalling_cost.to_bits());
            assert_eq!(x.bandwidth_cost.to_bits(), y.bandwidth_cost.to_bits());
        }
        assert_eq!(
            a.global.total_arrived.to_bits(),
            b.global.total_arrived.to_bits()
        );
    }

    #[test]
    fn snapshot_roundtrip_is_bitwise() {
        let snap = snapshot();
        let mut buf = Vec::new();
        encode_snapshot(&snap, &mut buf);
        let back = decode_snapshot(&buf).unwrap();
        assert_bitwise(&snap, &back);
    }

    #[test]
    fn binary_decode_matches_json_decode() {
        // The acceptance contract: decode(binary) == decode(json),
        // field for field, f64 by to_bits.
        let snap = snapshot();
        let mut buf = Vec::new();
        encode_snapshot(&snap, &mut buf);
        let from_binary = decode_snapshot(&buf).unwrap();
        let from_json: ServiceSnapshot =
            serde::Deserialize::deserialize(&serde_json::from_str(&snap.to_json_string()).unwrap())
                .unwrap();
        assert_bitwise(&from_binary, &from_json);
        // JSON text equality doubles as a bit-exactness proxy: serde_json
        // prints the shortest exact f64, so equal text ⇔ equal bits.
        assert_eq!(
            from_binary.to_json_string(),
            from_json.to_json_string(),
            "binary- and JSON-decoded snapshots render identically"
        );
    }

    #[test]
    fn signed_zero_and_nan_survive() {
        let mut buf = Vec::new();
        let mut e = Enc::new(&mut buf);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.f64(f64::INFINITY);
        let mut d = Dec::new(&buf);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.f64().unwrap(), f64::INFINITY);
        d.finish().unwrap();
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let snap = snapshot();
        let mut buf = Vec::new();
        encode_snapshot(&snap, &mut buf);
        for cut in [0, 1, 5, buf.len() / 2, buf.len() - 1] {
            let err = decode_snapshot(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Eof | CodecError::BadLength(_)),
                "cut at {cut}: {err:?}"
            );
        }
        let mut extended = buf.clone();
        extended.push(0);
        assert_eq!(
            decode_snapshot(&extended).unwrap_err(),
            CodecError::Trailing(1)
        );
    }

    #[test]
    fn hostile_counts_cannot_balloon_memory() {
        // A payload claiming u32::MAX sessions must fail on the length
        // check, before any allocation happens.
        let mut buf = Vec::new();
        let mut e = Enc::new(&mut buf);
        e.u8(CODEC_VERSION);
        for _ in 0..6 {
            e.u64(0);
        }
        encode_global_metrics(&snapshot().global, &mut e);
        e.u32(u32::MAX); // per_shard count
        let err = decode_snapshot(&buf).unwrap_err();
        assert_eq!(err, CodecError::BadLength(u64::from(u32::MAX)));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        encode_snapshot(&snapshot(), &mut buf);
        buf[0] = 99;
        assert_eq!(
            decode_snapshot(&buf).unwrap_err(),
            CodecError::BadVersion(99)
        );
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut buf = Vec::new();
        let mut e = Enc::new(&mut buf);
        e.u32(2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(Dec::new(&buf).str().unwrap_err(), CodecError::BadUtf8);
    }
}
