//! The binary snapshot/checkpoint codec.
//!
//! serde-JSON stays the *reference* encoding — human-readable, stable, and
//! exact (`f64` survives through the shortest round-trip representation).
//! But at 100k sessions a snapshot is tens of megabytes of text and the
//! formatter dominates the export path. This module is the fast twin: a
//! flat little-endian encoding over the same structs, `f64` carried as raw
//! IEEE-754 bits (`to_bits`), so a decoded value is **bitwise identical**
//! to what the JSON path reproduces. Field order is struct declaration
//! order; every top-level payload leads with [`CODEC_VERSION`] and decoding
//! rejects trailing bytes.
//!
//! Primitives: `u64`/`u32`/`u8` little-endian; `usize` as `u64`; `f64` as
//! `to_bits()` little-endian; `bool` as one byte (0/1); `Option<T>` as a
//! 0/1 tag byte then the payload; `String`/`str` as `u32` length + UTF-8
//! bytes; `Vec<T>` as `u32` count + elements. Decoding is hostile-input
//! safe: lengths are checked against the remaining payload *before* any
//! allocation, so a forged count cannot balloon memory.

use crate::meter::SessionMetrics;
use crate::metrics::{GlobalMetrics, ServiceSnapshot, ShardHealth, ShardMetrics};
use std::fmt;
use std::sync::Arc;

/// Version byte leading every top-level binary payload.
pub const CODEC_VERSION: u8 = 1;

/// Why a binary payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the value did.
    Eof,
    /// A tag byte held an undefined value.
    BadTag(u8),
    /// A string was not UTF-8.
    BadUtf8,
    /// The leading version byte is not [`CODEC_VERSION`].
    BadVersion(u8),
    /// A collection count exceeds what the remaining bytes could hold.
    BadLength(u64),
    /// Bytes remained after the top-level value was decoded.
    Trailing(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof => write!(f, "payload truncated"),
            CodecError::BadTag(t) => write!(f, "undefined tag byte {t:#04x}"),
            CodecError::BadUtf8 => write!(f, "string is not UTF-8"),
            CodecError::BadVersion(v) => {
                write!(f, "codec version {v} (this build speaks {CODEC_VERSION})")
            }
            CodecError::BadLength(n) => write!(f, "count {n} exceeds the remaining payload"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes after the value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Binary encoder: appends primitives to a caller-owned buffer, so hot
/// paths (the shard checkpoint loop) can reuse one allocation across
/// captures.
pub struct Enc<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Enc<'a> {
    /// Wraps `buf`; encoded bytes are appended (the caller clears it).
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        Enc { buf }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `f64` as raw IEEE-754 bits: the round trip is the identity, even
    /// for `-0.0`, subnormals, and NaN payloads.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn str(&mut self, v: &str) {
        self.u32(u32::try_from(v.len()).expect("string fits a u32 length"));
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends pre-encoded bytes verbatim (no length prefix) — the
    /// columnar encoder splices pooled column bodies with this.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }

    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }

    /// Collection prefix: the element count.
    pub fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("collection fits a u32 count"));
    }
}

/// Binary decoder: a cursor over a payload slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Eof)?;
        if end > self.buf.len() {
            return Err(CodecError::Eof);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::Trailing(n)),
        }
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::BadLength(v))
    }

    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::BadTag(t)),
        }
    }

    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Borrows a string straight out of the payload — the columnar
    /// decoder's zero-copy path (schema names, the tenant table).
    pub fn str_ref(&mut self) -> Result<&'a str, CodecError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)
    }

    /// Borrows `n` raw bytes out of the payload (a column body).
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    fn opt<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            t => Err(CodecError::BadTag(t)),
        }
    }

    pub fn opt_f64(&mut self) -> Result<Option<f64>, CodecError> {
        self.opt(Self::f64)
    }

    pub fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        self.opt(Self::u64)
    }

    pub fn opt_str(&mut self) -> Result<Option<String>, CodecError> {
        self.opt(Self::str)
    }

    /// Reads a collection count, validating it against the remaining bytes
    /// at `min_elem` bytes per element — a forged count fails here instead
    /// of reserving gigabytes.
    pub fn len(&mut self, min_elem: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(CodecError::BadLength(n as u64));
        }
        Ok(n)
    }

    /// Leading version byte of a top-level payload.
    pub fn version(&mut self) -> Result<(), CodecError> {
        match self.u8()? {
            CODEC_VERSION => Ok(()),
            v => Err(CodecError::BadVersion(v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot family (public: the gateway reuses these for its wire frames).
// ---------------------------------------------------------------------------

/// Encodes one session's metrics (no version byte; a fragment).
pub fn encode_session_metrics(m: &SessionMetrics, e: &mut Enc<'_>) {
    e.u64(m.session);
    e.str(&m.tenant);
    e.u64(m.shard);
    e.u64(m.ticks);
    e.u64(m.changes);
    e.f64(m.peak_allocation);
    e.u64(m.max_delay);
    e.f64(m.total_arrived);
    e.f64(m.total_served);
    e.f64(m.total_allocated);
    e.opt_f64(m.windowed_utilization);
    e.f64(m.signalling_cost);
    e.f64(m.bandwidth_cost);
}

/// Decodes one session's metrics.
///
/// # Errors
///
/// Any [`CodecError`] raised by a malformed fragment.
pub fn decode_session_metrics(d: &mut Dec<'_>) -> Result<SessionMetrics, CodecError> {
    Ok(SessionMetrics {
        session: d.u64()?,
        tenant: Arc::from(d.str()?.as_str()),
        shard: d.u64()?,
        ticks: d.u64()?,
        changes: d.u64()?,
        peak_allocation: d.f64()?,
        max_delay: d.u64()?,
        total_arrived: d.f64()?,
        total_served: d.f64()?,
        total_allocated: d.f64()?,
        windowed_utilization: d.opt_f64()?,
        signalling_cost: d.f64()?,
        bandwidth_cost: d.f64()?,
    })
}

/// Encodes the placement-invariant global totals (a fragment).
pub fn encode_global_metrics(g: &GlobalMetrics, e: &mut Enc<'_>) {
    e.u64(g.sessions);
    e.u64(g.changes);
    e.u64(g.max_delay);
    e.f64(g.peak_allocation);
    e.f64(g.total_arrived);
    e.f64(g.total_served);
    e.f64(g.total_allocated);
    e.opt_f64(g.min_windowed_utilization);
    e.f64(g.signalling_cost);
    e.f64(g.bandwidth_cost);
}

/// Decodes the global totals.
///
/// # Errors
///
/// Any [`CodecError`] raised by a malformed fragment.
pub fn decode_global_metrics(d: &mut Dec<'_>) -> Result<GlobalMetrics, CodecError> {
    Ok(GlobalMetrics {
        sessions: d.u64()?,
        changes: d.u64()?,
        max_delay: d.u64()?,
        peak_allocation: d.f64()?,
        total_arrived: d.f64()?,
        total_served: d.f64()?,
        total_allocated: d.f64()?,
        min_windowed_utilization: d.opt_f64()?,
        signalling_cost: d.f64()?,
        bandwidth_cost: d.f64()?,
    })
}

/// Encodes one shard's totals (a fragment).
pub fn encode_shard_metrics(s: &ShardMetrics, e: &mut Enc<'_>) {
    e.u64(s.shard);
    e.u64(s.sessions);
    e.u64(s.changes);
    e.f64(s.peak_allocation);
    e.u64(s.max_delay);
    e.f64(s.signalling_cost);
    e.f64(s.bandwidth_cost);
}

/// Decodes one shard's totals.
///
/// # Errors
///
/// Any [`CodecError`] raised by a malformed fragment.
pub fn decode_shard_metrics(d: &mut Dec<'_>) -> Result<ShardMetrics, CodecError> {
    Ok(ShardMetrics {
        shard: d.u64()?,
        sessions: d.u64()?,
        changes: d.u64()?,
        peak_allocation: d.f64()?,
        max_delay: d.u64()?,
        signalling_cost: d.f64()?,
        bandwidth_cost: d.f64()?,
    })
}

/// Encodes one shard's supervision status (a fragment).
pub fn encode_shard_health(h: &ShardHealth, e: &mut Enc<'_>) {
    e.u64(h.shard);
    e.bool(h.healthy);
    e.u64(h.restarts);
    e.opt_str(h.last_failure.as_deref());
}

/// Decodes one shard's supervision status.
///
/// # Errors
///
/// Any [`CodecError`] raised by a malformed fragment.
pub fn decode_shard_health(d: &mut Dec<'_>) -> Result<ShardHealth, CodecError> {
    Ok(ShardHealth {
        shard: d.u64()?,
        healthy: d.bool()?,
        restarts: d.u64()?,
        last_failure: d.opt_str()?,
    })
}

/// Encodes a full service snapshot as a self-contained versioned payload.
pub fn encode_snapshot(snap: &ServiceSnapshot, buf: &mut Vec<u8>) {
    let mut e = Enc::new(buf);
    e.u8(CODEC_VERSION);
    encode_snapshot_fragment(snap, &mut e);
}

/// Encodes a snapshot without the version byte, for embedding inside a
/// larger payload that already carries one.
pub fn encode_snapshot_fragment(snap: &ServiceSnapshot, e: &mut Enc<'_>) {
    e.u64(snap.ticks);
    e.u64(snap.shards);
    e.u64(snap.admitted);
    e.u64(snap.rejected);
    e.u64(snap.restarts);
    e.u64(snap.events_replayed);
    encode_global_metrics(&snap.global, e);
    e.len(snap.per_shard.len());
    for s in &snap.per_shard {
        encode_shard_metrics(s, e);
    }
    e.len(snap.health.len());
    for h in &snap.health {
        encode_shard_health(h, e);
    }
    e.len(snap.sessions.len());
    for m in &snap.sessions {
        encode_session_metrics(m, e);
    }
}

/// Decodes a self-contained snapshot payload (version byte + no trailing
/// bytes).
///
/// # Errors
///
/// Any [`CodecError`] raised by a malformed payload.
pub fn decode_snapshot(payload: &[u8]) -> Result<ServiceSnapshot, CodecError> {
    let mut d = Dec::new(payload);
    d.version()?;
    let snap = decode_snapshot_fragment(&mut d)?;
    d.finish()?;
    Ok(snap)
}

/// Decodes a snapshot fragment (no version byte, trailing bytes allowed —
/// the embedding payload owns them).
///
/// # Errors
///
/// Any [`CodecError`] raised by a malformed fragment.
pub fn decode_snapshot_fragment(d: &mut Dec<'_>) -> Result<ServiceSnapshot, CodecError> {
    let ticks = d.u64()?;
    let shards = d.u64()?;
    let admitted = d.u64()?;
    let rejected = d.u64()?;
    let restarts = d.u64()?;
    let events_replayed = d.u64()?;
    let global = decode_global_metrics(d)?;
    let n = d.len(8)?;
    let mut per_shard = Vec::with_capacity(n);
    for _ in 0..n {
        per_shard.push(decode_shard_metrics(d)?);
    }
    let n = d.len(8)?;
    let mut health = Vec::with_capacity(n);
    for _ in 0..n {
        health.push(decode_shard_health(d)?);
    }
    let n = d.len(8)?;
    let mut sessions = Vec::with_capacity(n);
    for _ in 0..n {
        sessions.push(decode_session_metrics(d)?);
    }
    Ok(ServiceSnapshot {
        ticks,
        shards,
        admitted,
        rejected,
        restarts,
        events_replayed,
        global,
        per_shard,
        health,
        sessions,
    })
}

// ---------------------------------------------------------------------------
// Checkpoint family v1 — the row-oriented reference codec. The columnar
// module below replaced it on the worker/driver and migration paths; it
// is retained as the independent oracle the lockstep proptests compare
// against, and as the legacy decode path for v1 migration blobs.
// ---------------------------------------------------------------------------

#[cfg_attr(not(test), allow(dead_code))]
pub(crate) mod checkpoint {
    use super::*;
    use crate::meter::MeterCheckpoint;
    use crate::shard::{GroupCheckpoint, SessionCheckpoint, ShardStateCheckpoint};
    use cdba_analysis::cost::CostModel;
    use cdba_core::bounds::{HighTrackerState, LowTrackerState};
    use cdba_core::config::{MultiConfig, SingleConfig};
    use cdba_core::multi::pool::{PoolCheckpoint, SlotCheckpoint};
    use cdba_core::single::SingleCheckpoint;
    use cdba_core::stage::{StageKind, StageLog, StageRecord};
    use cdba_sim::streaming::DelayTrackerState;

    fn enc_cost(c: &CostModel, e: &mut Enc<'_>) {
        e.f64(c.per_bandwidth_tick);
        e.f64(c.per_change);
    }

    fn dec_cost(d: &mut Dec<'_>) -> Result<CostModel, CodecError> {
        Ok(CostModel {
            per_bandwidth_tick: d.f64()?,
            per_change: d.f64()?,
        })
    }

    fn enc_delay(t: &DelayTrackerState, e: &mut Enc<'_>) {
        e.len(t.pending.len());
        for &(tick, bits) in &t.pending {
            e.usize(tick);
            e.f64(bits);
        }
        e.usize(t.tick);
        e.usize(t.max_delay);
        e.f64(t.max_delay_exact);
    }

    fn dec_delay(d: &mut Dec<'_>) -> Result<DelayTrackerState, CodecError> {
        let n = d.len(16)?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            pending.push((d.usize()?, d.f64()?));
        }
        Ok(DelayTrackerState {
            pending,
            tick: d.usize()?,
            max_delay: d.usize()?,
            max_delay_exact: d.f64()?,
        })
    }

    fn enc_meter(m: &MeterCheckpoint, e: &mut Enc<'_>) {
        enc_cost(&m.cost, e);
        e.usize(m.window);
        e.f64(m.shadow_backlog);
        enc_delay(&m.delay, e);
        e.len(m.recent.len());
        for &(a, b) in &m.recent {
            e.f64(a);
            e.f64(b);
        }
        e.f64(m.window_arrived);
        e.f64(m.window_allocated);
        e.opt_f64(m.min_windowed_utilization);
        e.f64(m.current_alloc);
        e.u64(m.ticks);
        e.u64(m.changes);
        e.f64(m.peak_allocation);
        e.f64(m.total_arrived);
        e.f64(m.total_served);
        e.f64(m.total_allocated);
    }

    fn dec_meter(d: &mut Dec<'_>) -> Result<MeterCheckpoint, CodecError> {
        let cost = dec_cost(d)?;
        let window = d.usize()?;
        let shadow_backlog = d.f64()?;
        let delay = dec_delay(d)?;
        let n = d.len(16)?;
        let mut recent = Vec::with_capacity(n);
        for _ in 0..n {
            recent.push((d.f64()?, d.f64()?));
        }
        Ok(MeterCheckpoint {
            cost,
            window,
            shadow_backlog,
            delay,
            recent,
            window_arrived: d.f64()?,
            window_allocated: d.f64()?,
            min_windowed_utilization: d.opt_f64()?,
            current_alloc: d.f64()?,
            ticks: d.u64()?,
            changes: d.u64()?,
            peak_allocation: d.f64()?,
            total_arrived: d.f64()?,
            total_served: d.f64()?,
            total_allocated: d.f64()?,
        })
    }

    fn enc_stage_log(log: &StageLog, e: &mut Enc<'_>) {
        let records = log.records();
        e.len(records.len());
        for r in records {
            e.usize(r.start);
            e.opt_u64(r.end.map(|x| x as u64));
            e.u8(match r.kind {
                StageKind::BoundsCrossed => 0,
                StageKind::RegularOverflow => 1,
                StageKind::GlobalBoundsCrossed => 2,
                StageKind::BudgetChanged => 3,
            });
        }
    }

    fn dec_stage_log(d: &mut Dec<'_>) -> Result<StageLog, CodecError> {
        let n = d.len(10)?;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let start = d.usize()?;
            let end = match d.opt_u64()? {
                None => None,
                Some(v) => Some(usize::try_from(v).map_err(|_| CodecError::BadLength(v))?),
            };
            let kind = match d.u8()? {
                0 => StageKind::BoundsCrossed,
                1 => StageKind::RegularOverflow,
                2 => StageKind::GlobalBoundsCrossed,
                3 => StageKind::BudgetChanged,
                t => return Err(CodecError::BadTag(t)),
            };
            records.push(StageRecord { start, end, kind });
        }
        Ok(StageLog::from_records(records))
    }

    fn enc_low(t: &LowTrackerState, e: &mut Enc<'_>) {
        e.usize(t.d_o);
        e.len(t.hull.len());
        for &(x, y) in &t.hull {
            e.f64(x);
            e.f64(y);
        }
        e.usize(t.ticks);
        e.f64(t.total);
        e.f64(t.low);
    }

    fn dec_low(d: &mut Dec<'_>) -> Result<LowTrackerState, CodecError> {
        let d_o = d.usize()?;
        let n = d.len(16)?;
        let mut hull = Vec::with_capacity(n);
        for _ in 0..n {
            hull.push((d.f64()?, d.f64()?));
        }
        Ok(LowTrackerState {
            d_o,
            hull,
            ticks: d.usize()?,
            total: d.f64()?,
            low: d.f64()?,
        })
    }

    fn enc_high(t: &HighTrackerState, e: &mut Enc<'_>) {
        e.f64(t.u_o);
        e.usize(t.w);
        e.f64(t.grace);
        e.len(t.window.len());
        for &a in &t.window {
            e.f64(a);
        }
        e.f64(t.window_sum);
        e.opt_f64(t.min_window_sum);
        e.usize(t.ticks);
    }

    fn dec_high(d: &mut Dec<'_>) -> Result<HighTrackerState, CodecError> {
        let u_o = d.f64()?;
        let w = d.usize()?;
        let grace = d.f64()?;
        let n = d.len(8)?;
        let mut window = Vec::with_capacity(n);
        for _ in 0..n {
            window.push(d.f64()?);
        }
        Ok(HighTrackerState {
            u_o,
            w,
            grace,
            window,
            window_sum: d.f64()?,
            min_window_sum: d.opt_f64()?,
            ticks: d.usize()?,
        })
    }

    fn enc_single(cp: &SingleCheckpoint, e: &mut Enc<'_>) {
        e.f64(cp.cfg.b_max);
        e.usize(cp.cfg.d_o);
        e.f64(cp.cfg.u_o);
        e.usize(cp.cfg.w);
        e.f64(cp.backlog);
        match &cp.stage_low {
            None => e.u8(0),
            Some(t) => {
                e.u8(1);
                enc_low(t, e);
            }
        }
        match &cp.stage_high {
            None => e.u8(0),
            Some(t) => {
                e.u8(1);
                enc_high(t, e);
            }
        }
        e.f64(cp.b_on);
        e.usize(cp.tick);
        enc_stage_log(&cp.stages, e);
    }

    fn dec_single(d: &mut Dec<'_>) -> Result<SingleCheckpoint, CodecError> {
        let cfg = SingleConfig {
            b_max: d.f64()?,
            d_o: d.usize()?,
            u_o: d.f64()?,
            w: d.usize()?,
        };
        let backlog = d.f64()?;
        let stage_low = match d.u8()? {
            0 => None,
            1 => Some(dec_low(d)?),
            t => return Err(CodecError::BadTag(t)),
        };
        let stage_high = match d.u8()? {
            0 => None,
            1 => Some(dec_high(d)?),
            t => return Err(CodecError::BadTag(t)),
        };
        Ok(SingleCheckpoint {
            cfg,
            backlog,
            stage_low,
            stage_high,
            b_on: d.f64()?,
            tick: d.usize()?,
            stages: dec_stage_log(d)?,
        })
    }

    fn enc_pool(cp: &PoolCheckpoint, e: &mut Enc<'_>) {
        e.usize(cp.cfg.k);
        e.f64(cp.cfg.b_o);
        e.usize(cp.cfg.d_o);
        e.len(cp.slots.len());
        for s in &cp.slots {
            e.u64(s.id);
            e.f64(s.br);
            e.f64(s.bo);
            e.f64(s.qr_backlog);
            e.f64(s.qo_backlog);
            e.bool(s.leaving);
        }
        e.len(cp.pending.len());
        for &(slot, bits) in &cp.pending {
            e.usize(slot);
            e.f64(bits);
        }
        e.u64(cp.next_id);
        e.usize(cp.tick);
        e.usize(cp.phase_anchor);
        enc_stage_log(&cp.stages, e);
        e.usize(cp.membership_changes);
    }

    fn dec_pool(d: &mut Dec<'_>) -> Result<PoolCheckpoint, CodecError> {
        let k = d.usize()?;
        let b_o = d.f64()?;
        let d_o = d.usize()?;
        let cfg = MultiConfig { k, b_o, d_o };
        let n = d.len(41)?;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            slots.push(SlotCheckpoint {
                id: d.u64()?,
                br: d.f64()?,
                bo: d.f64()?,
                qr_backlog: d.f64()?,
                qo_backlog: d.f64()?,
                leaving: d.bool()?,
            });
        }
        let n = d.len(16)?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            pending.push((d.usize()?, d.f64()?));
        }
        Ok(PoolCheckpoint {
            cfg,
            slots,
            pending,
            next_id: d.u64()?,
            tick: d.usize()?,
            phase_anchor: d.usize()?,
            stages: dec_stage_log(d)?,
            membership_changes: d.usize()?,
        })
    }

    fn enc_session(cp: &SessionCheckpoint, e: &mut Enc<'_>) {
        e.u64(cp.key);
        e.str(&cp.tenant);
        enc_meter(&cp.meter, e);
        e.bool(cp.leaving);
        match &cp.dedicated {
            None => e.u8(0),
            Some(alg) => {
                e.u8(1);
                enc_single(alg, e);
            }
        }
        match cp.pooled {
            None => e.u8(0),
            Some((group, member)) => {
                e.u8(1);
                e.u64(group);
                e.u64(member);
            }
        }
    }

    fn dec_session(d: &mut Dec<'_>) -> Result<SessionCheckpoint, CodecError> {
        let key = d.u64()?;
        let tenant: Arc<str> = Arc::from(d.str()?.as_str());
        let meter = dec_meter(d)?;
        let leaving = d.bool()?;
        let dedicated = match d.u8()? {
            0 => None,
            1 => Some(dec_single(d)?),
            t => return Err(CodecError::BadTag(t)),
        };
        let pooled = match d.u8()? {
            0 => None,
            1 => Some((d.u64()?, d.u64()?)),
            t => return Err(CodecError::BadTag(t)),
        };
        Ok(SessionCheckpoint {
            key,
            tenant,
            meter,
            leaving,
            dedicated,
            pooled,
        })
    }

    pub(crate) fn enc_group(cp: &GroupCheckpoint, e: &mut Enc<'_>) {
        e.u64(cp.group);
        enc_pool(&cp.pool, e);
        e.len(cp.members.len());
        for &(member, key) in &cp.members {
            e.u64(member);
            e.u64(key);
        }
    }

    pub(crate) fn dec_group(d: &mut Dec<'_>) -> Result<GroupCheckpoint, CodecError> {
        let group = d.u64()?;
        let pool = dec_pool(d)?;
        let n = d.len(16)?;
        let mut members = Vec::with_capacity(n);
        for _ in 0..n {
            members.push((d.u64()?, d.u64()?));
        }
        Ok(GroupCheckpoint {
            group,
            pool,
            members,
        })
    }

    /// Encodes a shard checkpoint into `buf` (appending — callers reuse
    /// the buffer across captures).
    pub(crate) fn encode(cp: &ShardStateCheckpoint, buf: &mut Vec<u8>) {
        let mut e = Enc::new(buf);
        e.u8(CODEC_VERSION);
        e.len(cp.sessions.len());
        for s in &cp.sessions {
            enc_session(s, &mut e);
        }
        e.len(cp.groups.len());
        for g in &cp.groups {
            enc_group(g, &mut e);
        }
        e.len(cp.retired.len());
        for m in cp.retired.iter() {
            encode_session_metrics(m, &mut e);
        }
        e.u64(cp.ticks);
    }

    /// Decodes a shard checkpoint payload.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] raised by a malformed payload.
    pub(crate) fn decode(payload: &[u8]) -> Result<ShardStateCheckpoint, CodecError> {
        let mut d = Dec::new(payload);
        d.version()?;
        let n = d.len(8)?;
        let mut sessions = Vec::with_capacity(n);
        for _ in 0..n {
            sessions.push(dec_session(&mut d)?);
        }
        let n = d.len(8)?;
        let mut groups = Vec::with_capacity(n);
        for _ in 0..n {
            groups.push(dec_group(&mut d)?);
        }
        let n = d.len(8)?;
        let mut retired = Vec::with_capacity(n);
        for _ in 0..n {
            retired.push(decode_session_metrics(&mut d)?);
        }
        let cp = ShardStateCheckpoint {
            sessions,
            groups,
            retired: Arc::new(retired),
            ticks: d.u64()?,
        };
        d.finish()?;
        Ok(cp)
    }

    /// Encodes one session's checkpoint as a standalone payload — the
    /// migration blob a live session travels between processes as.
    pub(crate) fn encode_session(cp: &SessionCheckpoint, buf: &mut Vec<u8>) {
        let mut e = Enc::new(buf);
        e.u8(CODEC_VERSION);
        enc_session(cp, &mut e);
    }

    /// Decodes a standalone session-checkpoint payload.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] raised by a malformed payload.
    pub(crate) fn decode_session(payload: &[u8]) -> Result<SessionCheckpoint, CodecError> {
        let mut d = Dec::new(payload);
        d.version()?;
        let cp = dec_session(&mut d)?;
        d.finish()?;
        Ok(cp)
    }
}

// ---------------------------------------------------------------------------
// Columnar checkpoint frames (v2): schema-described struct-of-arrays.
// ---------------------------------------------------------------------------

pub(crate) mod columnar {
    //! The columnar checkpoint codec: shard state as schema-described
    //! struct-of-arrays columns mirroring the kernel's `HotState` layout.
    //!
    //! A frame is: version byte ([`FRAME_VERSION`], distinct from the v1
    //! [`CODEC_VERSION`] so the two formats self-select), a kind byte
    //! (genesis = every live session, incremental = only sessions dirtied
    //! since the previous frame), the shard clock and row count, the
    //! shard-uniform configuration (window, pricing, algorithm parameters
    //! — one copy per frame instead of one per session), a tenant string
    //! table, then the column set. Every column is self-describing
    //! (`name, type, width, count, body length`), so a decoder can skip
    //! columns it does not know and reject bodies whose byte length
    //! disagrees with their cell count *before* touching any state.
    //! Fixed-width columns carry one cell per row; ragged columns
    //! (tracker hulls, window rings, delay spills, stage logs) carry the
    //! rows' runs concatenated in row order, with a sibling `*_len`
    //! fixed column giving each row's run length. Ring columns are
    //! normalized to head = 0 on encode, so no cursor columns travel.
    //! After the columns: the group section (always the *full* group set
    //! — group state is tiny and rewriting it wholesale keeps apply
    //! trivially idempotent per frame), the tombstone list (keys removed
    //! since the previous frame; must be empty in a genesis frame), and
    //! the retired-metrics delta (the suffix appended since the previous
    //! frame; genesis carries the full list).
    //!
    //! `f64` cells are raw IEEE-754 bits, so the hot-state sentinels
    //! (`+∞` for "still in grace", `NaN` for "no utilization minimum
    //! yet") travel verbatim and the decode is bitwise.

    use super::*;
    use crate::meter::MeterCheckpoint;
    use crate::shard::{
        GroupCheckpoint, SessionCheckpoint, F_DEDICATED, F_LEAVING, F_LIVE, F_STAGE_OPEN,
    };
    use cdba_analysis::cost::CostModel;
    use cdba_core::bounds::{HighTrackerState, LowTrackerState};
    use cdba_core::config::SingleConfig;
    use cdba_core::single::SingleCheckpoint;
    use cdba_core::stage::{StageKind, StageLog, StageRecord};
    use cdba_sim::streaming::DelayTrackerState;
    use std::collections::HashMap;

    /// Version byte leading every columnar frame.
    pub(crate) const FRAME_VERSION: u8 = 2;
    /// Frame kind: every live session, full retired list, no tombstones.
    pub(crate) const KIND_GENESIS: u8 = 0;
    /// Frame kind: only sessions dirtied since the previous frame.
    pub(crate) const KIND_INCREMENTAL: u8 = 1;

    /// Cell type: `u64`, little-endian.
    pub(crate) const T_U64: u8 = 0;
    /// Cell type: `f64` as raw IEEE-754 bits, little-endian.
    pub(crate) const T_F64: u8 = 1;
    /// Cell type: `u32`, little-endian.
    pub(crate) const T_U32: u8 = 2;
    /// Ragged cell type: a run of `f64`s (the high-tracker ring).
    pub(crate) const T_RF64: u8 = 3;
    /// Ragged cell type: a run of `(f64, f64)` pairs (hull, recent ring).
    pub(crate) const T_RPAIR: u8 = 4;
    /// Ragged cell type: a run of `(u64, f64)` delay-FIFO entries.
    pub(crate) const T_RPEND: u8 = 5;
    /// Ragged cell type: a run of stage records
    /// (`start u64, end u64 (u64::MAX = open), kind u8`).
    pub(crate) const T_RSTAGE: u8 = 6;

    /// Bytes per cell for each type tag.
    pub(crate) const fn type_width(ty: u8) -> u32 {
        match ty {
            T_U32 => 4,
            T_RPAIR | T_RPEND => 16,
            T_RSTAGE => 17,
            _ => 8, // T_U64 | T_F64 | T_RF64
        }
    }

    // Column indices, fixed by the encoder. Decoders resolve columns by
    // (name, type) — the indices are a convenience for the canonical
    // schema, not part of the wire contract — so a future frame may
    // append columns without breaking older readers.
    pub(crate) const C_KEY: usize = 0;
    pub(crate) const C_TENANT: usize = 1;
    pub(crate) const C_FLAGS: usize = 2;
    pub(crate) const C_GROUP: usize = 3;
    pub(crate) const C_MEMBER: usize = 4;
    /// First of the 16 `HotState` f64 scalar columns (declaration order).
    pub(crate) const C_F64: usize = 5;
    /// First of the 6 `HotState` u64 counter columns (declaration order).
    pub(crate) const C_U64: usize = 21;
    pub(crate) const C_HULL_LEN: usize = 27;
    pub(crate) const C_HULL: usize = 28;
    pub(crate) const C_HIGH_LEN: usize = 29;
    pub(crate) const C_HIGH: usize = 30;
    pub(crate) const C_RECENT_LEN: usize = 31;
    pub(crate) const C_RECENT: usize = 32;
    pub(crate) const C_PEND_LEN: usize = 33;
    pub(crate) const C_PEND: usize = 34;
    pub(crate) const C_STAGE_LEN: usize = 35;
    pub(crate) const C_STAGES: usize = 36;
    pub(crate) const NCOLS: usize = 37;

    /// The canonical schema: `(name, type)` per column index.
    pub(crate) const SPECS: [(&str, u8); NCOLS] = [
        ("key", T_U64),
        ("tenant", T_U32),
        ("flags", T_U32),
        ("group", T_U64),
        ("member", T_U64),
        ("shadow_backlog", T_F64),
        ("current_alloc", T_F64),
        ("peak_alloc", T_F64),
        ("total_arrived", T_F64),
        ("total_served", T_F64),
        ("total_allocated", T_F64),
        ("window_arrived", T_F64),
        ("window_allocated", T_F64),
        ("backlog", T_F64),
        ("b_on", T_F64),
        ("low_total", T_F64),
        ("low_low", T_F64),
        ("high_window_sum", T_F64),
        ("high_min_window_sum", T_F64),
        ("min_util", T_F64),
        ("max_delay_exact", T_F64),
        ("alg_tick", T_U64),
        ("stage_ticks", T_U64),
        ("meter_ticks", T_U64),
        ("changes", T_U64),
        ("delay_tick", T_U64),
        ("max_delay", T_U64),
        ("hull_len", T_U32),
        ("hull", T_RPAIR),
        ("high_len", T_U32),
        ("high", T_RF64),
        ("recent_len", T_U32),
        ("recent", T_RPAIR),
        ("pend_len", T_U32),
        ("pend", T_RPEND),
        ("stage_len", T_U32),
        ("stages", T_RSTAGE),
    ];

    fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64(buf: &mut Vec<u8>, v: f64) {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn stage_kind_tag(kind: StageKind) -> u8 {
        match kind {
            StageKind::BoundsCrossed => 0,
            StageKind::RegularOverflow => 1,
            StageKind::GlobalBoundsCrossed => 2,
            StageKind::BudgetChanged => 3,
        }
    }

    fn stage_kind_from_tag(tag: u8) -> StageKind {
        match tag {
            0 => StageKind::BoundsCrossed,
            1 => StageKind::RegularOverflow,
            2 => StageKind::GlobalBoundsCrossed,
            3 => StageKind::BudgetChanged,
            t => unreachable!("stage tag {t} survived parse validation"),
        }
    }

    /// A circular buffer viewed as its (up to two) contiguous runs,
    /// oldest first — how rings and deques are borrowed for encoding
    /// without materializing a session-sized temporary.
    pub(crate) type RingHalves<'a, T> = (&'a [T], &'a [T]);

    /// The delay-FIFO source of one encoded row. The shard keeps the FIFO
    /// head inline in the pend columns with the tail spilled to a
    /// `VecDeque`; a `SessionCheckpoint` keeps one flat list. Both feed
    /// the same `pend` column.
    pub(crate) enum PendRows<'a> {
        /// Inline head + the spill deque's two contiguous halves.
        Split {
            head: Option<(u64, f64)>,
            spill: RingHalves<'a, (u64, f64)>,
        },
        /// A checkpoint's flat pending list.
        Flat(&'a [(usize, f64)]),
    }

    /// One session row's identity and ragged state, borrowed from
    /// wherever it lives (slab columns or a `SessionCheckpoint`) — the
    /// shared input of the shard checkpoint path and the single-session
    /// migration path. The 22 fixed scalar cells are *not* here: they
    /// stream column-major via [`ColumnSink::put_f64_col`] /
    /// [`ColumnSink::put_u64_col`] straight from the shard's per-field
    /// columns (or per cell, for the one-row migration path). Rings are
    /// `(first, second)` contiguous halves so the encoder never
    /// materializes a session-sized temporary.
    pub(crate) struct RowRef<'a> {
        pub key: u64,
        pub tenant: &'a Arc<str>,
        /// `F_*` bits; the encoder's caller masks `F_DIRTY` out.
        pub flags: u32,
        /// Owning group id; `u64::MAX` for dedicated sessions.
        pub group: u64,
        /// Raw pool member id; 0 for dedicated sessions.
        pub member: u64,
        pub hull: &'a [(f64, f64)],
        pub high: RingHalves<'a, f64>,
        pub recent: RingHalves<'a, (f64, f64)>,
        pub pend: PendRows<'a>,
        pub stages: &'a [StageRecord],
    }

    /// Everything frame-scoped the encoder needs beyond the rows.
    pub(crate) struct FrameHeader {
        pub kind: u8,
        /// The shard clock at capture.
        pub ticks: u64,
        /// The shared meter/tracker window `W`.
        pub w: u32,
        pub cost: CostModel,
        /// Single-session config (`b_max`, `d_o`, `u_o`; `w` above) — the
        /// shard-uniform parameters every dedicated session runs.
        pub b_max: f64,
        pub d_o: u64,
        pub u_o: f64,
    }

    /// The pooled column encoder: one buffer per column, reused across
    /// frames, so steady-state encoding allocates nothing once the
    /// buffers have grown to the working set.
    pub(crate) struct ColumnSink {
        bufs: Vec<Vec<u8>>,
        rows: u32,
        /// Per-frame tenant string table, in first-appearance order (the
        /// deterministic interning order; the map is lookup only).
        tenants: Vec<Arc<str>>,
        tenant_idx: HashMap<Arc<str>, u32>,
    }

    impl ColumnSink {
        pub(crate) fn new() -> Self {
            ColumnSink {
                bufs: (0..NCOLS).map(|_| Vec::new()).collect(),
                rows: 0,
                tenants: Vec::new(),
                tenant_idx: HashMap::new(),
            }
        }

        /// Resets for a new frame, keeping every buffer's allocation.
        pub(crate) fn begin(&mut self) {
            for b in &mut self.bufs {
                b.clear();
            }
            self.rows = 0;
            self.tenants.clear();
            self.tenant_idx.clear();
        }

        fn intern(&mut self, tenant: &Arc<str>) -> u32 {
            if let Some(&i) = self.tenant_idx.get(tenant.as_ref() as &str) {
                return i;
            }
            let i = u32::try_from(self.tenants.len()).expect("tenant table fits a u32");
            self.tenants.push(Arc::clone(tenant));
            self.tenant_idx.insert(Arc::clone(tenant), i);
            i
        }

        /// Appends one session row's identity and ragged columns; the
        /// fixed scalar columns stream separately
        /// ([`ColumnSink::put_f64_col`] and friends), one column at a
        /// time.
        pub(crate) fn push_row(&mut self, r: &RowRef<'_>) {
            self.rows += 1;
            let tenant = self.intern(r.tenant);
            put_u64(&mut self.bufs[C_KEY], r.key);
            put_u32(&mut self.bufs[C_TENANT], tenant);
            put_u32(&mut self.bufs[C_FLAGS], r.flags);
            put_u64(&mut self.bufs[C_GROUP], r.group);
            put_u64(&mut self.bufs[C_MEMBER], r.member);
            put_u32(&mut self.bufs[C_HULL_LEN], r.hull.len() as u32);
            for &(x, y) in r.hull {
                put_f64(&mut self.bufs[C_HULL], x);
                put_f64(&mut self.bufs[C_HULL], y);
            }
            put_u32(
                &mut self.bufs[C_HIGH_LEN],
                (r.high.0.len() + r.high.1.len()) as u32,
            );
            for &a in r.high.0.iter().chain(r.high.1) {
                put_f64(&mut self.bufs[C_HIGH], a);
            }
            put_u32(
                &mut self.bufs[C_RECENT_LEN],
                (r.recent.0.len() + r.recent.1.len()) as u32,
            );
            for &(a, b) in r.recent.0.iter().chain(r.recent.1) {
                put_f64(&mut self.bufs[C_RECENT], a);
                put_f64(&mut self.bufs[C_RECENT], b);
            }
            match r.pend {
                PendRows::Split { head, spill } => {
                    let n = usize::from(head.is_some()) + spill.0.len() + spill.1.len();
                    put_u32(&mut self.bufs[C_PEND_LEN], n as u32);
                    for &(t, b) in head.iter().chain(spill.0).chain(spill.1) {
                        put_u64(&mut self.bufs[C_PEND], t);
                        put_f64(&mut self.bufs[C_PEND], b);
                    }
                }
                PendRows::Flat(pending) => {
                    put_u32(&mut self.bufs[C_PEND_LEN], pending.len() as u32);
                    for &(t, b) in pending {
                        put_u64(&mut self.bufs[C_PEND], t as u64);
                        put_f64(&mut self.bufs[C_PEND], b);
                    }
                }
            }
            put_u32(&mut self.bufs[C_STAGE_LEN], r.stages.len() as u32);
            for rec in r.stages {
                put_u64(&mut self.bufs[C_STAGES], rec.start as u64);
                put_u64(
                    &mut self.bufs[C_STAGES],
                    rec.end.map_or(u64::MAX, |e| e as u64),
                );
                self.bufs[C_STAGES].push(stage_kind_tag(rec.kind));
            }
        }

        /// Streams `src[i]` for every listed slot into fixed column
        /// `col` — the shard's column-major scalar encode: one
        /// sequential append pass per column, straight from the
        /// per-field slab column, no per-row gather through a packed
        /// record.
        pub(crate) fn put_f64_col(&mut self, col: usize, src: &[f64], idx: &[u32]) {
            debug_assert_eq!(SPECS[col].1, T_F64);
            let buf = &mut self.bufs[col];
            buf.reserve(idx.len() * 8);
            for &i in idx {
                buf.extend_from_slice(&src[i as usize].to_bits().to_le_bytes());
            }
        }

        /// [`ColumnSink::put_f64_col`] for a u64 column.
        pub(crate) fn put_u64_col(&mut self, col: usize, src: &[u64], idx: &[u32]) {
            debug_assert_eq!(SPECS[col].1, T_U64);
            let buf = &mut self.bufs[col];
            buf.reserve(idx.len() * 8);
            for &i in idx {
                buf.extend_from_slice(&src[i as usize].to_le_bytes());
            }
        }

        /// Appends one f64 cell to fixed column `col` — the one-row
        /// migration frame's scalar path.
        pub(crate) fn put_f64_cell(&mut self, col: usize, v: f64) {
            debug_assert_eq!(SPECS[col].1, T_F64);
            put_f64(&mut self.bufs[col], v);
        }

        /// Appends one u64 cell to fixed column `col`.
        pub(crate) fn put_u64_cell(&mut self, col: usize, v: u64) {
            debug_assert_eq!(SPECS[col].1, T_U64);
            put_u64(&mut self.bufs[col], v);
        }

        /// Assembles the frame: header, tenant table, schema + column
        /// bodies, groups, tombstones, retired delta. Appends to `out`.
        pub(crate) fn finish(
            &self,
            hdr: &FrameHeader,
            groups: &[GroupCheckpoint],
            tombstones: &[u64],
            retired: &[SessionMetrics],
            out: &mut Vec<u8>,
        ) {
            debug_assert!(
                hdr.kind != KIND_GENESIS || tombstones.is_empty(),
                "a genesis frame carries no tombstones"
            );
            let mut e = Enc::new(out);
            e.u8(FRAME_VERSION);
            e.u8(hdr.kind);
            e.u64(hdr.ticks);
            e.u32(self.rows);
            e.u32(hdr.w);
            e.f64(hdr.cost.per_bandwidth_tick);
            e.f64(hdr.cost.per_change);
            e.f64(hdr.b_max);
            e.u64(hdr.d_o);
            e.f64(hdr.u_o);
            e.len(self.tenants.len());
            for t in &self.tenants {
                e.str(t.as_ref());
            }
            e.u32(NCOLS as u32);
            for (i, &(name, ty)) in SPECS.iter().enumerate() {
                let body = &self.bufs[i];
                let width = type_width(ty);
                e.str(name);
                e.u8(ty);
                e.u32(width);
                e.u32((body.len() / width as usize) as u32);
                e.u32(u32::try_from(body.len()).expect("column body fits a u32"));
                e.raw(body);
            }
            e.len(groups.len());
            for g in groups {
                checkpoint::enc_group(g, &mut e);
            }
            e.len(tombstones.len());
            for &k in tombstones {
                e.u64(k);
            }
            e.len(retired.len());
            for m in retired {
                encode_session_metrics(m, &mut e);
            }
        }
    }

    /// One parsed column: the schema entry plus its raw body, still
    /// borrowing the payload (cells are read in place — no per-session
    /// copy is made until the rows land in slab columns).
    pub(crate) struct RawColumn<'a> {
        pub name: &'a str,
        pub ty: u8,
        pub count: u32,
        pub body: &'a [u8],
    }

    /// A structurally validated frame: header fields, the tenant table
    /// and column bodies borrowed zero-copy from the payload, and the
    /// (small) eagerly decoded group/tombstone/retired sections. All
    /// *structural* invariants hold — version/kind/type tags are known,
    /// every body length equals `count × width`, stage-kind bytes are in
    /// domain — but nothing row-semantic has been checked yet; that is
    /// the applier's job, against the target shard.
    pub(crate) struct RawFrame<'a> {
        pub kind: u8,
        pub ticks: u64,
        pub rows: u32,
        pub w: u32,
        pub cost: CostModel,
        pub b_max: f64,
        pub d_o: u64,
        pub u_o: f64,
        pub strings: Vec<&'a str>,
        pub cols: Vec<RawColumn<'a>>,
        pub groups: Vec<GroupCheckpoint>,
        pub tombstones: Vec<u64>,
        pub retired: Vec<SessionMetrics>,
    }

    impl<'a> RawFrame<'a> {
        /// Resolves canonical column `idx` by `(name, type)`. Unknown
        /// extra columns in the frame are simply never looked up —
        /// forward compatibility — while a frame missing a canonical
        /// column fails here with a typed field.
        pub(crate) fn col(&self, idx: usize) -> Result<&RawColumn<'a>, &'static str> {
            let (name, ty) = SPECS[idx];
            self.cols
                .iter()
                .find(|c| c.name == name && c.ty == ty)
                .ok_or("columnar.missing")
        }

        /// Resolves canonical column `idx` and checks it carries exactly
        /// one cell per row.
        pub(crate) fn fixed(&self, idx: usize) -> Result<&RawColumn<'a>, &'static str> {
            let c = self.col(idx)?;
            if c.count != self.rows {
                return Err("columnar.count");
            }
            Ok(c)
        }
    }

    fn le8(body: &[u8], off: usize) -> u64 {
        u64::from_le_bytes(body[off..off + 8].try_into().expect("8"))
    }

    /// Cell `i` of a `T_U64` column.
    pub(crate) fn u64_at(c: &RawColumn<'_>, i: usize) -> u64 {
        le8(c.body, i * 8)
    }

    /// Cell `i` of a `T_U32` column.
    pub(crate) fn u32_at(c: &RawColumn<'_>, i: usize) -> u32 {
        u32::from_le_bytes(c.body[i * 4..i * 4 + 4].try_into().expect("4"))
    }

    /// Cell `i` of a `T_F64` or `T_RF64` column.
    pub(crate) fn f64_at(c: &RawColumn<'_>, i: usize) -> f64 {
        f64::from_bits(le8(c.body, i * 8))
    }

    /// Cell `i` of a `T_RPAIR` column.
    pub(crate) fn pair_at(c: &RawColumn<'_>, i: usize) -> (f64, f64) {
        (
            f64::from_bits(le8(c.body, i * 16)),
            f64::from_bits(le8(c.body, i * 16 + 8)),
        )
    }

    /// Cell `i` of a `T_RPEND` column.
    pub(crate) fn pend_at(c: &RawColumn<'_>, i: usize) -> (u64, f64) {
        (le8(c.body, i * 16), f64::from_bits(le8(c.body, i * 16 + 8)))
    }

    /// Cell `i` of a `T_RSTAGE` column (tag validity guaranteed by
    /// [`parse`]).
    pub(crate) fn stage_at(c: &RawColumn<'_>, i: usize) -> StageRecord {
        let off = i * 17;
        let end = le8(c.body, off + 8);
        StageRecord {
            start: le8(c.body, off) as usize,
            end: (end != u64::MAX).then_some(end as usize),
            kind: stage_kind_from_tag(c.body[off + 16]),
        }
    }

    /// Parses and structurally validates a columnar frame. Zero-copy for
    /// the column bodies and string table; the group/tombstone/retired
    /// tail sections (small, frame-scoped) decode eagerly.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadVersion`] for a non-v2 payload, [`CodecError::BadTag`]
    /// for an unknown kind/type/stage tag, [`CodecError::BadLength`] for a
    /// width or body-length mismatch, and any cursor error for truncation
    /// or trailing bytes.
    pub(crate) fn parse(payload: &[u8]) -> Result<RawFrame<'_>, CodecError> {
        let mut d = Dec::new(payload);
        match d.u8()? {
            FRAME_VERSION => {}
            v => return Err(CodecError::BadVersion(v)),
        }
        let kind = d.u8()?;
        if kind > KIND_INCREMENTAL {
            return Err(CodecError::BadTag(kind));
        }
        let ticks = d.u64()?;
        let rows = d.u32()?;
        let w = d.u32()?;
        let cost = CostModel {
            per_bandwidth_tick: d.f64()?,
            per_change: d.f64()?,
        };
        let b_max = d.f64()?;
        let d_o = d.u64()?;
        let u_o = d.f64()?;
        let n = d.len(4)?;
        let mut strings = Vec::with_capacity(n);
        for _ in 0..n {
            strings.push(d.str_ref()?);
        }
        let ncols = d.len(17)?;
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name = d.str_ref()?;
            let ty = d.u8()?;
            if ty > T_RSTAGE {
                return Err(CodecError::BadTag(ty));
            }
            let width = d.u32()?;
            if width != type_width(ty) {
                return Err(CodecError::BadLength(u64::from(width)));
            }
            let count = d.u32()?;
            let body_len = d.u32()? as usize;
            if body_len != count as usize * width as usize {
                return Err(CodecError::BadLength(body_len as u64));
            }
            let body = d.bytes(body_len)?;
            if ty == T_RSTAGE {
                for cell in body.chunks_exact(17) {
                    if cell[16] > 3 {
                        return Err(CodecError::BadTag(cell[16]));
                    }
                }
            }
            cols.push(RawColumn {
                name,
                ty,
                count,
                body,
            });
        }
        let n = d.len(8)?;
        let mut groups = Vec::with_capacity(n);
        for _ in 0..n {
            groups.push(checkpoint::dec_group(&mut d)?);
        }
        let n = d.len(8)?;
        let mut tombstones = Vec::with_capacity(n);
        for _ in 0..n {
            tombstones.push(d.u64()?);
        }
        let n = d.len(8)?;
        let mut retired = Vec::with_capacity(n);
        for _ in 0..n {
            retired.push(decode_session_metrics(&mut d)?);
        }
        d.finish()?;
        Ok(RawFrame {
            kind,
            ticks,
            rows,
            w,
            cost,
            b_max,
            d_o,
            u_o,
            strings,
            cols,
            groups,
            tombstones,
            retired,
        })
    }

    /// Maps a structural [`CodecError`] to the typed field names the
    /// service's `InvalidCheckpoint` error carries.
    pub(crate) fn error_field(err: &CodecError) -> &'static str {
        match err {
            CodecError::Eof => "columnar.truncated",
            CodecError::BadTag(_) => "columnar.type",
            CodecError::BadUtf8 => "columnar.utf8",
            CodecError::BadVersion(_) => "columnar.version",
            CodecError::BadLength(_) => "columnar.count",
            CodecError::Trailing(_) => "columnar.trailing",
        }
    }

    /// Encodes one session checkpoint as a standalone single-row genesis
    /// frame — the v2 migration blob. Same sink, same column layout, same
    /// decode path as a full shard frame: a quiesced session is just a
    /// one-session column slice.
    pub(crate) fn encode_session_frame(
        cp: &SessionCheckpoint,
        sink: &mut ColumnSink,
        out: &mut Vec<u8>,
    ) {
        sink.begin();
        let m = &cp.meter;
        let mut flags = F_LIVE;
        if cp.leaving {
            flags |= F_LEAVING;
        }
        let (group, member) = cp.pooled.map_or((u64::MAX, 0), |p| p);
        let mut f64s = [0.0f64; 16];
        f64s[0] = m.shadow_backlog;
        f64s[1] = m.current_alloc;
        f64s[2] = m.peak_allocation;
        f64s[3] = m.total_arrived;
        f64s[4] = m.total_served;
        f64s[5] = m.total_allocated;
        f64s[6] = m.window_arrived;
        f64s[7] = m.window_allocated;
        f64s[13] = f64::INFINITY; // grace sentinel when no stage travels
        f64s[14] = m.min_windowed_utilization.unwrap_or(f64::NAN);
        f64s[15] = m.delay.max_delay_exact;
        let mut u64s = [0u64; 6];
        u64s[2] = m.ticks;
        u64s[3] = m.changes;
        u64s[4] = m.delay.tick as u64;
        u64s[5] = m.delay.max_delay as u64;
        let mut hull: &[(f64, f64)] = &[];
        let mut high: &[f64] = &[];
        let mut stages: &[StageRecord] = &[];
        let (mut b_max, mut d_o, mut u_o) = (0.0f64, 0u64, 0.0f64);
        if let Some(alg) = &cp.dedicated {
            flags |= F_DEDICATED;
            b_max = alg.cfg.b_max;
            d_o = alg.cfg.d_o as u64;
            u_o = alg.cfg.u_o;
            f64s[8] = alg.backlog;
            f64s[9] = alg.b_on;
            u64s[0] = alg.tick as u64;
            stages = alg.stages.records();
            if let (Some(low), Some(high_t)) = (&alg.stage_low, &alg.stage_high) {
                flags |= F_STAGE_OPEN;
                u64s[1] = low.ticks as u64;
                f64s[10] = low.total;
                f64s[11] = low.low;
                f64s[12] = high_t.window_sum;
                f64s[13] = high_t.min_window_sum.unwrap_or(f64::INFINITY);
                hull = &low.hull;
                high = &high_t.window;
            }
        }
        sink.push_row(&RowRef {
            key: cp.key,
            tenant: &cp.tenant,
            flags,
            group,
            member,
            hull,
            high: (high, &[]),
            recent: (&m.recent, &[]),
            pend: PendRows::Flat(&m.delay.pending),
            stages,
        });
        for (j, &v) in f64s.iter().enumerate() {
            sink.put_f64_cell(C_F64 + j, v);
        }
        for (j, &v) in u64s.iter().enumerate() {
            sink.put_u64_cell(C_U64 + j, v);
        }
        sink.finish(
            &FrameHeader {
                kind: KIND_GENESIS,
                ticks: 0,
                w: m.window as u32,
                cost: m.cost,
                b_max,
                d_o,
                u_o,
            },
            &[],
            &[],
            &[],
            out,
        );
    }

    /// Materializes the [`SessionCheckpoint`] of a single-row migration
    /// frame, so the v2 import path feeds the exact `validate()` /
    /// `conforms()` gauntlet the v1 blob path established. Rejects frames
    /// that are not a pure one-session slice.
    ///
    /// # Errors
    ///
    /// A typed `columnar.*` field name, suitable for
    /// `CtrlError::InvalidCheckpoint`.
    pub(crate) fn session_from_frame(f: &RawFrame<'_>) -> Result<SessionCheckpoint, &'static str> {
        if f.kind != KIND_GENESIS
            || f.rows != 1
            || !f.groups.is_empty()
            || !f.tombstones.is_empty()
            || !f.retired.is_empty()
        {
            return Err("columnar.migration");
        }
        let w = f.w as usize;
        if w == 0 {
            return Err("columnar.w");
        }
        let flags = u32_at(f.fixed(C_FLAGS)?, 0);
        const KNOWN: u32 = F_LIVE | F_DEDICATED | F_LEAVING | F_STAGE_OPEN;
        if flags & !KNOWN != 0 || flags & F_LIVE == 0 {
            return Err("columnar.flags");
        }
        let group = u64_at(f.fixed(C_GROUP)?, 0);
        let dedicated = flags & F_DEDICATED != 0;
        if dedicated != (group == u64::MAX) || (!dedicated && flags & F_STAGE_OPEN != 0) {
            return Err("columnar.flags");
        }
        let tenant_i = u32_at(f.fixed(C_TENANT)?, 0) as usize;
        let tenant: Arc<str> = Arc::from(*f.strings.get(tenant_i).ok_or("columnar.tenant")?);
        let mut f64s = [0.0f64; 16];
        for (j, v) in f64s.iter_mut().enumerate() {
            *v = f64_at(f.fixed(C_F64 + j)?, 0);
        }
        let mut u64s = [0u64; 6];
        for (j, v) in u64s.iter_mut().enumerate() {
            *v = u64_at(f.fixed(C_U64 + j)?, 0);
        }
        let ragged =
            |len_idx: usize, col_idx: usize| -> Result<(usize, &RawColumn<'_>), &'static str> {
                let n = u32_at(f.fixed(len_idx)?, 0) as usize;
                let c = f.col(col_idx)?;
                if c.count as usize != n {
                    return Err("columnar.ragged");
                }
                Ok((n, c))
            };
        let (hull_n, hull_c) = ragged(C_HULL_LEN, C_HULL)?;
        let (high_n, high_c) = ragged(C_HIGH_LEN, C_HIGH)?;
        let (recent_n, recent_c) = ragged(C_RECENT_LEN, C_RECENT)?;
        let (pend_n, pend_c) = ragged(C_PEND_LEN, C_PEND)?;
        let (stage_n, stage_c) = ragged(C_STAGE_LEN, C_STAGES)?;
        if high_n > w || recent_n > w {
            return Err("columnar.ring");
        }
        let meter = MeterCheckpoint {
            cost: f.cost,
            window: w,
            shadow_backlog: f64s[0],
            delay: DelayTrackerState {
                pending: (0..pend_n)
                    .map(|j| {
                        let (t, b) = pend_at(pend_c, j);
                        (t as usize, b)
                    })
                    .collect(),
                tick: u64s[4] as usize,
                max_delay: u64s[5] as usize,
                max_delay_exact: f64s[15],
            },
            recent: (0..recent_n).map(|j| pair_at(recent_c, j)).collect(),
            window_arrived: f64s[6],
            window_allocated: f64s[7],
            min_windowed_utilization: (!f64s[14].is_nan()).then_some(f64s[14]),
            current_alloc: f64s[1],
            ticks: u64s[2],
            changes: u64s[3],
            peak_allocation: f64s[2],
            total_arrived: f64s[3],
            total_served: f64s[4],
            total_allocated: f64s[5],
        };
        let dedicated = if dedicated {
            let cfg = SingleConfig {
                b_max: f.b_max,
                d_o: f.d_o as usize,
                u_o: f.u_o,
                w,
            };
            let open = flags & F_STAGE_OPEN != 0;
            let stage_low = if open {
                Some(LowTrackerState {
                    d_o: cfg.d_o,
                    hull: (0..hull_n).map(|j| pair_at(hull_c, j)).collect(),
                    ticks: u64s[1] as usize,
                    total: f64s[10],
                    low: f64s[11],
                })
            } else {
                None
            };
            let stage_high = if open {
                Some(HighTrackerState {
                    u_o: cfg.u_o,
                    w,
                    grace: cfg.b_max,
                    window: (0..high_n).map(|j| f64_at(high_c, j)).collect(),
                    window_sum: f64s[12],
                    min_window_sum: (!f64s[13].is_infinite()).then_some(f64s[13]),
                    ticks: u64s[1] as usize,
                })
            } else {
                None
            };
            Some(SingleCheckpoint {
                cfg,
                backlog: f64s[8],
                stage_low,
                stage_high,
                b_on: f64s[9],
                tick: u64s[0] as usize,
                stages: StageLog::from_records(
                    (0..stage_n).map(|j| stage_at(stage_c, j)).collect(),
                ),
            })
        } else {
            None
        };
        Ok(SessionCheckpoint {
            key: u64_at(f.fixed(C_KEY)?, 0),
            tenant,
            meter,
            leaving: flags & F_LEAVING != 0,
            dedicated,
            pooled: (group != u64::MAX).then_some((group, u64_at(f.fixed(C_MEMBER)?, 0))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(session: u64) -> SessionMetrics {
        SessionMetrics {
            session,
            tenant: Arc::from(format!("tenant-{session}").as_str()),
            shard: session % 3,
            ticks: 100 + session,
            changes: 7,
            peak_allocation: 16.0,
            max_delay: 3,
            total_arrived: 0.1 + session as f64, // not exactly representable
            total_served: 1.0 / 3.0,
            total_allocated: f64::MIN_POSITIVE, // subnormal-adjacent edge
            windowed_utilization: if session.is_multiple_of(2) {
                Some(0.3)
            } else {
                None
            },
            signalling_cost: 7.0,
            bandwidth_cost: -0.0, // signed zero must survive
        }
    }

    fn snapshot() -> ServiceSnapshot {
        ServiceSnapshot {
            ticks: 42,
            shards: 2,
            admitted: 5,
            rejected: 1,
            restarts: 1,
            events_replayed: 17,
            global: GlobalMetrics {
                sessions: 3,
                changes: 21,
                max_delay: 3,
                peak_allocation: 16.0,
                total_arrived: 123.456,
                total_served: 120.0,
                total_allocated: 200.0,
                min_windowed_utilization: Some(0.25),
                signalling_cost: 21.0,
                bandwidth_cost: 200.0,
            },
            per_shard: vec![
                ShardMetrics {
                    shard: 0,
                    sessions: 2,
                    changes: 14,
                    peak_allocation: 16.0,
                    max_delay: 3,
                    signalling_cost: 14.0,
                    bandwidth_cost: 120.0,
                },
                ShardMetrics {
                    shard: 1,
                    sessions: 1,
                    changes: 7,
                    peak_allocation: 8.0,
                    max_delay: 1,
                    signalling_cost: 7.0,
                    bandwidth_cost: 80.0,
                },
            ],
            health: vec![
                ShardHealth {
                    shard: 0,
                    healthy: true,
                    restarts: 0,
                    last_failure: None,
                },
                ShardHealth {
                    shard: 1,
                    healthy: false,
                    restarts: 1,
                    last_failure: Some("injected fault: kill".into()),
                },
            ],
            sessions: (0..3).map(metric).collect(),
        }
    }

    /// Field-for-field bitwise comparison, `f64` by `to_bits`.
    fn assert_bitwise(a: &ServiceSnapshot, b: &ServiceSnapshot) {
        assert_eq!(a, b, "struct equality");
        for (x, y) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(x.peak_allocation.to_bits(), y.peak_allocation.to_bits());
            assert_eq!(x.total_arrived.to_bits(), y.total_arrived.to_bits());
            assert_eq!(x.total_served.to_bits(), y.total_served.to_bits());
            assert_eq!(x.total_allocated.to_bits(), y.total_allocated.to_bits());
            assert_eq!(
                x.windowed_utilization.map(f64::to_bits),
                y.windowed_utilization.map(f64::to_bits)
            );
            assert_eq!(x.signalling_cost.to_bits(), y.signalling_cost.to_bits());
            assert_eq!(x.bandwidth_cost.to_bits(), y.bandwidth_cost.to_bits());
        }
        assert_eq!(
            a.global.total_arrived.to_bits(),
            b.global.total_arrived.to_bits()
        );
    }

    #[test]
    fn snapshot_roundtrip_is_bitwise() {
        let snap = snapshot();
        let mut buf = Vec::new();
        encode_snapshot(&snap, &mut buf);
        let back = decode_snapshot(&buf).unwrap();
        assert_bitwise(&snap, &back);
    }

    #[test]
    fn binary_decode_matches_json_decode() {
        // The acceptance contract: decode(binary) == decode(json),
        // field for field, f64 by to_bits.
        let snap = snapshot();
        let mut buf = Vec::new();
        encode_snapshot(&snap, &mut buf);
        let from_binary = decode_snapshot(&buf).unwrap();
        let from_json: ServiceSnapshot =
            serde::Deserialize::deserialize(&serde_json::from_str(&snap.to_json_string()).unwrap())
                .unwrap();
        assert_bitwise(&from_binary, &from_json);
        // JSON text equality doubles as a bit-exactness proxy: serde_json
        // prints the shortest exact f64, so equal text ⇔ equal bits.
        assert_eq!(
            from_binary.to_json_string(),
            from_json.to_json_string(),
            "binary- and JSON-decoded snapshots render identically"
        );
    }

    #[test]
    fn signed_zero_and_nan_survive() {
        let mut buf = Vec::new();
        let mut e = Enc::new(&mut buf);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.f64(f64::INFINITY);
        let mut d = Dec::new(&buf);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.f64().unwrap(), f64::INFINITY);
        d.finish().unwrap();
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let snap = snapshot();
        let mut buf = Vec::new();
        encode_snapshot(&snap, &mut buf);
        for cut in [0, 1, 5, buf.len() / 2, buf.len() - 1] {
            let err = decode_snapshot(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Eof | CodecError::BadLength(_)),
                "cut at {cut}: {err:?}"
            );
        }
        let mut extended = buf.clone();
        extended.push(0);
        assert_eq!(
            decode_snapshot(&extended).unwrap_err(),
            CodecError::Trailing(1)
        );
    }

    #[test]
    fn hostile_counts_cannot_balloon_memory() {
        // A payload claiming u32::MAX sessions must fail on the length
        // check, before any allocation happens.
        let mut buf = Vec::new();
        let mut e = Enc::new(&mut buf);
        e.u8(CODEC_VERSION);
        for _ in 0..6 {
            e.u64(0);
        }
        encode_global_metrics(&snapshot().global, &mut e);
        e.u32(u32::MAX); // per_shard count
        let err = decode_snapshot(&buf).unwrap_err();
        assert_eq!(err, CodecError::BadLength(u64::from(u32::MAX)));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        encode_snapshot(&snapshot(), &mut buf);
        buf[0] = 99;
        assert_eq!(
            decode_snapshot(&buf).unwrap_err(),
            CodecError::BadVersion(99)
        );
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut buf = Vec::new();
        let mut e = Enc::new(&mut buf);
        e.u32(2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(Dec::new(&buf).str().unwrap_err(), CodecError::BadUtf8);
    }
}
