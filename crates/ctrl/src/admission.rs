//! Admission control against an aggregate bandwidth budget and per-tenant
//! quotas.
//!
//! The paper assumes every admitted session can be given its allocation
//! envelope; this module is the piece that *makes* the assumption true: a
//! join is admitted only if its worst-case envelope (the `B_A` of a
//! dedicated session, `4·B_O` for a phased group — the Theorem 14 bound)
//! still fits under both the service-wide budget and the tenant's quota.
//! Committed capacity is released when the session leaves.

use std::collections::HashMap;
use std::fmt;

/// Why a join was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The requested envelope was non-positive or non-finite.
    InvalidDemand(f64),
    /// The service-wide budget cannot cover the envelope.
    BudgetExhausted {
        /// Envelope requested.
        requested: f64,
        /// Budget still uncommitted.
        available: f64,
    },
    /// The tenant's quota cannot cover the envelope.
    QuotaExceeded {
        /// The tenant that asked.
        tenant: String,
        /// Envelope requested.
        requested: f64,
        /// Quota still uncommitted.
        available: f64,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::InvalidDemand(d) => write!(f, "invalid bandwidth demand {d}"),
            AdmissionError::BudgetExhausted {
                requested,
                available,
            } => write!(
                f,
                "budget exhausted: requested {requested}, only {available} uncommitted"
            ),
            AdmissionError::QuotaExceeded {
                tenant,
                requested,
                available,
            } => write!(
                f,
                "tenant {tenant} over quota: requested {requested}, only {available} uncommitted"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Tracks committed bandwidth envelopes service-wide and per tenant.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    budget: f64,
    default_quota: f64,
    committed: f64,
    quotas: HashMap<String, f64>,
    per_tenant: HashMap<String, f64>,
    admitted: u64,
    rejected: u64,
}

impl AdmissionController {
    /// A controller over an aggregate `budget`, with every tenant capped at
    /// `default_quota` until [`AdmissionController::set_quota`] overrides it.
    pub fn new(budget: f64, default_quota: f64) -> Self {
        AdmissionController {
            budget,
            default_quota,
            committed: 0.0,
            quotas: HashMap::new(),
            per_tenant: HashMap::new(),
            admitted: 0,
            rejected: 0,
        }
    }

    /// Overrides one tenant's quota.
    pub fn set_quota(&mut self, tenant: &str, quota: f64) {
        self.quotas.insert(tenant.to_string(), quota);
    }

    /// The quota governing `tenant`.
    pub fn quota(&self, tenant: &str) -> f64 {
        self.quotas
            .get(tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }

    /// Budget still uncommitted.
    pub fn available(&self) -> f64 {
        (self.budget - self.committed).max(0.0)
    }

    /// Bandwidth committed to `tenant`.
    pub fn committed_to(&self, tenant: &str) -> f64 {
        self.per_tenant.get(tenant).copied().unwrap_or(0.0)
    }

    /// Joins admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Joins rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Admits an envelope of `demand` for `tenant`, or explains the
    /// rejection. A float-noise tolerance of one part in 10⁹ keeps repeated
    /// admit/release cycles from leaking capacity.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::InvalidDemand`], [`AdmissionError::BudgetExhausted`]
    /// or [`AdmissionError::QuotaExceeded`].
    pub fn request(&mut self, tenant: &str, demand: f64) -> Result<(), AdmissionError> {
        if !demand.is_finite() || demand <= 0.0 {
            self.rejected += 1;
            return Err(AdmissionError::InvalidDemand(demand));
        }
        let slack = 1e-9 * self.budget.max(1.0);
        if self.committed + demand > self.budget + slack {
            self.rejected += 1;
            return Err(AdmissionError::BudgetExhausted {
                requested: demand,
                available: self.available(),
            });
        }
        let used = self.committed_to(tenant);
        let quota = self.quota(tenant);
        if used + demand > quota + slack {
            self.rejected += 1;
            return Err(AdmissionError::QuotaExceeded {
                tenant: tenant.to_string(),
                requested: demand,
                available: (quota - used).max(0.0),
            });
        }
        self.committed += demand;
        *self.per_tenant.entry(tenant.to_string()).or_insert(0.0) += demand;
        self.admitted += 1;
        Ok(())
    }

    /// Undoes a just-granted [`AdmissionController::request`] whose join
    /// could not be delivered to its shard: releases the envelope *and*
    /// retracts the admitted count, so the failed join never shows up in
    /// metrics as admitted.
    pub fn rollback(&mut self, tenant: &str, demand: f64) {
        self.release(tenant, demand);
        self.admitted = self.admitted.saturating_sub(1);
    }

    /// Releases a previously admitted envelope (on leave).
    pub fn release(&mut self, tenant: &str, demand: f64) {
        let demand = demand.max(0.0);
        self.committed = (self.committed - demand).max(0.0);
        if let Some(used) = self.per_tenant.get_mut(tenant) {
            *used = (*used - demand).max(0.0);
            if *used <= 0.0 {
                self.per_tenant.remove(tenant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_enforced() {
        let mut c = AdmissionController::new(100.0, 100.0);
        assert!(c.request("a", 60.0).is_ok());
        assert!(matches!(
            c.request("b", 60.0),
            Err(AdmissionError::BudgetExhausted { .. })
        ));
        assert_eq!(c.available(), 40.0);
        assert_eq!(c.admitted(), 1);
        assert_eq!(c.rejected(), 1);
    }

    #[test]
    fn quotas_bind_per_tenant() {
        let mut c = AdmissionController::new(100.0, 30.0);
        assert!(c.request("a", 30.0).is_ok());
        assert!(matches!(
            c.request("a", 1.0),
            Err(AdmissionError::QuotaExceeded { .. })
        ));
        // Another tenant still fits under the global budget.
        assert!(c.request("b", 30.0).is_ok());
        c.set_quota("c", 50.0);
        assert!(c.request("c", 40.0).is_ok());
        assert_eq!(c.committed_to("c"), 40.0);
    }

    #[test]
    fn release_restores_capacity() {
        let mut c = AdmissionController::new(64.0, 64.0);
        c.request("a", 64.0).unwrap();
        assert!(c.request("a", 1.0).is_err());
        c.release("a", 64.0);
        assert!(c.request("a", 64.0).is_ok());
        assert_eq!(c.committed_to("a"), 64.0);
    }

    #[test]
    fn repeated_cycles_do_not_leak() {
        let mut c = AdmissionController::new(10.0, 10.0);
        for _ in 0..10_000 {
            c.request("a", 10.0).unwrap();
            c.release("a", 10.0);
        }
        assert!(c.request("a", 10.0).is_ok());
    }

    #[test]
    fn rollback_undoes_the_admit_count() {
        let mut c = AdmissionController::new(100.0, 100.0);
        c.request("a", 40.0).unwrap();
        c.request("a", 40.0).unwrap();
        assert_eq!(c.admitted(), 2);
        c.rollback("a", 40.0);
        assert_eq!(c.admitted(), 1);
        assert_eq!(c.committed_to("a"), 40.0);
        assert_eq!(c.available(), 60.0);
    }

    #[test]
    fn invalid_demands_are_rejected() {
        let mut c = AdmissionController::new(10.0, 10.0);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                c.request("a", bad),
                Err(AdmissionError::InvalidDemand(_))
            ));
        }
        assert_eq!(c.rejected(), 4);
    }
}
