//! A dense generational slab and a direct-mapped key index — the shard
//! executor's session store.
//!
//! The per-tick hot path at 100k sessions is dominated by lookups and
//! cache misses, not by bandwidth math. A `HashMap<u64, usize>` pays a
//! hash + probe per arrival and scatters entries across the heap; the
//! slab pays one bounds-checked array access and keeps live entries in
//! one contiguous allocation.
//!
//! * [`Slab`] hands out stable `u32` slots with a LIFO free list, so a
//!   session's slot never moves while it is live (no `swap_remove`
//!   fix-ups) and retired slots are reused densely. Each slot carries a
//!   generation; a [`SlotId`] from a previous occupancy no longer
//!   resolves.
//! * [`KeyMap`] maps the service's monotonically increasing session (or
//!   group) keys straight to slots with a plain `Vec` — keys are handed
//!   out sequentially by the driver, so the table is dense and a lookup
//!   is one array index. Keys are never reissued, which is what makes the
//!   sentinel-clearing scheme ABA-free.
//!
//! Iteration ([`Slab::iter`], [`Slab::iter_mut`]) runs in slot order.
//! Restoring a checkpoint re-inserts entries in checkpoint order into a
//! fresh slab, compacting slots to `0..n` while preserving relative
//! order — per-session dynamics are placement-independent, so this keeps
//! `invariant_view()` bitwise stable across crash/restore cycles.

/// A stable handle to an occupied [`Slab`] slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SlotId {
    /// Slot index; stable for the lifetime of the occupancy.
    pub index: u32,
    /// Generation the slot had when this handle was issued.
    pub generation: u32,
}

#[derive(Debug)]
struct Entry<T> {
    /// Bumped every time the slot is vacated, invalidating old handles.
    generation: u32,
    value: Option<T>,
}

/// A dense slab: O(1) insert/remove/lookup, stable `u32` slots, LIFO
/// free-list reuse, iteration in slot order.
#[derive(Debug)]
pub(crate) struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    pub(crate) fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Occupied slots.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One past the highest slot index ever occupied — the bound for
    /// slot-indexed scratch arrays.
    pub(crate) fn slot_bound(&self) -> usize {
        self.entries.len()
    }

    /// Vacates every slot, keeping the entry table's allocation. The
    /// result is indistinguishable from a fresh slab (generations restart
    /// at 0; the next inserts fill slots `0..n` densely), so any handle
    /// issued before the clear must also be discarded — the genesis
    /// restore path clears its `KeyMap` and group tables in the same
    /// breath.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.free.clear();
        self.len = 0;
    }

    /// Pre-grows the entry table to hold `n` slots without reallocation —
    /// the genesis-restore path sizes the slab once for the whole
    /// population before inserting.
    pub(crate) fn reserve(&mut self, n: usize) {
        self.entries.reserve(n.saturating_sub(self.entries.len()));
    }

    /// Inserts, reusing the most recently freed slot if any.
    pub(crate) fn insert(&mut self, value: T) -> SlotId {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let entry = &mut self.entries[index as usize];
            debug_assert!(entry.value.is_none(), "free list pointed at a live slot");
            entry.value = Some(value);
            SlotId {
                index,
                generation: entry.generation,
            }
        } else {
            let index = u32::try_from(self.entries.len()).expect("slab capped at u32 slots");
            self.entries.push(Entry {
                generation: 0,
                value: Some(value),
            });
            SlotId {
                index,
                generation: 0,
            }
        }
    }

    /// Vacates `id`'s slot, returning its value. A stale handle (wrong
    /// generation, already vacated, out of range) returns `None`.
    pub(crate) fn remove(&mut self, id: SlotId) -> Option<T> {
        let entry = self.entries.get_mut(id.index as usize)?;
        if entry.generation != id.generation || entry.value.is_none() {
            return None;
        }
        entry.generation = entry.generation.wrapping_add(1);
        self.len -= 1;
        self.free.push(id.index);
        entry.value.take()
    }

    pub(crate) fn get(&self, id: SlotId) -> Option<&T> {
        let entry = self.entries.get(id.index as usize)?;
        if entry.generation != id.generation {
            return None;
        }
        entry.value.as_ref()
    }

    pub(crate) fn get_mut(&mut self, id: SlotId) -> Option<&mut T> {
        let entry = self.entries.get_mut(id.index as usize)?;
        if entry.generation != id.generation {
            return None;
        }
        entry.value.as_mut()
    }

    /// Occupied slots in slot order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (SlotId, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            e.value.as_ref().map(|v| {
                (
                    SlotId {
                        index: i as u32,
                        generation: e.generation,
                    },
                    v,
                )
            })
        })
    }

    /// Occupied slots in slot order, mutably.
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = (SlotId, &mut T)> {
        self.entries.iter_mut().enumerate().filter_map(|(i, e)| {
            e.value.as_mut().map(|v| {
                (
                    SlotId {
                        index: i as u32,
                        generation: e.generation,
                    },
                    v,
                )
            })
        })
    }
}

/// A direct-mapped index from dense `u64` keys to slab slots.
///
/// The driver issues session and group keys from one monotone counter, so
/// the key space is dense and never recycled: a `Vec<SlotId>` beats any
/// hash map. Absent keys hold a sentinel.
#[derive(Debug)]
pub(crate) struct KeyMap {
    slots: Vec<SlotId>,
}

/// The "no mapping" sentinel.
const NIL: SlotId = SlotId {
    index: u32::MAX,
    generation: u32::MAX,
};

impl KeyMap {
    pub(crate) fn new() -> Self {
        KeyMap { slots: Vec::new() }
    }

    /// Drops every mapping, keeping the table's allocation. Keys are
    /// never reissued, so clearing cannot introduce ABA hazards.
    pub(crate) fn clear(&mut self) {
        self.slots.clear();
    }

    /// Maps `key` to `slot`, growing the table as needed.
    pub(crate) fn insert(&mut self, key: u64, slot: SlotId) {
        let key = usize::try_from(key).expect("keys are driver counters");
        if key >= self.slots.len() {
            self.slots.resize(key + 1, NIL);
        }
        self.slots[key] = slot;
    }

    /// The slot mapped to `key`, if any.
    pub(crate) fn get(&self, key: u64) -> Option<SlotId> {
        let slot = *self.slots.get(usize::try_from(key).ok()?)?;
        if slot == NIL {
            None
        } else {
            Some(slot)
        }
    }

    /// Clears `key`'s mapping, returning the slot it held.
    pub(crate) fn remove(&mut self, key: u64) -> Option<SlotId> {
        let entry = self.slots.get_mut(usize::try_from(key).ok()?)?;
        if *entry == NIL {
            None
        } else {
            Some(std::mem::replace(entry, NIL))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None, "vacated handle no longer resolves");
        assert_eq!(slab.remove(a), None, "double remove is a no-op");
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn freed_slots_are_reused_with_fresh_generations() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let _b = slab.insert(2);
        slab.remove(a).unwrap();
        let c = slab.insert(3);
        assert_eq!(c.index, a.index, "LIFO reuse of the freed slot");
        assert_ne!(c.generation, a.generation);
        assert_eq!(slab.get(a), None, "stale handle sees the new generation");
        assert_eq!(slab.get(c), Some(&3));
        assert_eq!(slab.slot_bound(), 2, "no growth past the reused slot");
    }

    #[test]
    fn iteration_is_in_slot_order() {
        let mut slab = Slab::new();
        let ids: Vec<SlotId> = (0..5).map(|i| slab.insert(i * 10)).collect();
        slab.remove(ids[1]).unwrap();
        slab.remove(ids[3]).unwrap();
        let seen: Vec<(u32, i32)> = slab.iter().map(|(id, &v)| (id.index, v)).collect();
        assert_eq!(seen, vec![(0, 0), (2, 20), (4, 40)]);
        for (id, v) in slab.iter_mut() {
            *v += i32::try_from(id.index).unwrap();
        }
        assert_eq!(slab.get(ids[4]), Some(&44));
    }

    #[test]
    fn keymap_is_a_dense_direct_map() {
        let mut slab = Slab::new();
        let mut map = KeyMap::new();
        let s7 = slab.insert("seven");
        map.insert(7, s7);
        assert_eq!(map.get(7), Some(s7));
        assert_eq!(map.get(3), None, "hole inside the table");
        assert_eq!(map.get(100), None, "past the table");
        assert_eq!(map.remove(7), Some(s7));
        assert_eq!(map.get(7), None);
        assert_eq!(map.remove(7), None);
    }
}
