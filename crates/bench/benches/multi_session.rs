//! E5/E6 bench: the multi-session algorithms across `k` on the rotating-hot
//! adversary.

use cdba_bench::{bench_multi, B_O, D_O};
use cdba_core::config::MultiConfig;
use cdba_core::multi::{Continuous, Phased};
use cdba_sim::engine::{simulate_multi, DrainPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn multi_session(c: &mut Criterion) {
    let len = 2_048usize;
    let mut group = c.benchmark_group("multi_session");
    for &k in &[2usize, 8, 32] {
        let input = bench_multi(k, len);
        let cfg = MultiConfig::new(k, B_O, D_O).expect("valid config");
        group.throughput(Throughput::Elements((len * k) as u64));
        group.bench_with_input(BenchmarkId::new("phased", k), &input, |b, input| {
            b.iter(|| {
                let mut alg = Phased::new(cfg.clone());
                black_box(simulate_multi(input, &mut alg, DrainPolicy::DrainToEmpty).expect("runs"))
            })
        });
        group.bench_with_input(BenchmarkId::new("continuous", k), &input, |b, input| {
            b.iter(|| {
                let mut alg = Continuous::new(cfg.clone());
                black_box(simulate_multi(input, &mut alg, DrainPolicy::DrainToEmpty).expect("runs"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, multi_session);
criterion_main!(benches);
