//! E13 bench: the `low(t)` kernel — convex hull vs naive rescan.

use cdba_bench::bench_trace;
use cdba_core::bounds::{HullLowTracker, LowTracker, NaiveLowTracker};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn low_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("low_kernel");
    for &n in &[256usize, 1_024, 4_096, 16_384] {
        let trace = bench_trace(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("hull", n), &trace, |b, t| {
            b.iter(|| {
                let mut tracker = HullLowTracker::new(8);
                for &a in t.arrivals() {
                    black_box(tracker.push(a));
                }
            })
        });
        // The naive kernel is O(n²); keep its sizes small.
        if n <= 4_096 {
            group.bench_with_input(BenchmarkId::new("naive", n), &trace, |b, t| {
                b.iter(|| {
                    let mut tracker = NaiveLowTracker::new(8);
                    for &a in t.arrivals() {
                        black_box(tracker.push(a));
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, low_kernel);
criterion_main!(benches);
