//! E2 bench: the Figure 2 policies on one bursty trace — how much compute
//! each allocation policy costs per tick.

use cdba_bench::{bench_trace, B_O, D_O};
use cdba_core::config::SingleConfig;
use cdba_core::single::{LookbackSingle, SingleSession};
use cdba_offline::baselines::{
    JustInTimeAllocator, PerPacketAllocator, PeriodicAllocator, RcbrAllocator, StaticAllocator,
};
use cdba_sim::engine::{simulate, DrainPolicy};
use cdba_sim::Allocator;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn cfg() -> SingleConfig {
    SingleConfig::builder(B_O)
        .offline_delay(D_O)
        .offline_utilization(0.25)
        .window(2 * D_O)
        .build()
        .expect("valid config")
}

fn policies(c: &mut Criterion) {
    let n = 8_192usize;
    let trace = bench_trace(n, 7);
    let mut group = c.benchmark_group("policies");
    group.throughput(Throughput::Elements(n as u64));

    macro_rules! bench_policy {
        ($name:literal, $make:expr) => {
            group.bench_function($name, |b| {
                b.iter(|| {
                    let mut alg = $make;
                    black_box(simulate(&trace, &mut alg, DrainPolicy::DrainToEmpty).expect("runs"))
                })
            });
        };
    }

    bench_policy!("single_session", SingleSession::new(cfg()));
    bench_policy!("lookback_single", LookbackSingle::new(cfg()));
    bench_policy!("static_high", StaticAllocator::for_delay(&trace, D_O));
    bench_policy!("per_packet", PerPacketAllocator::new());
    bench_policy!("periodic", PeriodicAllocator::new(2 * D_O, 1.25));
    bench_policy!("rcbr", RcbrAllocator::conventional(D_O));
    bench_policy!("just_in_time", JustInTimeAllocator::new(D_O));
    group.finish();

    // Keep the Allocator trait import used even if the macro inlines.
    fn _assert_allocator<A: Allocator>(_a: &A) {}
}

criterion_group!(benches, policies);
criterion_main!(benches);
