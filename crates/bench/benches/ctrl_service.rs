//! Control-plane bench: tick throughput of the cdba-ctrl service across
//! shard counts and session populations.
//!
//! Each measurement drives an already-populated [`ControlPlane`] through a
//! fixed batch of ticks (the service is built outside the timed loop, so
//! admissions and thread spawns are not measured). Throughput is reported
//! in session-ticks: sessions × ticks advanced per iteration.

use cdba_ctrl::{ControlPlane, ExecMode, ServiceConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const TICKS_PER_ITER: u64 = 64;

fn service(sessions: usize, shards: usize, exec: ExecMode) -> (ControlPlane, Vec<u64>) {
    let cfg = ServiceConfig::builder(sessions as f64 * 16.0)
        .session_b_max(16.0)
        .group_b_o(8.0)
        .offline_delay(8)
        .window(16)
        .shards(shards)
        .exec(exec)
        .build()
        .expect("valid service config");
    let mut service = ControlPlane::new(cfg);
    let keys: Vec<u64> = (0..sessions)
        .map(|i| {
            service
                .admit(["alpha", "beta", "gamma"][i % 3])
                .expect("budget sized for the population")
        })
        .collect();
    (service, keys)
}

fn drive(service: &mut ControlPlane, keys: &[u64], round: &mut u64) {
    let mut arrivals = Vec::with_capacity(keys.len());
    for _ in 0..TICKS_PER_ITER {
        arrivals.clear();
        for (i, &key) in keys.iter().enumerate() {
            arrivals.push((key, ((*round + i as u64) % 5) as f64));
        }
        service.tick(black_box(&arrivals)).expect("keys are live");
        *round += 1;
    }
}

fn ctrl_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctrl_service");
    for &sessions in &[10usize, 100, 1_000] {
        for &shards in &[1usize, 2, 4, 8] {
            group.throughput(Throughput::Elements(sessions as u64 * TICKS_PER_ITER));
            let id = BenchmarkId::new(format!("threaded/s{shards}"), sessions);
            group.bench_with_input(id, &sessions, |b, &sessions| {
                let (mut service, keys) = service(sessions, shards, ExecMode::Threaded);
                let mut round = 0u64;
                b.iter(|| drive(&mut service, &keys, &mut round));
            });
        }
        // The single-threaded fallback at one shard, as the no-channel
        // baseline the threaded numbers are read against.
        group.throughput(Throughput::Elements(sessions as u64 * TICKS_PER_ITER));
        let id = BenchmarkId::new("inline/s1", sessions);
        group.bench_with_input(id, &sessions, |b, &sessions| {
            let (mut service, keys) = service(sessions, 1, ExecMode::Inline);
            let mut round = 0u64;
            b.iter(|| drive(&mut service, &keys, &mut round));
        });
    }
    group.finish();
}

criterion_group!(benches, ctrl_service);
criterion_main!(benches);
