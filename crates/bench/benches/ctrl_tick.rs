//! Pipelined-tick bench: throughput of the cdba-ctrl tick path across
//! pipeline depths and session populations, plus a machine-readable
//! `BENCH_ctrl.json` report.
//!
//! The criterion pass compares the inline single-threaded baseline
//! against the threaded backends at two population sizes — the small one
//! where inline wins (per-tick work is too small to amortize cross-thread
//! dispatch) and a larger one where sharding starts to pay. The full
//! sessions × shards matrix (100 → 100 000 sessions) lives in
//! [`cdba_bench::matrix`], shared with `cdba-cli bench-ctrl`.
//!
//! Unlike the other benches this one has a custom `main`: after the
//! criterion run it re-measures the whole matrix with plain wall-clock
//! loops and writes `BENCH_ctrl.json` at the workspace root — the
//! committed baseline the CI bench-smoke job gates against, including the
//! inline-vs-threaded inversion at ≥ 10 000 sessions. The JSON pass is
//! skipped in `--test` (smoke) mode.

use cdba_bench::matrix;
use criterion::{BenchmarkId, Criterion, Throughput};

const TICKS_PER_ITER: u64 = 64;
const CRITERION_SESSIONS: &[usize] = &[100, 1_000];

fn ctrl_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctrl_tick");
    let cases = matrix::tick_cases();
    for &sessions in CRITERION_SESSIONS {
        for case in &cases {
            group.throughput(Throughput::Elements(sessions as u64 * TICKS_PER_ITER));
            let id = BenchmarkId::new(case.label, sessions);
            group.bench_with_input(id, case, |b, case| {
                let (mut service, keys) = matrix::tick_service(case, sessions);
                let mut round = 0u64;
                b.iter(|| matrix::drive(&mut service, &keys, TICKS_PER_ITER, &mut round));
            });
        }
    }
    group.finish();
}

/// Wall-clock pass producing the committed `BENCH_ctrl.json` baseline.
fn write_report() -> Result<(), String> {
    let rows = matrix::run_matrix(matrix::SESSIONS_AXIS, None, None, |row| {
        println!(
            "{:>16} × {:>6} sessions: {:.0} ticks/s",
            row.label, row.sessions, row.ticks_per_sec
        );
    });
    let checkpoint = matrix::run_checkpoint_matrix(matrix::CHECKPOINT_SESSIONS_AXIS, |row| {
        println!(
            "checkpoint × {:>7} sessions: encode {:.1} ms, restore {:.1} ms \
             (warm {:.1} ms), {:.1} B/dirty-session",
            row.sessions,
            row.encode_ms,
            row.restore_ms,
            row.restore_warm_ms,
            row.bytes_per_dirty_session
        );
    });
    let report = matrix::matrix_report(&rows, &checkpoint);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ctrl.json");
    let body = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn main() {
    let mut criterion = Criterion::default();
    ctrl_tick(&mut criterion);
    if !std::env::args().skip(1).any(|a| a == "--test") {
        if let Err(e) = write_report() {
            eprintln!("ctrl_tick report failed: {e}");
            std::process::exit(1);
        }
    }
}
