//! Pipelined-tick bench: throughput of the cdba-ctrl tick path across
//! pipeline depths, plus a machine-readable `BENCH_ctrl.json` report.
//!
//! The interesting comparison is depth 1 (every tick waits for all shard
//! acks before the next dispatch) against the default depth 4 (up to four
//! dispatched-but-unacked ticks in flight), read against the inline
//! single-threaded baseline. The service is populated outside the timed
//! region, matching `ctrl_service.rs`.
//!
//! Unlike the other benches this one has a custom `main`: after the
//! criterion run it re-measures each configuration with a plain
//! wall-clock loop and writes `BENCH_ctrl.json` at the workspace root —
//! the committed baseline the CI bench-smoke job gates against. The JSON
//! pass is skipped in `--test` (smoke) mode.

use cdba_ctrl::{ControlPlane, ExecMode, ServiceConfig};
use criterion::{BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

const TICKS_PER_ITER: u64 = 64;
const SESSIONS: usize = 100;
const JSON_WARMUP_TICKS: u64 = 256;
const JSON_MEASURED_TICKS: u64 = 2_048;

/// One benchmarked service configuration.
struct Case {
    label: &'static str,
    shards: usize,
    exec: ExecMode,
    depth: u32,
}

const CASES: &[Case] = &[
    Case {
        label: "inline/s1",
        shards: 1,
        exec: ExecMode::Inline,
        depth: 1,
    },
    Case {
        label: "threaded/s1/d4",
        shards: 1,
        exec: ExecMode::Threaded,
        depth: 4,
    },
    Case {
        label: "threaded/s4/d1",
        shards: 4,
        exec: ExecMode::Threaded,
        depth: 1,
    },
    Case {
        label: "threaded/s4/d4",
        shards: 4,
        exec: ExecMode::Threaded,
        depth: 4,
    },
];

fn service(case: &Case) -> (ControlPlane, Vec<u64>) {
    let cfg = ServiceConfig::builder(SESSIONS as f64 * 16.0)
        .session_b_max(16.0)
        .group_b_o(8.0)
        .offline_delay(8)
        .window(16)
        .shards(case.shards)
        .exec(case.exec)
        .pipeline_depth(case.depth)
        .build()
        .expect("valid service config");
    let mut service = ControlPlane::new(cfg);
    let keys: Vec<u64> = (0..SESSIONS)
        .map(|i| {
            service
                .admit(["alpha", "beta", "gamma"][i % 3])
                .expect("budget sized for the population")
        })
        .collect();
    (service, keys)
}

fn drive(service: &mut ControlPlane, keys: &[u64], ticks: u64, round: &mut u64) {
    let mut arrivals = Vec::with_capacity(keys.len());
    for _ in 0..ticks {
        arrivals.clear();
        for (i, &key) in keys.iter().enumerate() {
            arrivals.push((key, ((*round + i as u64) % 5) as f64));
        }
        service.tick(black_box(&arrivals)).expect("keys are live");
        *round += 1;
    }
}

fn ctrl_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctrl_tick");
    for case in CASES {
        group.throughput(Throughput::Elements(SESSIONS as u64 * TICKS_PER_ITER));
        let id = BenchmarkId::new(case.label, SESSIONS);
        group.bench_with_input(id, case, |b, case| {
            let (mut service, keys) = service(case);
            let mut round = 0u64;
            b.iter(|| drive(&mut service, &keys, TICKS_PER_ITER, &mut round));
        });
    }
    group.finish();
}

/// Wall-clock pass producing the committed `BENCH_ctrl.json` baseline.
fn write_report() -> Result<(), String> {
    let mut results = Vec::new();
    for case in CASES {
        let (mut service, keys) = service(case);
        let mut round = 0u64;
        drive(&mut service, &keys, JSON_WARMUP_TICKS, &mut round);
        let started = Instant::now();
        drive(&mut service, &keys, JSON_MEASURED_TICKS, &mut round);
        let elapsed = started.elapsed().as_secs_f64();
        let ticks_per_sec = if elapsed > 0.0 {
            JSON_MEASURED_TICKS as f64 / elapsed
        } else {
            f64::INFINITY
        };
        results.push(serde_json::json!({
            "label": case.label,
            "sessions": SESSIONS,
            "shards": case.shards,
            "exec": match case.exec {
                ExecMode::Inline => "inline",
                ExecMode::Threaded => "threaded",
            },
            "pipeline_depth": case.depth,
            "ticks": JSON_MEASURED_TICKS,
            "elapsed_sec": elapsed,
            "ticks_per_sec": ticks_per_sec,
            "session_ticks_per_sec": ticks_per_sec * SESSIONS as f64,
        }));
    }
    let report = serde_json::json!({
        "bench": "ctrl_tick",
        "sessions": SESSIONS,
        "ticks": JSON_MEASURED_TICKS,
        "results": results,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ctrl.json");
    let body = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn main() {
    let mut criterion = Criterion::default();
    ctrl_tick(&mut criterion);
    if !std::env::args().skip(1).any(|a| a == "--test") {
        if let Err(e) = write_report() {
            eprintln!("ctrl_tick report failed: {e}");
            std::process::exit(1);
        }
    }
}
