//! Substrate kernels: workload generation, Claim-9 feasibility (Kadane),
//! demand-bound bisection, and FIFO delay measurement throughput.

use cdba_bench::{bench_trace, B_O, D_O};
use cdba_sim::measure;
use cdba_traffic::models::{self, WorkloadKind};
use cdba_traffic::{conditioner, Trace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    let n = 16_384usize;
    group.throughput(Throughput::Elements(n as u64));
    for kind in [
        WorkloadKind::Poisson(Default::default()),
        WorkloadKind::OnOff(Default::default()),
        WorkloadKind::Mmpp(Default::default()),
        WorkloadKind::Pareto(Default::default()),
        WorkloadKind::Video(Default::default()),
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(kind.generate(&mut rng, n).expect("valid params"))
            })
        });
    }
    // Diurnal modulation on top of Poisson.
    group.bench_function("diurnal", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(
                models::diurnal(&mut rng, models::DiurnalParams::default(), n)
                    .expect("valid params"),
            )
        })
    });
    group.finish();
}

fn feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("feasibility");
    for &n in &[4_096usize, 65_536] {
        let trace = bench_trace(n, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("is_feasible", n), &trace, |b, t| {
            b.iter(|| black_box(conditioner::is_feasible(t, B_O, D_O)))
        });
        group.bench_with_input(BenchmarkId::new("demand_bound", n), &trace, |b, t| {
            b.iter(|| black_box(t.demand_bound(D_O)))
        });
    }
    group.finish();
}

fn delay_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay_measurement");
    for &n in &[4_096usize, 65_536] {
        let trace = bench_trace(n, 9);
        // A service curve that lags slightly behind the arrivals.
        let served: Vec<f64> = {
            let mut q = 0.0f64;
            let mut out = Vec::with_capacity(n + 64);
            for t in 0..n + 64 {
                q += trace.arrival(t);
                let s = q.min(0.95 * B_O);
                q -= s;
                out.push(s);
            }
            out
        };
        let padded = trace.pad_zeros(64);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("max_delay", n),
            &(padded, served),
            |b, (t, s)| b.iter(|| black_box(measure::max_delay(t, s))),
        );
    }
    group.finish();
}

fn trace_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_ops");
    let n = 65_536usize;
    let trace = bench_trace(n, 4);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("construction", |b| {
        let arrivals = trace.arrivals().to_vec();
        b.iter(|| black_box(Trace::new(arrivals.clone()).expect("valid")))
    });
    group.bench_function("excess_over", |b| {
        b.iter(|| black_box(trace.excess_over(0.5 * B_O)))
    });
    group.finish();
}

criterion_group!(
    benches,
    generators,
    feasibility,
    delay_measurement,
    trace_ops
);
criterion_main!(benches);
