//! Offline comparator bench: greedy farthest-reach vs exact DP.

use cdba_bench::{bench_trace, B_O, D_O};
use cdba_offline::single::{dp_offline, greedy_offline};
use cdba_offline::OfflineConstraints;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn offline_planners(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_planners");
    let constraints = OfflineConstraints::delay_only(B_O, D_O);
    for &n in &[256usize, 1_024, 4_096] {
        let trace = bench_trace(n, 13);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("greedy", n), &trace, |b, t| {
            b.iter(|| black_box(greedy_offline(t, constraints).expect("feasible")))
        });
        if n <= 1_024 {
            group.bench_with_input(BenchmarkId::new("dp", n), &trace, |b, t| {
                b.iter(|| black_box(dp_offline(t, constraints).expect("feasible")))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, offline_planners);
criterion_main!(benches);
