//! E3 bench: one full stage-forcer ratio point (generation + online run +
//! certificate) across `B_A` — the cost of the headline experiment's inner
//! loop.

use cdba_core::config::SingleConfig;
use cdba_core::single::SingleSession;
use cdba_sim::engine::{simulate, DrainPolicy};
use cdba_traffic::adversarial::{stage_forcer, StageForcerParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const D_O: usize = 4;

fn single_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_ratio_point");
    for &levels in &[4u32, 8, 12] {
        let b_max = 2f64.powi(levels as i32);
        let w = levels as usize * (D_O + 1) + D_O;
        let trace =
            stage_forcer(StageForcerParams::new(b_max, D_O, w, 4)).expect("valid adversary");
        let cfg = SingleConfig::builder(b_max)
            .offline_delay(D_O)
            .offline_utilization(0.05)
            .window(w)
            .build()
            .expect("valid config");
        group.bench_with_input(
            BenchmarkId::new("b_max_2pow", levels),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut alg = SingleSession::new(cfg.clone());
                    let run = simulate(trace, &mut alg, DrainPolicy::DrainToEmpty).expect("runs");
                    black_box((run.schedule.num_changes(), alg.certified_offline_changes()))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, single_ratio);
criterion_main!(benches);
