//! E7 bench: the combined algorithm with both inner multi-session variants.

use cdba_bench::{bench_multi, B_O, D_O};
use cdba_core::combined::Combined;
use cdba_core::config::{CombinedConfig, InnerMulti};
use cdba_sim::engine::{simulate_multi, DrainPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn combined(c: &mut Criterion) {
    let len = 2_048usize;
    let k = 4usize;
    let input = bench_multi(k, len);
    let mut group = c.benchmark_group("combined");
    group.throughput(Throughput::Elements((len * k) as u64));
    for inner in [InnerMulti::Phased, InnerMulti::Continuous] {
        let cfg = CombinedConfig::new(k, B_O, D_O, 0.1, 2 * D_O, inner).expect("valid config");
        group.bench_with_input(
            BenchmarkId::new("inner", format!("{inner:?}")),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut alg = Combined::new(cfg.clone());
                    black_box(
                        simulate_multi(input, &mut alg, DrainPolicy::DrainToEmpty).expect("runs"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, combined);
criterion_main!(benches);
