//! The churn-replay workload shared by `cdba-cli serve` (in-process),
//! `cdba-cli client` (over the gateway wire), and `cdba-cli bench-gateway`.
//!
//! Both drivers must issue the *same* operations in the *same* order for
//! the determinism guarantee to be checkable: a trace replayed through the
//! gateway has to produce a snapshot whose
//! [`invariant_view`](cdba_ctrl::ServiceSnapshot::invariant_view) is
//! bitwise-identical to the in-process run. Factoring the workload here —
//! and driving both backends through one [`ReplayTarget`] trait — makes
//! that equality structural instead of hopeful.

use cdba_ctrl::{ControlPlane, ServiceConfig, ServiceConfigBuilder};
use cdba_gateway::client::Client;
use cdba_traffic::models::WorkloadKind;
use cdba_traffic::{conditioner, MultiTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// The tenants sessions are attributed to, round-robin.
pub const TENANTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Everything that determines the replayed workload. Two replays with
/// equal specs issue identical operation sequences.
#[derive(Debug, Clone)]
pub struct ReplaySpec {
    /// Total session population (pooled + dedicated).
    pub sessions: usize,
    /// Ticks to replay.
    pub ticks: u64,
    /// Seed for the arrival bank.
    pub seed: u64,
    /// Traffic model name (`cbr|poisson|onoff|mmpp|pareto|video|spike`).
    pub model: String,
    /// Pooled group size; groups form only when ≥ 2.
    pub group_size: usize,
    /// Fraction of the population run in pooled groups.
    pub pool_frac: f64,
    /// Churn period in ticks; 0 disables churn.
    pub churn_every: u64,
    /// Dedicated per-session bandwidth `B_A`.
    pub b_max: f64,
    /// Pooled per-session offline bandwidth `B_O`.
    pub b_o: f64,
    /// Offline delay bound `D_O` (ticks).
    pub d_o: usize,
    /// Offline utilization target `U_O`.
    pub u_o: f64,
    /// Utilization measurement window (ticks).
    pub w: usize,
}

impl Default for ReplaySpec {
    fn default() -> Self {
        Self {
            sessions: 100,
            ticks: 100_000,
            seed: 0xCDBA,
            model: "onoff".into(),
            group_size: 4,
            pool_frac: 0.2,
            churn_every: 500,
            b_max: 16.0,
            b_o: 8.0,
            d_o: 8,
            u_o: 0.5,
            w: 16,
        }
    }
}

/// How [`ReplaySpec::split`] partitions the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Split {
    /// Sessions running in pooled groups.
    pub pooled: usize,
    /// Sessions with dedicated allocators.
    pub dedicated: usize,
    /// Number of pooled groups.
    pub groups: usize,
}

impl ReplaySpec {
    /// Splits the population: `pool_frac` of the sessions run in pooled
    /// groups of `group_size`, the rest get dedicated allocators.
    pub fn split(&self) -> Split {
        let pooled = if self.group_size >= 2 && self.pool_frac > 0.0 {
            ((self.sessions as f64 * self.pool_frac.clamp(0.0, 1.0)) as usize / self.group_size)
                * self.group_size
        } else {
            0
        };
        let groups = if self.group_size >= 2 {
            pooled / self.group_size
        } else {
            0
        };
        Split {
            pooled,
            dedicated: self.sessions - pooled,
            groups,
        }
    }

    /// The default budget: an exact fit for the initial population plus
    /// one spare dedicated envelope so churn replacements always admit.
    pub fn default_budget(&self) -> f64 {
        let split = self.split();
        split.dedicated as f64 * self.b_max + split.groups as f64 * 4.0 * self.b_o + self.b_max
    }

    /// Rows in the arrival bank (session key `k` replays row `k % rows`).
    pub fn rows(&self) -> usize {
        self.sessions.min(64)
    }

    /// A pre-filled [`ServiceConfig`] builder carrying the spec's
    /// algorithm parameters; callers add budget/exec/supervision knobs.
    pub fn service_builder(&self, budget: f64) -> ServiceConfigBuilder {
        ServiceConfig::builder(budget)
            .session_b_max(self.b_max)
            .group_b_o(self.b_o)
            .offline_delay(self.d_o)
            .offline_utilization(self.u_o)
            .window(self.w)
    }

    /// Generates the bank of feasible arrival rows the replay tiles
    /// across the run. Feasibility targets the tighter of the dedicated
    /// offline budget `U_O·B_A` and the group budget `B_O`.
    ///
    /// # Errors
    ///
    /// Unknown model names and infeasible conditioning targets.
    pub fn bank(&self) -> Result<MultiTrace, String> {
        let kind = workload_kind(&self.model)?;
        let rows = self.rows();
        let base_len = (self.ticks.min(2048) as usize).max(self.w + 1);
        let feasible_b = (self.u_o * self.b_max).min(self.b_o);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut bank = Vec::with_capacity(rows);
        for _ in 0..rows {
            let trace = kind
                .generate(&mut rng, base_len)
                .map_err(|e| e.to_string())?;
            let trace = conditioner::scale_to_feasible(&trace, feasible_b, self.d_o)
                .map_err(|e| e.to_string())?;
            bank.push(trace);
        }
        MultiTrace::new(bank).map_err(|e| e.to_string())
    }
}

/// Resolves a traffic model name to its default-parameter [`WorkloadKind`].
///
/// # Errors
///
/// Unknown names.
pub fn workload_kind(model: &str) -> Result<WorkloadKind, String> {
    Ok(match model {
        "cbr" => WorkloadKind::Cbr(Default::default()),
        "poisson" => WorkloadKind::Poisson(Default::default()),
        "onoff" => WorkloadKind::OnOff(Default::default()),
        "mmpp" => WorkloadKind::Mmpp(Default::default()),
        "pareto" => WorkloadKind::Pareto(Default::default()),
        "video" => WorkloadKind::Video(Default::default()),
        "spike" => WorkloadKind::Spike(Default::default()),
        other => return Err(format!("unknown model {other}")),
    })
}

/// A control-plane backend the replay can drive: the in-process
/// [`ControlPlane`] or a gateway [`Client`] over TCP.
pub trait ReplayTarget {
    /// Admits one dedicated session; returns its key.
    fn admit(&mut self, tenant: &str) -> Result<u64, String>;
    /// Admits a pooled group; returns the members' keys.
    fn admit_group(&mut self, tenant: &str, size: usize) -> Result<Vec<u64>, String>;
    /// Starts draining a session out.
    fn leave(&mut self, key: u64) -> Result<(), String>;
    /// Applies one tick of arrivals.
    fn tick(&mut self, arrivals: &[(u64, f64)]) -> Result<(), String>;
}

impl ReplayTarget for ControlPlane {
    fn admit(&mut self, tenant: &str) -> Result<u64, String> {
        ControlPlane::admit(self, tenant).map_err(|e| e.to_string())
    }

    fn admit_group(&mut self, tenant: &str, size: usize) -> Result<Vec<u64>, String> {
        ControlPlane::admit_group(self, tenant, size).map_err(|e| e.to_string())
    }

    fn leave(&mut self, key: u64) -> Result<(), String> {
        ControlPlane::leave(self, key).map_err(|e| e.to_string())
    }

    fn tick(&mut self, arrivals: &[(u64, f64)]) -> Result<(), String> {
        ControlPlane::tick(self, arrivals).map_err(|e| e.to_string())
    }
}

impl ReplayTarget for Client {
    fn admit(&mut self, tenant: &str) -> Result<u64, String> {
        self.join(tenant).map_err(|e| e.to_string())
    }

    fn admit_group(&mut self, tenant: &str, size: usize) -> Result<Vec<u64>, String> {
        self.join_group(tenant, size as u32)
            .map_err(|e| e.to_string())
    }

    fn leave(&mut self, key: u64) -> Result<(), String> {
        Client::leave(self, key).map_err(|e| e.to_string())
    }

    fn tick(&mut self, arrivals: &[(u64, f64)]) -> Result<(), String> {
        Client::tick(self, arrivals)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }
}

/// What a finished replay reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOutcome {
    /// Total session-ticks driven (live sessions summed over ticks).
    pub session_ticks: u64,
    /// Churn events performed (one leave + one admit each).
    pub churn_events: u64,
    /// Wall-clock seconds spent in the replay loop.
    pub elapsed_sec: f64,
}

impl ReplayOutcome {
    /// Session-ticks per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_sec > 0.0 {
            self.session_ticks as f64 / self.elapsed_sec
        } else {
            f64::INFINITY
        }
    }
}

/// Replays the spec's workload against `target`: admit pooled groups,
/// admit dedicated sessions, then tick with periodic churn (the oldest
/// dedicated session leaves, a fresh one is admitted in its place).
///
/// The operation order is a function of the spec alone, so replaying the
/// same spec against an in-process control plane and a gateway client
/// yields identical session keys and identical invariant metrics.
///
/// # Errors
///
/// Bank-generation failures and whatever the target refuses.
pub fn run_replay<T: ReplayTarget>(
    target: &mut T,
    spec: &ReplaySpec,
) -> Result<ReplayOutcome, String> {
    if spec.sessions == 0 {
        return Err("replay needs at least 1 session".into());
    }
    let split = spec.split();
    let rows = spec.rows();
    let replay = spec.bank()?;

    let mut pooled_keys: Vec<u64> = Vec::with_capacity(split.pooled);
    for g in 0..split.groups {
        let members = target.admit_group(TENANTS[g % TENANTS.len()], spec.group_size)?;
        pooled_keys.extend(members);
    }
    let mut dedicated_keys: VecDeque<u64> = VecDeque::with_capacity(split.dedicated);
    for i in 0..split.dedicated {
        dedicated_keys.push_back(target.admit(TENANTS[i % TENANTS.len()])?);
    }

    let mut arrivals: Vec<(u64, f64)> = Vec::with_capacity(spec.sessions);
    let mut session_ticks: u64 = 0;
    let mut churn_events: u64 = 0;
    let started = std::time::Instant::now();
    for t in 0..spec.ticks {
        if spec.churn_every > 0 && t > 0 && t.is_multiple_of(spec.churn_every) {
            if let Some(gone) = dedicated_keys.pop_front() {
                target.leave(gone)?;
                let key = target.admit(TENANTS[churn_events as usize % TENANTS.len()])?;
                dedicated_keys.push_back(key);
                churn_events += 1;
            }
        }
        arrivals.clear();
        let col = (t as usize) % replay.len();
        for &key in pooled_keys.iter().chain(dedicated_keys.iter()) {
            let bits = replay.session(key as usize % rows).arrival(col);
            if bits > 0.0 {
                arrivals.push((key, bits));
            }
        }
        session_ticks += (pooled_keys.len() + dedicated_keys.len()) as u64;
        target.tick(&arrivals)?;
    }
    Ok(ReplayOutcome {
        session_ticks,
        churn_events,
        elapsed_sec: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdba_ctrl::ExecMode;

    fn tiny_spec() -> ReplaySpec {
        ReplaySpec {
            sessions: 8,
            ticks: 64,
            churn_every: 16,
            ..ReplaySpec::default()
        }
    }

    #[test]
    fn split_and_budget_match_the_serve_arithmetic() {
        let spec = ReplaySpec::default();
        let split = spec.split();
        assert_eq!(split.pooled, 20);
        assert_eq!(split.groups, 5);
        assert_eq!(split.dedicated, 80);
        let expected = 80.0 * 16.0 + 5.0 * 4.0 * 8.0 + 16.0;
        assert!((spec.default_budget() - expected).abs() < 1e-9);
    }

    #[test]
    fn replay_is_deterministic_in_process() {
        let spec = tiny_spec();
        let run = |spec: &ReplaySpec| {
            let cfg = spec
                .service_builder(spec.default_budget())
                .exec(ExecMode::Inline)
                .build()
                .unwrap();
            let mut plane = ControlPlane::new(cfg);
            let outcome = run_replay(&mut plane, spec).unwrap();
            let snap = plane.snapshot().unwrap();
            plane.shutdown();
            (outcome, snap.invariant_view())
        };
        let (a_out, a_view) = run(&spec);
        let (b_out, b_view) = run(&spec);
        assert_eq!(a_out.session_ticks, b_out.session_ticks);
        assert_eq!(a_out.churn_events, b_out.churn_events);
        assert_eq!(a_view, b_view);
        assert!(a_out.churn_events > 0, "churn exercised");
    }
}
