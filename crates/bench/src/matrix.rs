//! The sessions × shards tick-throughput matrix shared by the
//! `ctrl_tick` criterion bench and the `cdba-cli bench-ctrl` subcommand.
//!
//! Both entry points must measure the *same* configurations the same way
//! for the committed `BENCH_ctrl.json` baseline to mean anything: one
//! populated control plane per (case, sessions) cell, arrivals built
//! outside the service, a warmup pass, then a wall-clock measured pass.
//! The sessions axis runs 100 → 100 000 with the measured tick count
//! scaled down as the population grows, so every cell does a comparable
//! amount of allocator work.
//!
//! The interesting shape of the matrix: at 100 sessions the inline
//! single-threaded backend wins (per-tick work is too small to amortize
//! cross-thread dispatch), while from 10 000 sessions up the threaded
//! 4-shard backend must win — the inversion the CI gate pins. That claim
//! only means something on parallel hardware, so [`tick_cases`] includes
//! the pure threaded rows only when the host has more than one core; the
//! adaptive rows run everywhere, since adaptive execution makes the
//! inline-vs-threaded call itself from measured per-tick cost.

use cdba_ctrl::{ControlPlane, ExecMode, ServiceConfig};
use std::hint::black_box;
use std::time::Instant;

/// One benchmarked service configuration.
pub struct TickCase {
    /// Stable row label, e.g. `threaded/s4/d4`.
    pub label: &'static str,
    /// Shard count.
    pub shards: usize,
    /// Inline or threaded backend.
    pub exec: ExecMode,
    /// Pipeline depth (dispatched-but-unacked ticks in flight).
    pub depth: u32,
}

/// The standard benchmarked configurations *for this host*: the inline
/// baseline and the adaptive backend always; the pure threaded backends
/// only on multi-core hosts. On one core a worker thread has nothing to
/// overlap against — every threaded row would just pin a meaningless
/// inversion into the committed baseline — while adaptive mode makes its
/// own inline-vs-threaded call from measured cost, so its rows are
/// honest on any hardware.
pub fn tick_cases() -> Vec<TickCase> {
    let mut cases = vec![TickCase {
        label: "inline/s1",
        shards: 1,
        exec: ExecMode::Inline,
        depth: 1,
    }];
    if host_cores() > 1 {
        cases.extend([
            TickCase {
                label: "threaded/s1/d4",
                shards: 1,
                exec: ExecMode::Threaded,
                depth: 4,
            },
            TickCase {
                label: "threaded/s4/d1",
                shards: 4,
                exec: ExecMode::Threaded,
                depth: 1,
            },
            TickCase {
                label: "threaded/s4/d4",
                shards: 4,
                exec: ExecMode::Threaded,
                depth: 4,
            },
        ]);
    }
    cases.push(TickCase {
        label: "adaptive/s4/d4",
        shards: 4,
        exec: ExecMode::Adaptive,
        depth: 4,
    });
    cases
}

/// The standard session-population axis of the committed baseline.
pub const SESSIONS_AXIS: &[usize] = &[100, 1_000, 10_000, 100_000];

/// Measured ticks for a population size: scaled down as sessions grow so
/// every cell drives a comparable number of session-ticks.
pub fn measured_ticks(sessions: usize) -> u64 {
    match sessions {
        0..=100 => 2_048,
        101..=1_000 => 1_024,
        1_001..=10_000 => 512,
        _ => 128,
    }
}

/// Warmup ticks for a population size (an eighth of the measured pass).
pub fn warmup_ticks(sessions: usize) -> u64 {
    (measured_ticks(sessions) / 8).max(8)
}

/// Builds and populates the control plane for one matrix cell. The
/// budget is sized to the population, so every admit succeeds.
pub fn tick_service(case: &TickCase, sessions: usize) -> (ControlPlane, Vec<u64>) {
    let cfg = ServiceConfig::builder(sessions as f64 * 16.0)
        .session_b_max(16.0)
        .group_b_o(8.0)
        .offline_delay(8)
        .window(16)
        .shards(case.shards)
        .exec(case.exec)
        .pipeline_depth(case.depth)
        .build()
        .expect("valid service config");
    let mut service = ControlPlane::new(cfg);
    let keys: Vec<u64> = (0..sessions)
        .map(|i| {
            service
                .admit(["alpha", "beta", "gamma"][i % 3])
                .expect("budget sized for the population")
        })
        .collect();
    (service, keys)
}

/// Drives `ticks` ticks of deterministic arrivals through the service.
/// `round` carries the arrival phase across calls so warmup and measured
/// passes see a continuous stream. The arrival pattern
/// `(round + i) mod 5` has period 5 in `round`, so the five distinct
/// batches are built once up front and the timed loop measures the
/// service, not the batch construction.
pub fn drive(service: &mut ControlPlane, keys: &[u64], ticks: u64, round: &mut u64) {
    let batches: Vec<Vec<(u64, f64)>> = (0..5u64)
        .map(|phase| {
            keys.iter()
                .enumerate()
                .map(|(i, &key)| (key, ((phase + i as u64) % 5) as f64))
                .collect()
        })
        .collect();
    for _ in 0..ticks {
        let batch = &batches[(*round % 5) as usize];
        service.tick(black_box(batch)).expect("keys are live");
        *round += 1;
    }
}

/// One measured matrix cell, ready to serialize into `BENCH_ctrl.json`.
#[derive(Debug, Clone)]
pub struct TickMeasurement {
    /// The case's row label.
    pub label: &'static str,
    /// Session population.
    pub sessions: usize,
    /// Shard count.
    pub shards: usize,
    /// `"inline"` or `"threaded"`.
    pub exec: &'static str,
    /// Pipeline depth.
    pub depth: u32,
    /// Measured ticks.
    pub ticks: u64,
    /// Wall-clock seconds for the measured pass.
    pub elapsed_sec: f64,
    /// Ticks per second.
    pub ticks_per_sec: f64,
}

impl TickMeasurement {
    /// The `BENCH_ctrl.json` row for this cell.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "label": self.label,
            "sessions": self.sessions,
            "shards": self.shards,
            "exec": self.exec,
            "pipeline_depth": self.depth,
            "ticks": self.ticks,
            "elapsed_sec": self.elapsed_sec,
            "ticks_per_sec": self.ticks_per_sec,
            "session_ticks_per_sec": self.ticks_per_sec * self.sessions as f64,
        })
    }
}

/// Measures one (case, sessions) cell: populate, warm up, then time a
/// measured pass. `warmup`/`measured` default to the standard scaled
/// counts when `None` (the CLI overrides them for quick smoke runs).
pub fn measure_cell(
    case: &TickCase,
    sessions: usize,
    warmup: Option<u64>,
    measured: Option<u64>,
) -> TickMeasurement {
    let warmup = warmup.unwrap_or_else(|| warmup_ticks(sessions));
    let measured = measured.unwrap_or_else(|| measured_ticks(sessions));
    let (mut service, keys) = tick_service(case, sessions);
    let mut round = 0u64;
    drive(&mut service, &keys, warmup, &mut round);
    let started = Instant::now();
    drive(&mut service, &keys, measured, &mut round);
    let elapsed = started.elapsed().as_secs_f64();
    service.shutdown();
    let ticks_per_sec = if elapsed > 0.0 {
        measured as f64 / elapsed
    } else {
        f64::INFINITY
    };
    TickMeasurement {
        label: case.label,
        sessions,
        shards: case.shards,
        exec: match case.exec {
            ExecMode::Inline => "inline",
            ExecMode::Threaded => "threaded",
            ExecMode::Adaptive => "adaptive",
        },
        depth: case.depth,
        ticks: measured,
        elapsed_sec: elapsed,
        ticks_per_sec,
    }
}

/// Runs the full matrix: every standard case over `sessions_list`,
/// reporting progress through `progress`. The returned rows are in
/// (sessions, case) order — the order `BENCH_ctrl.json` commits.
pub fn run_matrix(
    sessions_list: &[usize],
    warmup: Option<u64>,
    measured: Option<u64>,
    mut progress: impl FnMut(&TickMeasurement),
) -> Vec<TickMeasurement> {
    let cases = tick_cases();
    let mut rows = Vec::with_capacity(sessions_list.len() * cases.len());
    for &sessions in sessions_list {
        for case in &cases {
            let row = measure_cell(case, sessions, warmup, measured);
            progress(&row);
            rows.push(row);
        }
    }
    rows
}

/// Renders matrix rows as the `BENCH_ctrl.json` document. The measuring
/// host's core count is recorded because the matrix's headline property —
/// threaded/4-shard overtaking inline at ≥ 10 000 sessions — is a
/// statement about parallel hardware: on a single-core host the threaded
/// backends pay dispatch overhead with nothing to overlap against, and
/// the inversion gate reads `cores` to know whether the comparison is
/// meaningful.
pub fn matrix_report(rows: &[TickMeasurement]) -> serde_json::Value {
    serde_json::json!({
        "bench": "ctrl_tick",
        "cores": host_cores(),
        "results": rows.iter().map(TickMeasurement::to_json).collect::<Vec<_>>(),
    })
}

/// The measuring host's available parallelism.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ticks_scale_down_with_population() {
        let scaled: Vec<u64> = SESSIONS_AXIS.iter().map(|&s| measured_ticks(s)).collect();
        assert_eq!(scaled, vec![2_048, 1_024, 512, 128]);
        assert!(scaled.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn host_cases_always_cover_inline_and_adaptive() {
        let cases = tick_cases();
        let labels: Vec<&str> = cases.iter().map(|c| c.label).collect();
        assert!(labels.contains(&"inline/s1"));
        assert!(labels.contains(&"adaptive/s4/d4"));
        assert_eq!(
            labels.iter().any(|l| l.starts_with("threaded/")),
            host_cores() > 1,
            "threaded rows appear exactly on multi-core hosts"
        );
    }

    #[test]
    fn a_tiny_cell_measures_and_reports() {
        let row = measure_cell(&tick_cases()[0], 8, Some(4), Some(16));
        assert_eq!(row.label, "inline/s1");
        assert_eq!(row.sessions, 8);
        assert_eq!(row.ticks, 16);
        assert!(row.ticks_per_sec > 0.0);
        let doc = matrix_report(std::slice::from_ref(&row));
        let body = serde_json::to_string(&doc).expect("report renders");
        assert!(body.contains("\"label\":\"inline/s1\""), "body: {body}");
        assert!(body.contains("\"sessions\":8"), "body: {body}");
    }
}
