//! The sessions × shards tick-throughput matrix shared by the
//! `ctrl_tick` criterion bench and the `cdba-cli bench-ctrl` subcommand.
//!
//! Both entry points must measure the *same* configurations the same way
//! for the committed `BENCH_ctrl.json` baseline to mean anything: one
//! populated control plane per (case, sessions) cell, arrivals built
//! outside the service, a warmup pass, then a wall-clock measured pass.
//! The sessions axis runs 100 → 100 000 with the measured tick count
//! scaled down as the population grows, so every cell does a comparable
//! amount of allocator work.
//!
//! The interesting shape of the matrix: at 100 sessions the inline
//! single-threaded backend wins (per-tick work is too small to amortize
//! cross-thread dispatch), while from 10 000 sessions up the threaded
//! 4-shard backend must win — the inversion the CI gate pins. That claim
//! only means something on parallel hardware, so [`tick_cases`] includes
//! the pure threaded rows only when the host has more than one core; the
//! adaptive rows run everywhere, since adaptive execution makes the
//! inline-vs-threaded call itself from measured per-tick cost.

use cdba_ctrl::{CheckpointMirror, CheckpointProbe, ControlPlane, ExecMode, ServiceConfig};
use std::hint::black_box;
use std::time::Instant;

/// One benchmarked service configuration.
pub struct TickCase {
    /// Stable row label, e.g. `threaded/s4/d4` or `inline/s1/k2`.
    pub label: &'static str,
    /// Shard count.
    pub shards: usize,
    /// Inline or threaded backend.
    pub exec: ExecMode,
    /// Pipeline depth (dispatched-but-unacked ticks in flight).
    pub depth: u32,
    /// Intra-shard kernel threads (1 = sequential sweep).
    pub kernel_threads: usize,
}

/// The standard benchmarked configurations *for this host*: the inline
/// baseline and the adaptive backend always; the pure threaded backends
/// only on multi-core hosts. On one core a worker thread has nothing to
/// overlap against — every threaded row would just pin a meaningless
/// inversion into the committed baseline — while adaptive mode makes its
/// own inline-vs-threaded call from measured cost, so its rows are
/// honest on any hardware.
pub fn tick_cases() -> Vec<TickCase> {
    let mut cases = vec![TickCase {
        label: "inline/s1",
        shards: 1,
        exec: ExecMode::Inline,
        depth: 1,
        kernel_threads: 1,
    }];
    if host_cores() > 1 {
        cases.extend([
            // The kernel-thread axis: the same inline single-shard
            // workload with the slot range swept by 2 and 4 worker
            // threads. Like the threaded rows, the scaling claim (more
            // kernel threads must not be slower at scale) only means
            // something on parallel hardware.
            TickCase {
                label: "inline/s1/k2",
                shards: 1,
                exec: ExecMode::Inline,
                depth: 1,
                kernel_threads: 2,
            },
            TickCase {
                label: "inline/s1/k4",
                shards: 1,
                exec: ExecMode::Inline,
                depth: 1,
                kernel_threads: 4,
            },
            TickCase {
                label: "threaded/s1/d4",
                shards: 1,
                exec: ExecMode::Threaded,
                depth: 4,
                kernel_threads: 1,
            },
            TickCase {
                label: "threaded/s4/d1",
                shards: 4,
                exec: ExecMode::Threaded,
                depth: 1,
                kernel_threads: 1,
            },
            TickCase {
                label: "threaded/s4/d4",
                shards: 4,
                exec: ExecMode::Threaded,
                depth: 4,
                kernel_threads: 1,
            },
        ]);
    }
    cases.push(TickCase {
        label: "adaptive/s4/d4",
        shards: 4,
        exec: ExecMode::Adaptive,
        depth: 4,
        kernel_threads: 1,
    });
    cases
}

/// The standard session-population axis of the committed baseline.
pub const SESSIONS_AXIS: &[usize] = &[100, 1_000, 10_000, 100_000];

/// Measured ticks for a population size: scaled down as sessions grow so
/// every cell drives a comparable number of session-ticks.
pub fn measured_ticks(sessions: usize) -> u64 {
    match sessions {
        0..=100 => 2_048,
        101..=1_000 => 1_024,
        1_001..=10_000 => 512,
        _ => 128,
    }
}

/// Warmup ticks for a population size (an eighth of the measured pass).
pub fn warmup_ticks(sessions: usize) -> u64 {
    (measured_ticks(sessions) / 8).max(8)
}

/// Builds and populates the control plane for one matrix cell. The
/// budget is sized to the population, so every admit succeeds.
pub fn tick_service(case: &TickCase, sessions: usize) -> (ControlPlane, Vec<u64>) {
    let cfg = ServiceConfig::builder(sessions as f64 * 16.0)
        .session_b_max(16.0)
        .group_b_o(8.0)
        .offline_delay(8)
        .window(16)
        .shards(case.shards)
        .exec(case.exec)
        .pipeline_depth(case.depth)
        .kernel_threads(case.kernel_threads)
        .build()
        .expect("valid service config");
    let mut service = ControlPlane::new(cfg);
    let keys: Vec<u64> = (0..sessions)
        .map(|i| {
            service
                .admit(["alpha", "beta", "gamma"][i % 3])
                .expect("budget sized for the population")
        })
        .collect();
    (service, keys)
}

/// Drives `ticks` ticks of deterministic arrivals through the service.
/// `round` carries the arrival phase across calls so warmup and measured
/// passes see a continuous stream. The arrival pattern
/// `(round + i) mod 5` has period 5 in `round`, so the five distinct
/// batches are built once up front and the timed loop measures the
/// service, not the batch construction.
pub fn drive(service: &mut ControlPlane, keys: &[u64], ticks: u64, round: &mut u64) {
    let batches: Vec<Vec<(u64, f64)>> = (0..5u64)
        .map(|phase| {
            keys.iter()
                .enumerate()
                .map(|(i, &key)| (key, ((phase + i as u64) % 5) as f64))
                .collect()
        })
        .collect();
    for _ in 0..ticks {
        let batch = &batches[(*round % 5) as usize];
        service.tick(black_box(batch)).expect("keys are live");
        *round += 1;
    }
}

/// One measured matrix cell, ready to serialize into `BENCH_ctrl.json`.
#[derive(Debug, Clone)]
pub struct TickMeasurement {
    /// The case's row label.
    pub label: &'static str,
    /// Session population.
    pub sessions: usize,
    /// Shard count.
    pub shards: usize,
    /// `"inline"` or `"threaded"`.
    pub exec: &'static str,
    /// Pipeline depth.
    pub depth: u32,
    /// Intra-shard kernel threads.
    pub kernel_threads: usize,
    /// Measured ticks.
    pub ticks: u64,
    /// Wall-clock seconds for the measured pass.
    pub elapsed_sec: f64,
    /// Ticks per second.
    pub ticks_per_sec: f64,
}

impl TickMeasurement {
    /// The `BENCH_ctrl.json` row for this cell.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "label": self.label,
            "sessions": self.sessions,
            "shards": self.shards,
            "exec": self.exec,
            "pipeline_depth": self.depth,
            "kernel_threads": self.kernel_threads,
            "ticks": self.ticks,
            "elapsed_sec": self.elapsed_sec,
            "ticks_per_sec": self.ticks_per_sec,
            "session_ticks_per_sec": self.ticks_per_sec * self.sessions as f64,
        })
    }
}

/// Measures one (case, sessions) cell: populate, warm up, then time a
/// measured pass. `warmup`/`measured` default to the standard scaled
/// counts when `None` (the CLI overrides them for quick smoke runs).
pub fn measure_cell(
    case: &TickCase,
    sessions: usize,
    warmup: Option<u64>,
    measured: Option<u64>,
) -> TickMeasurement {
    let warmup = warmup.unwrap_or_else(|| warmup_ticks(sessions));
    let measured = measured.unwrap_or_else(|| measured_ticks(sessions));
    let (mut service, keys) = tick_service(case, sessions);
    let mut round = 0u64;
    drive(&mut service, &keys, warmup, &mut round);
    let started = Instant::now();
    drive(&mut service, &keys, measured, &mut round);
    let elapsed = started.elapsed().as_secs_f64();
    service.shutdown();
    let ticks_per_sec = if elapsed > 0.0 {
        measured as f64 / elapsed
    } else {
        f64::INFINITY
    };
    TickMeasurement {
        label: case.label,
        sessions,
        shards: case.shards,
        exec: match case.exec {
            ExecMode::Inline => "inline",
            ExecMode::Threaded => "threaded",
            ExecMode::Adaptive => "adaptive",
        },
        depth: case.depth,
        kernel_threads: case.kernel_threads,
        ticks: measured,
        elapsed_sec: elapsed,
        ticks_per_sec,
    }
}

/// Runs the full matrix: every standard case over `sessions_list`,
/// reporting progress through `progress`. The returned rows are in
/// (sessions, case) order — the order `BENCH_ctrl.json` commits.
pub fn run_matrix(
    sessions_list: &[usize],
    warmup: Option<u64>,
    measured: Option<u64>,
    mut progress: impl FnMut(&TickMeasurement),
) -> Vec<TickMeasurement> {
    let cases = tick_cases();
    let mut rows = Vec::with_capacity(sessions_list.len() * cases.len());
    for &sessions in sessions_list {
        for case in &cases {
            let row = measure_cell(case, sessions, warmup, measured);
            progress(&row);
            rows.push(row);
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Checkpoint codec matrix
// ---------------------------------------------------------------------------

/// The population axis of the committed checkpoint rows. It runs an
/// order of magnitude past the tick matrix because the columnar codec's
/// claims are about scale: a 1M-session genesis encode and chain restore
/// must stay inside the CI wall-clock ceiling, and the bytes an
/// incremental spends per dirty session must not move with population.
pub const CHECKPOINT_SESSIONS_AXIS: &[usize] = &[10_000, 100_000, 1_000_000];

/// Sessions dirtied *between ticks* before the measured incremental
/// encode. Fixed across the population axis on purpose: a dirty-only
/// columnar encode does O(dirty) work, so
/// `checkpoint_bytes_per_dirty_session` must come out
/// population-independent — the property the CI gate pins.
pub const CHECKPOINT_DIRTY_SESSIONS: usize = 1_024;

/// One measured checkpoint cell, ready to serialize into the
/// `checkpoint` section of `BENCH_ctrl.json`.
#[derive(Debug, Clone)]
pub struct CheckpointMeasurement {
    /// Session population on the probe shard.
    pub sessions: usize,
    /// Rows dirtied before the measured incremental encode.
    pub dirty_sessions: usize,
    /// Wall-clock milliseconds for a warm full-population genesis encode.
    pub encode_ms: f64,
    /// Wall-clock milliseconds for the dirty-only incremental encode.
    pub dirty_encode_ms: f64,
    /// Wall-clock milliseconds to rebuild a fresh mirror from the
    /// genesis + incremental chain. Cold: dominated by first-touch page
    /// faults on the mirror's slab, so it scales with the host's memory
    /// subsystem as much as with the codec.
    pub restore_ms: f64,
    /// Wall-clock milliseconds to re-apply the genesis frame onto the
    /// already-populated mirror — the steady-state decode into
    /// preallocated columns, with zero per-session heap allocation. This
    /// is the codec's own speed, free of the cold slab's fault noise.
    pub restore_warm_ms: f64,
    /// Genesis frame size in bytes.
    pub checkpoint_bytes: usize,
    /// Incremental frame bytes divided by the rows it carries.
    pub bytes_per_dirty_session: f64,
}

impl CheckpointMeasurement {
    /// The `BENCH_ctrl.json` checkpoint row for this cell.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "sessions": self.sessions,
            "dirty_sessions": self.dirty_sessions,
            "checkpoint_encode_ms": self.encode_ms,
            "dirty_encode_ms": self.dirty_encode_ms,
            "restore_ms": self.restore_ms,
            "restore_warm_ms": self.restore_warm_ms,
            "checkpoint_bytes": self.checkpoint_bytes,
            "checkpoint_bytes_per_dirty_session": self.bytes_per_dirty_session,
        })
    }
}

/// The service config the checkpoint cells run. Narrower window than the
/// tick matrix so a 1M-session slab (probe + mirror + frame all resident
/// at once) stays comfortably inside CI memory.
pub fn checkpoint_config(sessions: usize) -> ServiceConfig {
    ServiceConfig::builder(sessions as f64 * 16.0)
        .session_b_max(16.0)
        .group_b_o(8.0)
        .offline_delay(4)
        .window(8)
        .build()
        .expect("valid service config")
}

/// Measures one checkpoint cell: populate a probe shard, meter a few
/// ticks of history into the rings, then time a warm genesis encode, a
/// dirty-only incremental encode (`dirty` rows churned between ticks —
/// the mutation pattern incrementals exist for; a metered tick dirties
/// the whole population), and a fresh-mirror restore of the two-frame
/// chain.
pub fn measure_checkpoint(sessions: usize, dirty: usize) -> CheckpointMeasurement {
    let cfg = checkpoint_config(sessions);
    let mut probe = CheckpointProbe::new(&cfg);
    probe.populate(sessions);
    probe.tick(4);
    let mut genesis = Vec::new();
    // First encode grows the pooled column buffers; the measured pass is
    // the steady-state (allocation-free) one, like a live worker's.
    probe.encode(true, &mut genesis);
    let started = Instant::now();
    let rows = probe.encode(true, black_box(&mut genesis));
    let encode_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(rows as usize, sessions, "genesis carries the population");

    let dirty = dirty.min(sessions);
    probe.churn(dirty);
    let mut incr = Vec::new();
    let started = Instant::now();
    let dirty_rows = probe.encode(false, black_box(&mut incr));
    let dirty_encode_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        dirty_rows as usize, dirty,
        "an incremental carries exactly the dirtied rows"
    );

    let mut mirror = CheckpointMirror::new(&cfg);
    let started = Instant::now();
    mirror.apply(&genesis).expect("genesis frame applies");
    mirror.apply(&incr).expect("incremental frame applies");
    let restore_ms = started.elapsed().as_secs_f64() * 1e3;
    // Warm pass: the mirror's slab is already sized, so this is the
    // decode alone — no per-session allocation, no first-touch faults.
    let started = Instant::now();
    mirror.apply(&genesis).expect("warm genesis re-applies");
    let restore_warm_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(mirror.live_sessions(), sessions);

    CheckpointMeasurement {
        sessions,
        dirty_sessions: dirty,
        encode_ms,
        dirty_encode_ms,
        restore_ms,
        restore_warm_ms,
        checkpoint_bytes: genesis.len(),
        bytes_per_dirty_session: incr.len() as f64 / dirty as f64,
    }
}

/// Runs the checkpoint axis, reporting progress through `progress`.
pub fn run_checkpoint_matrix(
    sessions_list: &[usize],
    mut progress: impl FnMut(&CheckpointMeasurement),
) -> Vec<CheckpointMeasurement> {
    sessions_list
        .iter()
        .map(|&sessions| {
            let row = measure_checkpoint(sessions, CHECKPOINT_DIRTY_SESSIONS);
            progress(&row);
            row
        })
        .collect()
}

/// Renders matrix rows as the `BENCH_ctrl.json` document. The measuring
/// host's core count is recorded because the matrix's headline property —
/// threaded/4-shard overtaking inline at ≥ 10 000 sessions — is a
/// statement about parallel hardware: on a single-core host the threaded
/// backends pay dispatch overhead with nothing to overlap against, and
/// the inversion gate reads `cores` to know whether the comparison is
/// meaningful. The checkpoint rows live in their own `checkpoint` list
/// (they carry different columns, and the tick-matrix gates must not
/// trip over them); an empty slice omits nothing — the section is always
/// present so gates can tell "not measured this run" from "file predates
/// the bench".
pub fn matrix_report(
    rows: &[TickMeasurement],
    checkpoint: &[CheckpointMeasurement],
) -> serde_json::Value {
    serde_json::json!({
        "bench": "ctrl_tick",
        "cores": host_cores(),
        "results": rows.iter().map(TickMeasurement::to_json).collect::<Vec<_>>(),
        "checkpoint": checkpoint
            .iter()
            .map(CheckpointMeasurement::to_json)
            .collect::<Vec<_>>(),
    })
}

/// The measuring host's available parallelism.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ticks_scale_down_with_population() {
        let scaled: Vec<u64> = SESSIONS_AXIS.iter().map(|&s| measured_ticks(s)).collect();
        assert_eq!(scaled, vec![2_048, 1_024, 512, 128]);
        assert!(scaled.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn host_cases_always_cover_inline_and_adaptive() {
        let cases = tick_cases();
        let labels: Vec<&str> = cases.iter().map(|c| c.label).collect();
        assert!(labels.contains(&"inline/s1"));
        assert!(labels.contains(&"adaptive/s4/d4"));
        assert_eq!(
            labels.iter().any(|l| l.starts_with("threaded/")),
            host_cores() > 1,
            "threaded rows appear exactly on multi-core hosts"
        );
        assert_eq!(
            labels.iter().any(|l| l.contains("/k")),
            host_cores() > 1,
            "kernel-thread rows appear exactly on multi-core hosts"
        );
        for case in &cases {
            assert_eq!(
                case.label.contains("/k"),
                case.kernel_threads > 1,
                "label {} carries its kernel-thread suffix",
                case.label
            );
        }
    }

    #[test]
    fn a_tiny_cell_measures_and_reports() {
        let row = measure_cell(&tick_cases()[0], 8, Some(4), Some(16));
        assert_eq!(row.label, "inline/s1");
        assert_eq!(row.sessions, 8);
        assert_eq!(row.ticks, 16);
        assert!(row.ticks_per_sec > 0.0);
        let ckpt = measure_checkpoint(8, 4);
        let doc = matrix_report(std::slice::from_ref(&row), std::slice::from_ref(&ckpt));
        let body = serde_json::to_string(&doc).expect("report renders");
        assert!(body.contains("\"label\":\"inline/s1\""), "body: {body}");
        assert!(body.contains("\"sessions\":8"), "body: {body}");
        assert!(
            body.contains("\"checkpoint_bytes_per_dirty_session\""),
            "body: {body}"
        );
    }

    /// The tentpole's economy claim at test scale: the bytes an
    /// incremental spends per dirty session must not move with the
    /// population it is cut from (CI re-pins this at 10k → 1M).
    #[test]
    fn incremental_bytes_per_dirty_session_ignore_population() {
        let small = measure_checkpoint(512, 64);
        let large = measure_checkpoint(4_096, 64);
        assert_eq!(small.dirty_sessions, 64);
        assert_eq!(large.dirty_sessions, 64);
        let ratio = large.bytes_per_dirty_session / small.bytes_per_dirty_session;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "an 8× population moved bytes/dirty-session by {ratio:.3}× \
             (small {:.1}, large {:.1})",
            small.bytes_per_dirty_session,
            large.bytes_per_dirty_session,
        );
        // And a genesis is population-proportional, as it must be.
        assert!(large.checkpoint_bytes > 4 * small.checkpoint_bytes);
    }
}
