//! `cdba-cli` — generate workloads, inspect them, run the paper's
//! algorithms over them, plan clairvoyant baselines, and drive the
//! control plane as a service (in-process or over the gateway wire), from
//! the command line.
//!
//! ```text
//! cdba-cli generate      --model mmpp --len 4000 --seed 7 --out t.cdba [--feasible B,D] [--sessions K]
//! cdba-cli inspect       --trace t.cdba
//! cdba-cli run           --trace t.cdba --alg single|lookback|phased|continuous|combined
//!                        [--bandwidth 64] [--delay 8] [--utilization 0.25] [--window 16] [--json out.json]
//! cdba-cli offline       --trace t.cdba [--bandwidth 64] [--delay 8]
//! cdba-cli serve         --sessions 100 [--shards 4] [--ticks 100000] [--json snap.json]
//! cdba-cli gateway       --addr 127.0.0.1:4411 [--sessions 100] [--shards 4] ...
//! cdba-cli client        --addr 127.0.0.1:4411 --sessions 100 [--ticks 100000] [--json snap.json] [--delta yes] [--codec binary]
//! cdba-cli fleet         [--ctrl-procs 2] [--gateways 2] [--placement p2c] [--json snap.json]
//! cdba-cli relay         --backends HOST:PORT,HOST:PORT
//! cdba-cli bench-gateway [--ticks 2000] [--connections 1,4,16,32,64] [--out BENCH_gateway.json]
//! cdba-cli bench-fleet   [--ticks 2000] [--out BENCH_fleet.json]
//! ```
//!
//! (The full per-command flag lists are in `USAGE`, printed by `--help`.)
//! `serve` and `client` replay the same deterministic churn workload, so a
//! snapshot taken over the wire is bitwise-identical — in its
//! placement-invariant view — to one taken in-process. `fleet` replays it
//! once more across a multi-process fleet (`cdba-fleet`): M `gateway`
//! children behind N `relay` children, sessions placed by a pluggable
//! policy and live-migrated over the wire-v4 lease frames — and the
//! assembled fleet snapshot is *still* bitwise-identical in its invariant
//! view, including under a forced drain-and-migrate and a `--fault` kill
//! of one ctrl process.
//!
//! Traces use the compact binary format of `cdba_traffic::codec` (single- or
//! multi-session).

use cdba_analysis::cost::CostModel;
use cdba_bench::matrix;
use cdba_bench::replay::{run_replay, workload_kind, ReplaySpec, ReplayTarget};
use cdba_core::combined::Combined;
use cdba_core::config::{CombinedConfig, InnerMulti, MultiConfig, SingleConfig};
use cdba_core::multi::{Continuous, Phased};
use cdba_core::single::{LookbackSingle, SingleSession};
use cdba_ctrl::{ControlPlane, ExecMode, FaultPlan, ServiceConfig};
use cdba_fleet::{Fleet, FleetConfig, LeastLoaded, Placement, PowerOfTwoChoices, RoundRobin};
use cdba_gateway::client::{Client, ClientConfig};
use cdba_gateway::{GatewayConfig, GatewayServer};
use cdba_obs::{MetricsServer, Registry, TraceRing};
use cdba_offline::multi::greedy_multi_offline;
use cdba_offline::single::greedy_offline;
use cdba_offline::OfflineConstraints;
use cdba_sim::engine::{simulate, simulate_multi, DrainPolicy};
use cdba_sim::verify::{verify_multi, verify_single};
use cdba_traffic::models::WorkloadKind;
use cdba_traffic::multi::independent_sessions;
use cdba_traffic::{codec, conditioner, stats, text_io, MultiTrace, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

type CliResult = Result<(), String>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "generate" => generate(rest),
        "inspect" => inspect(rest),
        "run" => run(rest),
        "offline" => offline(rest),
        "serve" => serve(rest),
        "gateway" => gateway(rest),
        "client" => client(rest),
        "fleet" => fleet(rest),
        "relay" => relay(rest),
        "bench-ctrl" => bench_ctrl(rest),
        "bench-gateway" => bench_gateway(rest),
        "bench-fleet" => bench_fleet(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: cdba-cli <command> [options]
  generate --model <cbr|poisson|onoff|mmpp|pareto|video|spike> --len N --out FILE
           [--seed S] [--sessions K] [--feasible B,D]
  inspect  --trace FILE
  run      --trace FILE --alg <single|lookback|phased|continuous|combined>
           [--bandwidth B] [--delay D] [--utilization U] [--window W]
           [--json FILE] [--timeline yes]
  offline  --trace FILE [--bandwidth B] [--delay D]
  serve    --sessions N [--shards S] [--ticks T] [--seed X] [--model M]
           [--bandwidth B] [--group-bandwidth B_O] [--delay D] [--utilization U]
           [--window W] [--group-size G] [--pool-frac F] [--churn-every C]
           [--budget B_A] [--quota Q] [--exec inline|threaded|adaptive]
           [--json FILE]
           [--summary FILE] [--fault SHARD@TICK:<kill|hang:MS|delay:MS>]
           [--checkpoint-every N] [--max-restarts R] [--shard-timeout-ms MS]
           [--kernel-threads K]
  gateway  [--addr HOST:PORT] [--workers N] [--service-queue N]
           [--idle-timeout-ms MS] [--metrics-addr HOST:PORT]
           + every `serve` service/workload flag (the workload flags fix
           the default --budget so a `client` replay admits exactly like
           `serve`); --metrics-addr serves GET /metrics (Prometheus text)
           and GET /trace (JSON lines) on a dedicated plain-HTTP listener
  client   [--addr HOST:PORT] [--json FILE] [--delta yes]
           [--codec json|binary] + every `serve` workload flag: replays
           the same deterministic churn workload over the wire and writes
           the same snapshot JSON as `serve`; --delta yes polls wire-v2
           delta snapshots and reconstructs the final snapshot from the
           diff; --codec binary fetches wire-v3 binary bodies instead of
           JSON (the decoded snapshot is identical either way)
  fleet    [--ctrl-procs 2] [--gateways 2] [--placement p2c|least-loaded|round-robin]
           [--drain PROC|none] [--drain-at TICK] [--fault PROC@TICK:kill]
           [--metrics-addr HOST:PORT] (serves the orchestrator's
           cdba_fleet_* series and trace over plain HTTP)
           [--json FILE] + every `serve` workload/service flag: replays
           the same deterministic churn workload across a multi-process
           fleet (ctrl-proc children behind relay children, spawned from
           this binary), live-migrating every dedicated session off the
           drained process at the drain tick; the assembled fleet
           snapshot's invariant view is bitwise-identical to `serve`'s
  relay    --backends HOST:PORT,HOST:PORT
           byte-shuttle frontend: binds one loopback listener per
           backend and pipes accepted connections through (spawned by
           `fleet`; rarely useful by hand)
  bench-ctrl [--sessions 100,1000,10000,100000] [--warmup W] [--ticks T]
           [--checkpoint-sessions 10000,100000,1000000]
           [--out BENCH_ctrl.json]
           measures the in-process tick matrix (every exec/shards/depth
           case over each session population) plus the columnar
           checkpoint axis (genesis encode, dirty-only incremental,
           chain restore) and writes the machine-readable report the CI
           bench gate reads; a run restricted with --sessions skips the
           checkpoint axis unless --checkpoint-sessions names one
  bench-gateway [--ticks T] [--sessions N] [--out FILE]
           [--connections 1,4,16,32,64] [--session-sweep 100,1000,...]
           drives ticks from one thread over each connection count using
           no-ack staging + count-gated commits (one round trip per tick)
           and writes machine-readable throughput/latency JSON;
           --session-sweep appends rows at 16 connections across the
           given populations with the tick count scaled down as the
           population grows
  bench-fleet [--ticks T] [--sessions N] [--ctrl-procs 2] [--gateways 2]
           [--out BENCH_fleet.json]
           runs the fleet replay (with its forced drain-and-migrate)
           once per placement policy and writes a machine-readable
           throughput/migration report";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, found {key}"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required --{key}"))
}

fn get_parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|e| format!("bad --{key} {raw}: {e}")),
    }
}

enum LoadedTrace {
    Single(Trace),
    Multi(MultiTrace),
}

fn load(path: &str) -> Result<LoadedTrace, String> {
    let raw = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let bytes = bytes::Bytes::from(raw.clone());
    if let Ok(multi) = codec::decode_multi(bytes.clone()) {
        if multi.num_sessions() > 1 {
            return Ok(LoadedTrace::Multi(multi));
        }
    }
    if let Ok(single) = codec::decode(bytes) {
        return Ok(LoadedTrace::Single(single));
    }
    // Fall back to the CSV text format.
    let text = String::from_utf8(raw).map_err(|_| format!("{path}: neither binary nor text"))?;
    if let Ok(multi) = text_io::parse_multi(&text) {
        if multi.num_sessions() > 1 {
            return Ok(LoadedTrace::Multi(multi));
        }
    }
    text_io::parse_trace(&text)
        .map(LoadedTrace::Single)
        .map_err(|e| format!("cannot decode {path} as binary or CSV: {e}"))
}

fn generate(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let model = get(&flags, "model")?;
    let len: usize = get_parse(&flags, "len", 4_000)?;
    let seed: u64 = get_parse(&flags, "seed", 0xCDBA)?;
    let sessions: usize = get_parse(&flags, "sessions", 1)?;
    let out = get(&flags, "out")?;
    let kind = match model {
        "cbr" => WorkloadKind::Cbr(Default::default()),
        "poisson" => WorkloadKind::Poisson(Default::default()),
        "onoff" => WorkloadKind::OnOff(Default::default()),
        "mmpp" => WorkloadKind::Mmpp(Default::default()),
        "pareto" => WorkloadKind::Pareto(Default::default()),
        "video" => WorkloadKind::Video(Default::default()),
        "spike" => WorkloadKind::Spike(Default::default()),
        other => return Err(format!("unknown model {other}")),
    };
    let feasible: Option<(f64, usize)> = match flags.get("feasible") {
        None => None,
        Some(raw) => {
            let (b, d) = raw
                .split_once(',')
                .ok_or_else(|| format!("--feasible wants B,D — got {raw}"))?;
            Some((
                b.parse().map_err(|e| format!("bad bandwidth {b}: {e}"))?,
                d.parse().map_err(|e| format!("bad delay {d}: {e}"))?,
            ))
        }
    };
    let csv = match flags.get("format").map(String::as_str) {
        None | Some("bin") => false,
        Some("csv") => true,
        Some(other) => return Err(format!("unknown --format {other} (bin|csv)")),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let blob: Vec<u8> = if sessions <= 1 {
        let mut trace = kind.generate(&mut rng, len).map_err(|e| e.to_string())?;
        if let Some((b, d)) = feasible {
            trace = conditioner::scale_to_feasible(&trace, b, d).map_err(|e| e.to_string())?;
        }
        println!("generated {trace}");
        if csv {
            text_io::render_trace(&trace).into_bytes()
        } else {
            codec::encode(&trace).to_vec()
        }
    } else {
        let mut multi =
            independent_sessions(&mut rng, &kind, sessions, len).map_err(|e| e.to_string())?;
        if let Some((b, d)) = feasible {
            multi = multi.scale_to_feasible(b, d).map_err(|e| e.to_string())?;
        }
        println!(
            "generated {} sessions × {} ticks, {:.1} total bits",
            multi.num_sessions(),
            multi.len(),
            multi.total()
        );
        if csv {
            text_io::render_multi(&multi).into_bytes()
        } else {
            codec::encode_multi(&multi).to_vec()
        }
    };
    std::fs::write(out, &blob).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out} ({} bytes)", blob.len());
    Ok(())
}

fn inspect(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    match load(get(&flags, "trace")?)? {
        LoadedTrace::Single(trace) => {
            let s = stats::summarize(&trace);
            println!("single-session trace: {trace}");
            println!("  std dev      {:.3}", s.std_dev);
            println!("  peak/mean    {:.3}", s.peak_to_mean);
            println!("  idle frac    {:.3}", s.idle_fraction);
            println!("  hurst (R/S)  {:.3}", s.hurst);
            println!(
                "  demand bound (D=8): {:.3} bits/tick",
                trace.demand_bound(8)
            );
        }
        LoadedTrace::Multi(multi) => {
            println!(
                "multi-session trace: {} sessions × {} ticks",
                multi.num_sessions(),
                multi.len()
            );
            for (i, session) in multi.sessions().iter().enumerate() {
                println!("  session {i}: {session}");
            }
            let agg = multi.aggregate();
            println!("  aggregate: {agg}");
        }
    }
    Ok(())
}

fn run(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let alg = get(&flags, "alg")?.to_string();
    let b: f64 = get_parse(&flags, "bandwidth", 64.0)?;
    let d: usize = get_parse(&flags, "delay", 8)?;
    let u: f64 = get_parse(&flags, "utilization", 0.25)?;
    let w: usize = get_parse(&flags, "window", 2 * d)?;
    let loaded = load(get(&flags, "trace")?)?;
    let json_out = flags.get("json").cloned();
    let show_timeline = flags
        .get("timeline")
        .is_some_and(|v| v == "1" || v == "true" || v == "yes");

    let summary: serde_json::Value = match (loaded, alg.as_str()) {
        (LoadedTrace::Single(trace), "single" | "lookback") => {
            let cfg = SingleConfig::builder(b)
                .offline_delay(d)
                .offline_utilization(u)
                .window(w)
                .build()
                .map_err(|e| e.to_string())?;
            let bounds = cfg.promised_bounds();
            let (run, certified) = if alg == "single" {
                let mut a = SingleSession::new(cfg);
                let run = simulate(&trace, &mut a, DrainPolicy::DrainToEmpty)
                    .map_err(|e| e.to_string())?;
                (run, a.certified_offline_changes())
            } else {
                let mut a = LookbackSingle::new(cfg);
                let run = simulate(&trace, &mut a, DrainPolicy::DrainToEmpty)
                    .map_err(|e| e.to_string())?;
                (run, a.certified_offline_changes())
            };
            if show_timeline {
                println!(
                    "{}\n",
                    cdba_sim::timeline::render(
                        &trace,
                        &run,
                        cdba_sim::timeline::TimelineOptions::default()
                    )
                );
            }
            let verdict = verify_single(&trace, &run, &bounds);
            println!(
                "{alg}: {} changes, max delay {:?} (bound {}), relaxed util {:.3} (bound {:.3}), \
                 peak {:.1} (bound {}), certified offline changes >= {certified}",
                verdict.changes,
                verdict.max_delay,
                bounds.max_delay,
                verdict.utilization,
                bounds.min_utilization,
                verdict.peak_allocation,
                bounds.max_bandwidth,
            );
            println!(
                "all bounds: {}",
                if verdict.all_ok() { "OK" } else { "VIOLATED" }
            );
            serde_json::json!({ "algorithm": alg, "verdict": verdict, "certified": certified })
        }
        (LoadedTrace::Multi(input), "phased" | "continuous" | "combined") => {
            let k = input.num_sessions();
            let (run, bounds, certified) = match alg.as_str() {
                "phased" => {
                    let cfg = MultiConfig::new(k, b, d).map_err(|e| e.to_string())?;
                    let bounds = cfg.phased_bounds();
                    let mut a = Phased::new(cfg);
                    let run = simulate_multi(&input, &mut a, DrainPolicy::DrainToEmpty)
                        .map_err(|e| e.to_string())?;
                    (run, bounds, a.certified_offline_changes())
                }
                "continuous" => {
                    let cfg = MultiConfig::new(k, b, d).map_err(|e| e.to_string())?;
                    let bounds = cfg.continuous_bounds();
                    let mut a = Continuous::new(cfg);
                    let run = simulate_multi(&input, &mut a, DrainPolicy::DrainToEmpty)
                        .map_err(|e| e.to_string())?;
                    (run, bounds, a.certified_offline_changes())
                }
                _ => {
                    let cfg = CombinedConfig::new(k, b, d, u, w, InnerMulti::Phased)
                        .map_err(|e| e.to_string())?;
                    let bounds = cfg.promised_bounds();
                    let mut a = Combined::new(cfg);
                    let run = simulate_multi(&input, &mut a, DrainPolicy::DrainToEmpty)
                        .map_err(|e| e.to_string())?;
                    (run, bounds, a.certified_local_changes())
                }
            };
            let verdict = verify_multi(&input, &run, &bounds);
            println!(
                "{alg} (k={k}): {} local / {} global changes, worst delay {:?} (bound {}), \
                 peak total {:.1} (bound {:.1}), certified offline changes >= {certified}",
                verdict.local_changes,
                verdict.global_changes,
                verdict.max_delay,
                bounds.max_delay,
                verdict.peak_total_allocation,
                bounds.total_bandwidth,
            );
            println!(
                "all bounds: {}",
                if verdict.all_ok() { "OK" } else { "VIOLATED" }
            );
            serde_json::json!({ "algorithm": alg, "verdict": verdict, "certified": certified })
        }
        (LoadedTrace::Single(_), other) => {
            return Err(format!(
                "algorithm {other} needs a multi-session trace (generate with --sessions K)"
            ))
        }
        (LoadedTrace::Multi(_), other) => {
            return Err(format!("algorithm {other} needs a single-session trace"))
        }
    };
    if let Some(path) = json_out {
        let body = serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?;
        std::fs::write(&path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Parses the deterministic churn-replay workload shared by `serve`,
/// `client`, and the gateway's default-budget computation.
fn replay_spec_from_flags(flags: &HashMap<String, String>) -> Result<ReplaySpec, String> {
    let sessions: usize = get_parse(flags, "sessions", 100)?;
    if sessions == 0 {
        return Err("--sessions must be >= 1".into());
    }
    let d_o: usize = get_parse(flags, "delay", 8)?;
    let model = flags
        .get("model")
        .cloned()
        .unwrap_or_else(|| "onoff".into());
    workload_kind(&model)?; // fail fast on typos, before any admits
    Ok(ReplaySpec {
        sessions,
        ticks: get_parse(flags, "ticks", 100_000)?,
        seed: get_parse(flags, "seed", 0xCDBA)?,
        model,
        group_size: get_parse(flags, "group-size", 4)?,
        pool_frac: get_parse(flags, "pool-frac", 0.2)?,
        churn_every: get_parse(flags, "churn-every", 500)?,
        b_max: get_parse(flags, "bandwidth", 16.0)?,
        b_o: get_parse(flags, "group-bandwidth", 8.0)?,
        d_o,
        u_o: get_parse(flags, "utilization", 0.5)?,
        w: get_parse(flags, "window", 2 * d_o)?,
    })
}

/// The exec mode's flag spelling, for reporting.
fn exec_name(exec: ExecMode) -> &'static str {
    match exec {
        ExecMode::Inline => "inline",
        ExecMode::Threaded => "threaded",
        ExecMode::Adaptive => "adaptive",
    }
}

/// Builds the control-plane config from the service flags, defaulting the
/// budget to the spec's exact-fit value. Returns the config plus the
/// parsed exec mode and shard count (for reporting).
fn service_config_from_flags(
    flags: &HashMap<String, String>,
    spec: &ReplaySpec,
) -> Result<(ServiceConfig, ExecMode, usize), String> {
    let shards: usize = get_parse(flags, "shards", 4)?;
    let exec = match flags.get("exec").map(String::as_str) {
        None | Some("threaded") => ExecMode::Threaded,
        Some("inline") => ExecMode::Inline,
        Some("adaptive") => ExecMode::Adaptive,
        Some(other) => return Err(format!("unknown --exec {other} (inline|threaded|adaptive)")),
    };
    let checkpoint_every: u64 = get_parse(flags, "checkpoint-every", 64)?;
    let max_restarts: u32 = get_parse(flags, "max-restarts", 3)?;
    let shard_timeout_ms: u64 = get_parse(flags, "shard-timeout-ms", 2000)?;
    let kernel_threads: usize = get_parse(flags, "kernel-threads", 1)?;
    let fault: Option<FaultPlan> = match flags.get("fault") {
        Some(raw) => Some(raw.parse()?),
        None => None,
    };
    let budget: f64 = get_parse(flags, "budget", spec.default_budget())?;
    let quota: f64 = get_parse(flags, "quota", budget)?;
    let mut builder = spec
        .service_builder(budget)
        .default_quota(quota)
        .shards(shards)
        .cost(CostModel::with_change_price(1.0))
        .exec(exec)
        .checkpoint_every(checkpoint_every)
        .max_restarts(max_restarts)
        .shard_timeout_ms(shard_timeout_ms)
        .kernel_threads(kernel_threads);
    if let Some(plan) = fault {
        builder = builder.fault(plan);
    }
    Ok((builder.build().map_err(|e| e.to_string())?, exec, shards))
}

/// The load-imbalance gauge reported in summary JSON: max and mean
/// sessions over a set of placement units (shards or processes), plus
/// their ratio (1.0 = perfectly even; 0 units or an empty fleet reports
/// a ratio of 1.0 so dashboards need no special case).
fn imbalance(counts: &[u64]) -> serde_json::Value {
    let max = counts.iter().copied().max().unwrap_or(0);
    let mean = if counts.is_empty() {
        0.0
    } else {
        counts.iter().sum::<u64>() as f64 / counts.len() as f64
    };
    let ratio = if mean > 0.0 { max as f64 / mean } else { 1.0 };
    serde_json::json!({
        "max_sessions": max,
        "mean_sessions": mean,
        "ratio": ratio,
    })
}

/// `serve`: spin up the cdba-ctrl control plane, replay a generated
/// `MultiTrace` through it with mid-run session churn, and report
/// throughput plus the service's JSON metrics snapshot. The
/// placement-invariant metrics (global change count, max delay, windowed
/// utilization, costs) are identical for any `--shards`/`--exec` choice
/// under the same seed — and for a `client` replay of the same workload
/// over the gateway wire.
fn serve(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let spec = replay_spec_from_flags(&flags)?;
    let (cfg, exec, shards) = service_config_from_flags(&flags, &spec)?;
    let split = spec.split();

    let mut service = ControlPlane::new(cfg);
    let outcome = run_replay(&mut service, &spec)?;
    let snapshot = service.snapshot().map_err(|e| e.to_string())?;
    service.shutdown();

    println!(
        "served {} sessions ({} pooled in {} groups) × {} ticks on {} {} shard(s): \
         {:.0} session-ticks/s, {} churn events",
        spec.sessions,
        split.pooled,
        split.groups,
        spec.ticks,
        shards,
        exec_name(exec),
        outcome.throughput(),
        outcome.churn_events,
    );
    println!(
        "signalling: {} changes, total cost {:.1}; max delay {} ticks; admitted {}, rejected {}",
        snapshot.global.changes,
        snapshot.global.total_cost(),
        snapshot.global.max_delay,
        snapshot.admitted,
        snapshot.rejected,
    );
    if snapshot.restarts > 0 || snapshot.health.iter().any(|h| !h.healthy) {
        let down: Vec<u64> = snapshot
            .health
            .iter()
            .filter(|h| !h.healthy)
            .map(|h| h.shard)
            .collect();
        println!(
            "supervision: {} restart(s), {} journal event(s) replayed, {} shard(s) down{}",
            snapshot.restarts,
            snapshot.events_replayed,
            down.len(),
            if down.is_empty() {
                String::new()
            } else {
                format!(" ({down:?})")
            },
        );
    }
    let summary = serde_json::json!({
        "sessions": spec.sessions,
        "shards": shards,
        "ticks": spec.ticks,
        "churn_events": outcome.churn_events,
        "elapsed_sec": outcome.elapsed_sec,
        "session_ticks_per_sec": outcome.throughput(),
        "admitted": snapshot.admitted,
        "rejected": snapshot.rejected,
        "restarts": snapshot.restarts,
        "events_replayed": snapshot.events_replayed,
        "global": serde_json::to_value(&snapshot.global),
        "per_shard": serde_json::to_value(&snapshot.per_shard),
        "health": serde_json::to_value(&snapshot.health),
        "imbalance": imbalance(
            &snapshot
                .per_shard
                .iter()
                .map(|s| s.sessions)
                .collect::<Vec<_>>(),
        ),
    });
    let summary_body = serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?;
    println!("{summary_body}");
    if let Some(path) = flags.get("summary") {
        std::fs::write(path, &summary_body).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote summary to {path}");
    }
    if let Some(path) = flags.get("json") {
        std::fs::write(path, snapshot.to_json_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote full snapshot to {path}");
    }
    Ok(())
}

/// `gateway`: bind the cdba-gateway TCP frontend over a fresh control
/// plane and serve until the process is killed. The workload flags are
/// accepted (and fix the default `--budget`) so a `client` replay admits
/// exactly like `serve` would in-process.
fn gateway(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let spec = replay_spec_from_flags(&flags)?;
    let (cfg, exec, shards) = service_config_from_flags(&flags, &spec)?;
    let defaults = GatewayConfig::default();
    let gateway_cfg = GatewayConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:4411".into()),
        workers: get_parse(&flags, "workers", defaults.workers)?,
        service_queue: get_parse(&flags, "service-queue", defaults.service_queue)?,
        idle_timeout_ms: get_parse(&flags, "idle-timeout-ms", defaults.idle_timeout_ms)?,
        metrics_addr: flags.get("metrics-addr").cloned(),
        ..defaults
    };
    let server = GatewayServer::start(cfg, gateway_cfg).map_err(|e| e.to_string())?;
    println!(
        "cdba-gateway listening on {} ({} {} shard(s), budget fits {} sessions)",
        server.local_addr(),
        shards,
        exec_name(exec),
        spec.sessions,
    );
    if let Some(addr) = server.metrics_addr() {
        println!("cdba-gateway metrics on http://{addr}/metrics");
    }
    // Serve until killed; clients come and go on their own schedule.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `client`: replay the deterministic churn workload over the gateway
/// wire and report the same snapshot JSON as `serve`. With equal workload
/// flags, the written snapshot's placement-invariant view is
/// bitwise-identical to the in-process run's — including when `--delta
/// yes` fetches the final state as a wire-v2 delta against a pre-replay
/// baseline and reconstructs it client-side, and when `--codec binary`
/// fetches wire-v3 binary bodies instead of JSON.
fn client(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let spec = replay_spec_from_flags(&flags)?;
    let split = spec.split();
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:4411".into());
    let delta_mode = flags.get("delta").map(String::as_str) == Some("yes");
    let binary = match flags.get("codec").map(String::as_str) {
        None | Some("json") => false,
        Some("binary") => true,
        Some(other) => return Err(format!("unknown --codec {other} (json|binary)")),
    };
    let mut client =
        Client::connect_with(addr.as_str(), ClientConfig::default()).map_err(|e| e.to_string())?;
    if delta_mode {
        // Establish the delta baseline before the replay so the final
        // poll diffs across the whole run's churn.
        if binary {
            client.snapshot_delta_bin().map_err(|e| e.to_string())?;
        } else {
            client.snapshot_delta().map_err(|e| e.to_string())?;
        }
    }
    let outcome = run_replay(&mut client, &spec)?;
    let snap = match (delta_mode, binary) {
        (true, true) => client.snapshot_delta_bin().map_err(|e| e.to_string())?,
        (true, false) => client.snapshot_delta().map_err(|e| e.to_string())?,
        (false, true) => client.snapshot_bin().map_err(|e| e.to_string())?,
        (false, false) => client.snapshot().map_err(|e| e.to_string())?,
    };
    client.goodbye().map_err(|e| e.to_string())?;

    println!(
        "replayed {} sessions ({} pooled in {} groups) × {} ticks over {}: \
         {:.0} session-ticks/s, {} churn events",
        spec.sessions,
        split.pooled,
        split.groups,
        spec.ticks,
        addr,
        outcome.throughput(),
        outcome.churn_events,
    );
    println!(
        "signalling: {} changes, total cost {:.1}; max delay {} ticks; admitted {}, rejected {}",
        snap.service.global.changes,
        snap.service.global.total_cost(),
        snap.service.global.max_delay,
        snap.service.admitted,
        snap.service.rejected,
    );
    println!(
        "wire: {} frames in / {} out, {} decode errors, {} busy rejections; \
         {} requests, p50 {} µs, p99 {} µs",
        snap.wire.frames_in,
        snap.wire.frames_out,
        snap.wire.decode_errors,
        snap.wire.busy_rejections,
        snap.wire.requests,
        snap.wire.latency_p50_us,
        snap.wire.latency_p99_us,
    );
    if delta_mode {
        println!(
            "snapshots: {} full, {} delta (final state reconstructed from the delta)",
            snap.wire.full_snapshots, snap.wire.delta_snapshots,
        );
    }
    if let Some(path) = flags.get("json") {
        std::fs::write(path, snap.service.to_json_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote full snapshot to {path}");
    }
    Ok(())
}

/// Resolves a `--placement` name; the p2c policy draws its two samples
/// from the replay seed so a fleet run is reproducible end to end.
fn placement_from_flags(
    flags: &HashMap<String, String>,
    seed: u64,
) -> Result<Box<dyn Placement>, String> {
    Ok(match flags.get("placement").map(String::as_str) {
        None | Some("p2c") => Box::new(PowerOfTwoChoices::new(seed)),
        Some("least-loaded") => Box::new(LeastLoaded),
        Some("round-robin") => Box::new(RoundRobin::default()),
        Some(other) => {
            return Err(format!(
                "unknown --placement {other} (p2c|least-loaded|round-robin)"
            ))
        }
    })
}

/// Parses the fleet's `--fault PROC@TICK:kill` (kill one ctrl process at
/// a tick boundary; the fleet recovers it by genesis replay on its next
/// operation). Distinct from `serve`'s intra-process shard faults.
fn parse_proc_fault(raw: &str) -> Result<(usize, u64), String> {
    let err = || format!("bad --fault {raw}: want PROC@TICK:kill");
    let (proc, rest) = raw.split_once('@').ok_or_else(err)?;
    let (tick, action) = rest.split_once(':').ok_or_else(err)?;
    if action != "kill" {
        return Err(format!(
            "bad --fault action {action}: the fleet only injects kill"
        ));
    }
    Ok((
        proc.parse().map_err(|_| err())?,
        tick.parse().map_err(|_| err())?,
    ))
}

/// The service/workload flags forwarded verbatim to every ctrl-proc
/// child, so each child computes the exact same default budget (and
/// shard/exec/supervision shape) a single-process `serve` would use. The
/// workload values come from the parsed spec so defaults forward too.
fn fleet_child_args(spec: &ReplaySpec, flags: &HashMap<String, String>) -> Vec<String> {
    let mut args = vec![
        "--sessions".into(),
        spec.sessions.to_string(),
        "--bandwidth".into(),
        spec.b_max.to_string(),
        "--group-bandwidth".into(),
        spec.b_o.to_string(),
        "--delay".into(),
        spec.d_o.to_string(),
        "--utilization".into(),
        spec.u_o.to_string(),
        "--window".into(),
        spec.w.to_string(),
        "--group-size".into(),
        spec.group_size.to_string(),
        "--pool-frac".into(),
        spec.pool_frac.to_string(),
    ];
    for key in [
        "shards",
        "exec",
        "budget",
        "quota",
        "checkpoint-every",
        "max-restarts",
        "shard-timeout-ms",
        "kernel-threads",
        "workers",
        "service-queue",
        "idle-timeout-ms",
    ] {
        if let Some(value) = flags.get(key) {
            args.push(format!("--{key}"));
            args.push(value.clone());
        }
    }
    args
}

/// Drives [`run_replay`] against a [`Fleet`], firing the scheduled drain
/// and fault at their tick boundaries (fault first, so a drain landing on
/// the same tick exercises recovery rather than racing it).
struct FleetTarget {
    fleet: Fleet,
    now: u64,
    /// `(tick, proc)`: drain `proc` and live-migrate its sessions away.
    drain: Option<(u64, usize)>,
    /// `(tick, proc)`: kill `proc` outright; genesis replay recovers it.
    fault: Option<(u64, usize)>,
    /// The `--metrics-addr` listener, held alive for the run.
    _metrics: Option<MetricsServer>,
}

impl ReplayTarget for FleetTarget {
    fn admit(&mut self, tenant: &str) -> Result<u64, String> {
        self.fleet.admit(tenant).map_err(|e| e.to_string())
    }

    fn admit_group(&mut self, tenant: &str, size: usize) -> Result<Vec<u64>, String> {
        self.fleet
            .admit_group(tenant, size as u32)
            .map_err(|e| e.to_string())
    }

    fn leave(&mut self, key: u64) -> Result<(), String> {
        self.fleet.leave(key).map_err(|e| e.to_string())
    }

    fn tick(&mut self, arrivals: &[(u64, f64)]) -> Result<(), String> {
        if let Some((at, proc)) = self.fault {
            if at == self.now {
                self.fleet.kill(proc);
                self.fault = None;
            }
        }
        if let Some((at, proc)) = self.drain {
            if at == self.now {
                let moved = self
                    .fleet
                    .drain_and_migrate(proc)
                    .map_err(|e| e.to_string())?;
                println!("tick {at}: drained process {proc}, migrated {moved} session(s)");
                self.drain = None;
            }
        }
        self.fleet.tick(arrivals).map_err(|e| e.to_string())?;
        self.now += 1;
        Ok(())
    }
}

/// Spawns a fleet from the parsed flags and replays the spec's workload
/// through it. Shared by `fleet` and `bench-fleet` so a benchmarked run
/// is exactly the run the determinism gate checks.
fn run_fleet(
    spec: &ReplaySpec,
    flags: &HashMap<String, String>,
    placement: Box<dyn Placement>,
) -> Result<(cdba_bench::replay::ReplayOutcome, FleetTarget), String> {
    let ctrl_procs: usize = get_parse(flags, "ctrl-procs", 2)?;
    let gateways: usize = get_parse(flags, "gateways", 2)?;
    let drain: Option<usize> = match flags.get("drain").map(String::as_str) {
        Some("none") => None,
        Some(raw) => Some(raw.parse().map_err(|e| format!("bad --drain {raw}: {e}"))?),
        None => Some(0),
    };
    let drain_at: u64 = get_parse(flags, "drain-at", spec.ticks / 2)?;
    let fault: Option<(u64, usize)> = match flags.get("fault") {
        Some(raw) => {
            let (proc, tick) = parse_proc_fault(raw)?;
            if proc >= ctrl_procs {
                return Err(format!(
                    "--fault process {proc} >= --ctrl-procs {ctrl_procs}"
                ));
            }
            Some((tick, proc))
        }
        None => None,
    };
    if let Some(proc) = drain {
        if proc >= ctrl_procs {
            return Err(format!(
                "--drain process {proc} >= --ctrl-procs {ctrl_procs}"
            ));
        }
    }
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let cfg = FleetConfig {
        exe,
        ctrl_procs,
        gateways,
        child_args: fleet_child_args(spec, flags),
        migration_price: 1.0,
    };
    let mut fleet = Fleet::start(cfg, placement).map_err(|e| e.to_string())?;
    let mut metrics = None;
    if let Some(addr) = flags.get("metrics-addr") {
        let registry = std::sync::Arc::new(Registry::new());
        let trace = std::sync::Arc::new(TraceRing::new(4096));
        fleet.attach_metrics(&registry);
        fleet.attach_trace(std::sync::Arc::clone(&trace));
        metrics = Some(
            MetricsServer::start(addr, registry, Some(trace))
                .map_err(|e| format!("bind metrics {addr}: {e}"))?,
        );
        println!(
            "cdba-fleet metrics on http://{}/metrics",
            metrics.as_ref().unwrap().local_addr()
        );
    }
    let mut target = FleetTarget {
        fleet,
        now: 0,
        drain: drain.map(|proc| (drain_at, proc)),
        fault,
        _metrics: metrics,
    };
    let outcome = run_replay(&mut target, spec)?;
    Ok((outcome, target))
}

/// `fleet`: replay the deterministic churn workload across a
/// multi-process fleet — ctrl-proc children behind relay children, both
/// spawned from this very binary — with a forced drain-and-migrate
/// mid-run, and report the assembled fleet snapshot. Its
/// placement-invariant view is bitwise-identical to `serve`'s for the
/// same workload flags, under any placement policy, across live
/// migrations, and under a `--fault` kill of one ctrl process.
fn fleet(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let spec = replay_spec_from_flags(&flags)?;
    let split = spec.split();
    let placement = placement_from_flags(&flags, spec.seed)?;
    let (outcome, mut target) = run_fleet(&spec, &flags, placement)?;
    let snapshot = target.fleet.snapshot().map_err(|e| e.to_string())?;
    let fleet_summary = target.fleet.summary();

    println!(
        "fleet served {} sessions ({} pooled in {} groups) × {} ticks on {} ctrl \
         process(es) behind {} gateway(s): {:.0} session-ticks/s, {} churn events",
        spec.sessions,
        split.pooled,
        split.groups,
        spec.ticks,
        fleet_summary.ctrl_procs,
        fleet_summary.gateways,
        outcome.throughput(),
        outcome.churn_events,
    );
    println!(
        "placement {}: live per process {:?}; {} migration(s) costing {:.1}, {} respawn(s)",
        fleet_summary.placement,
        fleet_summary.live,
        fleet_summary.migrations,
        fleet_summary.migration_cost,
        fleet_summary.respawns,
    );
    println!(
        "signalling: {} changes, total cost {:.1}; max delay {} ticks; admitted {}, rejected {}",
        snapshot.global.changes,
        snapshot.global.total_cost(),
        snapshot.global.max_delay,
        snapshot.admitted,
        snapshot.rejected,
    );
    let summary = serde_json::json!({
        "sessions": spec.sessions,
        "ticks": spec.ticks,
        "ctrl_procs": fleet_summary.ctrl_procs,
        "gateways": fleet_summary.gateways,
        "placement": fleet_summary.placement,
        "migrations": fleet_summary.migrations,
        "migration_cost": fleet_summary.migration_cost,
        "respawns": fleet_summary.respawns,
        "live": fleet_summary.live,
        "imbalance": imbalance(
            &fleet_summary
                .live
                .iter()
                .map(|&n| n as u64)
                .collect::<Vec<_>>(),
        ),
        "churn_events": outcome.churn_events,
        "elapsed_sec": outcome.elapsed_sec,
        "session_ticks_per_sec": outcome.throughput(),
        "global": serde_json::to_value(&snapshot.global),
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
    );
    if let Some(path) = flags.get("json") {
        std::fs::write(path, snapshot.to_json_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote full snapshot to {path}");
    }
    Ok(())
}

/// `relay`: the fleet's byte-shuttle frontend. One loopback listener per
/// backend; every accepted connection gets a fresh upstream connection
/// and two copy threads (one per direction). The relay is protocol-blind:
/// the lease frames, like everything else, are just bytes to it.
fn relay(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let backends: Vec<String> = get(&flags, "backends")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if backends.is_empty() {
        return Err("--backends needs at least one HOST:PORT".into());
    }
    for backend in backends {
        let listener = std::net::TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("cannot bind relay listener: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        // The parent fleet parses these lines, in backend order, to learn
        // where to connect.
        println!("cdba-relay listening on {local} -> {backend}");
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(down) = conn else { continue };
                let backend = backend.clone();
                std::thread::spawn(move || relay_conn(down, &backend));
            }
        });
    }
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Shuttles one accepted connection to `backend` until either side
/// closes, then drops both (shutdown propagates the close).
fn relay_conn(down: std::net::TcpStream, backend: &str) {
    let Ok(up) = std::net::TcpStream::connect(backend) else {
        return;
    };
    let (Ok(down_read), Ok(up_read)) = (down.try_clone(), up.try_clone()) else {
        return;
    };
    let forward = std::thread::spawn(move || {
        let mut from = down_read;
        let mut to = up;
        let _ = std::io::copy(&mut from, &mut to);
        let _ = to.shutdown(std::net::Shutdown::Both);
    });
    let mut from = up_read;
    let mut to = down;
    let _ = std::io::copy(&mut from, &mut to);
    let _ = to.shutdown(std::net::Shutdown::Both);
    let _ = forward.join();
}

/// `bench-fleet`: run the fleet replay — forced drain-and-migrate
/// included — once per placement policy and write the machine-readable
/// report the CI bench gate reads.
fn bench_fleet(args: &[String]) -> CliResult {
    let mut flags = parse_flags(args)?;
    // Bench defaults: a smaller population and tick count than serve's,
    // sized so the three placement rows finish in seconds.
    flags
        .entry("sessions".into())
        .or_insert_with(|| "40".into());
    flags.entry("ticks".into()).or_insert_with(|| "2000".into());
    let spec = replay_spec_from_flags(&flags)?;
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_fleet.json".into());
    let ctrl_procs: usize = get_parse(&flags, "ctrl-procs", 2)?;
    let gateways: usize = get_parse(&flags, "gateways", 2)?;

    let mut results = Vec::new();
    for name in ["p2c", "least-loaded", "round-robin"] {
        flags.insert("placement".into(), name.into());
        let placement = placement_from_flags(&flags, spec.seed)?;
        let (outcome, target) = run_fleet(&spec, &flags, placement)?;
        let fleet_summary = target.fleet.summary();
        println!(
            "{name:>12}: {:.0} session-ticks/s, {} migration(s) costing {:.1}, live {:?}",
            outcome.throughput(),
            fleet_summary.migrations,
            fleet_summary.migration_cost,
            fleet_summary.live,
        );
        results.push(serde_json::json!({
            "placement": name,
            "ctrl_procs": ctrl_procs,
            "gateways": gateways,
            "sessions": spec.sessions,
            "ticks": spec.ticks,
            "elapsed_sec": outcome.elapsed_sec,
            "session_ticks_per_sec": outcome.throughput(),
            "migrations": fleet_summary.migrations,
            "migration_cost": fleet_summary.migration_cost,
            "respawns": fleet_summary.respawns,
            "live": fleet_summary.live,
            "imbalance": imbalance(
                &fleet_summary
                    .live
                    .iter()
                    .map(|&n| n as u64)
                    .collect::<Vec<_>>(),
            ),
        }));
    }

    let report = serde_json::json!({
        "bench": "fleet",
        "ticks": spec.ticks,
        "results": results,
    });
    let body = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&out, body).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// `bench-gateway`: measure wire throughput and request latency across a
/// list of connection counts against an in-process gateway, writing a
/// machine-readable JSON report.
///
/// One driver thread owns every connection — the wire v2 signalling-lean
/// pattern: staging connections send unacknowledged `StageNoAck` frames
/// (one write, zero reads) and the committing connection sends a
/// count-gated `TickSync`, so a whole multi-connection tick costs one
/// round trip instead of a reply per connection. The count gate keeps the
/// committed batch independent of socket arrival order.
fn bench_gateway(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let ticks: u64 = get_parse(&flags, "ticks", 2_000)?;
    let sessions: usize = get_parse(&flags, "sessions", 16)?;
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_gateway.json".into());
    if sessions == 0 || ticks == 0 {
        return Err("--sessions and --ticks must be >= 1".into());
    }
    let conn_list: Vec<usize> = match flags.get("connections") {
        None => vec![1, 4, 16, 32, 64],
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("bad --connections entry {s}: {e}"))
                    .and_then(|n| {
                        if n == 0 {
                            Err("--connections entries must be >= 1".into())
                        } else {
                            Ok(n)
                        }
                    })
            })
            .collect::<Result<_, String>>()?,
    };

    let sweep_list: Vec<usize> = match flags.get("session-sweep") {
        None => Vec::new(),
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("bad --session-sweep entry {s}: {e}"))
                    .and_then(|n| {
                        if n == 0 {
                            Err("--session-sweep entries must be >= 1".into())
                        } else {
                            Ok(n)
                        }
                    })
            })
            .collect::<Result<_, String>>()?,
    };

    let mut results = Vec::new();
    // Connections sweep: the committed baseline's wire-scaling axis.
    for &conns in &conn_list {
        let total = ((sessions / conns).max(1)) * conns;
        results.push(gateway_cell(conns, total, ticks)?);
    }
    // Sessions sweep: fixed 16 connections, tick count scaled down as
    // the population grows so every row stages a comparable number of
    // session-ticks.
    for &swept in &sweep_list {
        let conns = 16;
        let scaled = ((ticks * 16) / swept.max(1) as u64).clamp(20, ticks);
        results.push(gateway_cell(conns, swept.max(conns), scaled)?);
    }

    let report = serde_json::json!({
        "bench": "gateway",
        "ticks": ticks,
        "results": results,
    });
    let body = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&out, body).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// One bench-gateway cell: `total` sessions spread over `conns`
/// connections (remainder sessions go to the earliest connections),
/// driven for `ticks` ticks from a single thread.
fn gateway_cell(conns: usize, total: usize, ticks: u64) -> Result<serde_json::Value, String> {
    let b_max = 16.0;
    let cfg = ServiceConfig::builder(total as f64 * b_max + b_max)
        .session_b_max(b_max)
        .offline_delay(8)
        .offline_utilization(0.5)
        .window(16)
        .cost(CostModel::with_change_price(1.0))
        .exec(ExecMode::Inline)
        .build()
        .map_err(|e| e.to_string())?;
    let gateway_cfg = GatewayConfig {
        workers: conns + 2,
        accept_backlog: conns.max(16),
        ..GatewayConfig::default()
    };
    let server = GatewayServer::start(cfg, gateway_cfg).map_err(|e| e.to_string())?;
    let addr = server.local_addr();

    // One driver, `conns` sockets: connection 0 commits, the rest
    // stage without acknowledgement.
    let mut clients = Vec::with_capacity(conns);
    let mut keys: Vec<Vec<u64>> = Vec::with_capacity(conns);
    for c in 0..conns {
        let per_conn = total / conns + usize::from(c < total % conns);
        let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
        let mut owned = Vec::with_capacity(per_conn);
        for _ in 0..per_conn {
            owned.push(client.join("bench").map_err(|e| e.to_string())?);
        }
        clients.push(client);
        keys.push(owned);
    }

    let started = std::time::Instant::now();
    let mut arrivals = Vec::with_capacity(total / conns + 1);
    for t in 0..ticks {
        let mut staged: u32 = 0;
        for c in 1..conns {
            arrivals.clear();
            for &key in &keys[c] {
                let bits = ((t + key) % 3) as f64;
                if bits > 0.0 {
                    arrivals.push((key, bits));
                }
            }
            staged += arrivals.len() as u32;
            clients[c]
                .stage_noack(&arrivals)
                .map_err(|e| e.to_string())?;
        }
        arrivals.clear();
        for &key in &keys[0] {
            let bits = ((t + key) % 3) as f64;
            if bits > 0.0 {
                arrivals.push((key, bits));
            }
        }
        staged += arrivals.len() as u32;
        clients[0]
            .tick_sync(&arrivals, staged)
            .map_err(|e| e.to_string())?;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let wire = server.wire_stats();
    for client in clients {
        client.goodbye().map_err(|e| e.to_string())?;
    }
    server.shutdown().map_err(|e| e.to_string())?;

    let ticks_per_sec = if elapsed > 0.0 {
        ticks as f64 / elapsed
    } else {
        f64::INFINITY
    };
    println!(
        "{conns:>2} connection(s), {total} session(s): {ticks_per_sec:.0} ticks/s, \
         {} requests, p50 {} µs, p99 {} µs",
        wire.requests, wire.latency_p50_us, wire.latency_p99_us,
    );
    Ok(serde_json::json!({
        "connections": conns,
        "sessions": total,
        "ticks": ticks,
        "elapsed_sec": elapsed,
        "ticks_per_sec": ticks_per_sec,
        "requests": wire.requests,
        "latency_p50_us": wire.latency_p50_us,
        "latency_p99_us": wire.latency_p99_us,
    }))
}

/// `bench-ctrl`: measure the in-process sessions × shards tick matrix
/// and write the `BENCH_ctrl.json`-shaped report the CI bench gate reads.
/// Shares [`cdba_bench::matrix`] with the `ctrl_tick` criterion bench, so
/// a CLI run and a bench run measure identical configurations.
fn bench_ctrl(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_ctrl.json".into());
    let sessions_list: Vec<usize> = match flags.get("sessions") {
        None => matrix::SESSIONS_AXIS.to_vec(),
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("bad --sessions entry {s}: {e}"))
                    .and_then(|n| {
                        if n == 0 {
                            Err("--sessions entries must be >= 1".into())
                        } else {
                            Ok(n)
                        }
                    })
            })
            .collect::<Result<_, String>>()?,
    };
    let warmup: Option<u64> = flags
        .get("warmup")
        .map(|raw| raw.parse().map_err(|e| format!("bad --warmup {raw}: {e}")))
        .transpose()?;
    let ticks: Option<u64> = flags
        .get("ticks")
        .map(|raw| raw.parse().map_err(|e| format!("bad --ticks {raw}: {e}")))
        .transpose()?;

    // The checkpoint axis: measured in full on a default (committed
    // baseline) run, on demand via --checkpoint-sessions, and skipped
    // when only a tick subset was asked for — CI's tick smoke must not
    // pay for a million-session checkpoint cell it does not gate.
    let checkpoint_list: Vec<usize> = match flags.get("checkpoint-sessions") {
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("bad --checkpoint-sessions entry {s}: {e}"))
                    .and_then(|n| {
                        if n == 0 {
                            Err("--checkpoint-sessions entries must be >= 1".into())
                        } else {
                            Ok(n)
                        }
                    })
            })
            .collect::<Result<_, String>>()?,
        None if flags.contains_key("sessions") => Vec::new(),
        None => matrix::CHECKPOINT_SESSIONS_AXIS.to_vec(),
    };

    let rows = matrix::run_matrix(&sessions_list, warmup, ticks, |row| {
        println!(
            "{:>16} × {:>6} sessions: {:.0} ticks/s ({:.0} session-ticks/s)",
            row.label,
            row.sessions,
            row.ticks_per_sec,
            row.ticks_per_sec * row.sessions as f64,
        );
    });
    let checkpoint = matrix::run_checkpoint_matrix(&checkpoint_list, |row| {
        println!(
            "checkpoint × {:>7} sessions: encode {:.1} ms, restore {:.1} ms \
             (warm {:.1} ms), {:.1} B/dirty-session",
            row.sessions,
            row.encode_ms,
            row.restore_ms,
            row.restore_warm_ms,
            row.bytes_per_dirty_session
        );
    });
    let report = matrix::matrix_report(&rows, &checkpoint);
    let body = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&out, body).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn offline(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let b: f64 = get_parse(&flags, "bandwidth", 64.0)?;
    let d: usize = get_parse(&flags, "delay", 8)?;
    match load(get(&flags, "trace")?)? {
        LoadedTrace::Single(trace) => {
            let plan = greedy_offline(&trace, OfflineConstraints::delay_only(b, d))
                .map_err(|e| e.to_string())?;
            println!(
                "greedy offline plan: {} changes over {} segments",
                plan.changes(),
                plan.segments.len()
            );
            for (s, e, bw) in plan.segments.iter().take(20) {
                println!("  [{s:>6}, {e:>6})  {bw:.3} bits/tick");
            }
            if plan.segments.len() > 20 {
                println!("  … {} more segments", plan.segments.len() - 20);
            }
        }
        LoadedTrace::Multi(input) => {
            let plan = greedy_multi_offline(&input, b, d).map_err(|e| e.to_string())?;
            println!(
                "greedy piecewise-static plan: {} local changes over {} intervals",
                plan.local_changes(),
                plan.num_intervals()
            );
        }
    }
    Ok(())
}
