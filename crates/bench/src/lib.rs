//! Shared fixtures for the criterion benches and the `repro` binary, the
//! churn-replay workload ([`replay`]) shared by the `cdba-cli`
//! serve/client/bench-gateway subcommands, and the sessions × shards
//! tick-throughput matrix ([`matrix`]) behind `BENCH_ctrl.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod replay;

use cdba_traffic::models::{MmppParams, WorkloadKind};
use cdba_traffic::multi::rotating_hot;
use cdba_traffic::{conditioner, MultiTrace, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The bench fixture's offline bandwidth.
pub const B_O: f64 = 64.0;
/// The bench fixture's offline delay (ticks).
pub const D_O: usize = 8;

/// A seeded MMPP trace scaled feasible for `(0.9·B_O, D_O)` — the standard
/// single-session bench input.
pub fn bench_trace(len: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let raw = WorkloadKind::Mmpp(MmppParams::default())
        .generate(&mut rng, len)
        .expect("default parameters are valid");
    conditioner::scale_to_feasible(&raw, 0.9 * B_O, D_O)
        .expect("positive bandwidth")
        .pad_zeros(D_O)
}

/// The rotating-hot multi-session bench input.
pub fn bench_multi(k: usize, len: usize) -> MultiTrace {
    rotating_hot(k, 0.85 * B_O, 0.02 * B_O, 12 * D_O, len)
        .expect("valid adversary")
        .pad_zeros(D_O)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_feasible() {
        let t = bench_trace(2_000, 1);
        assert!(conditioner::is_feasible(&t, B_O, D_O));
        let m = bench_multi(4, 1_000);
        assert!(m.is_feasible(B_O, D_O));
    }
}
