//! Process-level fleet tests: real `cdba-cli gateway` children spawned
//! from the compiled binary (hence this file lives in `cdba-bench`,
//! which owns the bin and gets `CARGO_BIN_EXE_cdba-cli`).

use cdba_bench::replay::{run_replay, ReplaySpec, ReplayTarget};
use cdba_ctrl::{ControlPlane, ExecMode};
use cdba_fleet::{Fleet, FleetConfig, FleetError, LeastLoaded};
use std::path::PathBuf;

/// Small single-shard inline children so each test run stays in the
/// hundreds of milliseconds.
fn config(ctrl_procs: usize, gateways: usize, child_args: &[&str]) -> FleetConfig {
    FleetConfig {
        exe: PathBuf::from(env!("CARGO_BIN_EXE_cdba-cli")),
        ctrl_procs,
        gateways,
        child_args: child_args.iter().map(|s| s.to_string()).collect(),
        migration_price: 1.0,
    }
}

/// Satellite regression: a gateway child dying mid-migration (after the
/// source revoked the lease, before the target granted it) must surface
/// as the typed `MigrationFailed` error with the lease returned to the
/// source — the session keeps running there, its budget stays accounted,
/// and nothing panics. A later retry, once the target recovers, succeeds.
#[test]
fn killed_target_mid_migration_returns_the_lease_to_the_source() {
    let cfg = config(
        2,
        0,
        &["--sessions", "8", "--shards", "1", "--exec", "inline"],
    );
    let mut fleet = Fleet::start(cfg, Box::new(LeastLoaded)).expect("fleet starts");
    // Least-loaded with lowest-index ties: keys 0 and 2 land on process
    // 0, keys 1 and 3 on process 1.
    for i in 0..4 {
        assert_eq!(fleet.admit("alpha").expect("admit"), i);
    }
    fleet.tick(&[(0, 2.0), (1, 1.0)]).expect("tick");

    // The target dies between the revoke and the grant.
    fleet.kill(1);
    let err = fleet.migrate(0, 1).expect_err("grant against a dead child");
    match err {
        FleetError::MigrationFailed { key, from, to, .. } => {
            assert_eq!((key, from, to), (0, 1 - 1, 1));
        }
        other => panic!("expected MigrationFailed, got {other}"),
    }

    // The session still runs at the source: ticking it succeeds, and the
    // fleet snapshot still carries all four sessions with zero
    // rejections (the re-granted lease re-took its budget envelope —
    // a leak would double-book and reject the next admit below).
    fleet
        .tick(&[(0, 2.0)])
        .expect("session ticks at the source");
    let snap = fleet.snapshot().expect("snapshot");
    assert_eq!(snap.global.sessions, 4);
    assert_eq!(snap.rejected, 0);
    assert!(snap.sessions.iter().any(|s| s.session == 0));

    // The dead process was recovered by genesis replay during the tick
    // above, so the identical migration now goes through, and the
    // session admitted after it all still fits the budget.
    fleet.migrate(0, 1).expect("retry after recovery");
    fleet
        .admit("beta")
        .expect("budget intact after the round trip");
    let summary = fleet.summary();
    assert_eq!(summary.migrations, 1);
    assert_eq!(summary.respawns, 1);
}

/// Drives the shared churn replay through a fleet, forcing one
/// drain-and-migrate mid-run.
struct FleetTarget {
    fleet: Fleet,
    now: u64,
    drain_at: u64,
    drain_proc: usize,
}

impl ReplayTarget for FleetTarget {
    fn admit(&mut self, tenant: &str) -> Result<u64, String> {
        self.fleet.admit(tenant).map_err(|e| e.to_string())
    }

    fn admit_group(&mut self, tenant: &str, size: usize) -> Result<Vec<u64>, String> {
        self.fleet
            .admit_group(tenant, size as u32)
            .map_err(|e| e.to_string())
    }

    fn leave(&mut self, key: u64) -> Result<(), String> {
        self.fleet.leave(key).map_err(|e| e.to_string())
    }

    fn tick(&mut self, arrivals: &[(u64, f64)]) -> Result<(), String> {
        if self.now == self.drain_at {
            self.fleet
                .drain_and_migrate(self.drain_proc)
                .map_err(|e| e.to_string())?;
        }
        self.fleet.tick(arrivals).map_err(|e| e.to_string())?;
        self.now += 1;
        Ok(())
    }
}

/// The tentpole guarantee at test scale: the fleet replay — relays,
/// placement, churn, and a forced drain-and-migrate — produces an
/// invariant view bitwise-identical to the in-process run of the same
/// spec.
#[test]
fn fleet_replay_matches_the_in_process_invariant_view_across_a_migration() {
    let spec = ReplaySpec {
        sessions: 8,
        ticks: 200,
        churn_every: 50,
        pool_frac: 0.5,
        ..ReplaySpec::default()
    };

    let cfg = spec
        .service_builder(spec.default_budget())
        .exec(ExecMode::Inline)
        .build()
        .expect("service config");
    let mut plane = ControlPlane::new(cfg);
    run_replay(&mut plane, &spec).expect("in-process replay");
    let inline_view = plane.snapshot().expect("snapshot").invariant_view();
    plane.shutdown();

    let cfg = config(
        2,
        1,
        &[
            "--sessions",
            "8",
            "--pool-frac",
            "0.5",
            "--shards",
            "1",
            "--exec",
            "inline",
        ],
    );
    let fleet = Fleet::start(cfg, Box::new(LeastLoaded)).expect("fleet starts");
    // Least-loaded puts the pooled group on process 0 and every
    // dedicated session on process 1; draining 1 forces real migrations.
    let mut target = FleetTarget {
        fleet,
        now: 0,
        drain_at: 100,
        drain_proc: 1,
    };
    run_replay(&mut target, &spec).expect("fleet replay");
    assert!(
        target.fleet.migrations() >= 1,
        "the drain must have moved at least one session"
    );
    let fleet_view = target.fleet.snapshot().expect("snapshot").invariant_view();

    assert_eq!(inline_view, fleet_view);
}
