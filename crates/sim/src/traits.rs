//! The allocator interfaces every policy implements.
//!
//! An allocator is a pure state machine: the engine feeds it one tick of
//! arrivals, it answers with the bandwidth to allocate *for that tick*.
//! Queues, service, measurement, and change counting all live in the engine
//! and the [`crate::schedule::Schedule`], so allocators stay independently
//! testable and cannot disagree with the measured schedule.

/// A single-session (or single aggregate channel) bandwidth allocation
/// policy.
pub trait Allocator {
    /// Advances one tick. `arrivals` is the number of bits submitted at the
    /// sending end during this tick; the return value is the bandwidth
    /// allocated for this tick (bits that can be served this very tick).
    fn on_tick(&mut self, arrivals: f64) -> f64;

    /// A short stable name for reports.
    fn name(&self) -> &str;
}

/// A `k`-session allocation policy sharing one channel.
pub trait MultiAllocator {
    /// Number of sessions `k` this policy was configured for.
    fn num_sessions(&self) -> usize;

    /// Advances one tick. `arrivals[i]` is the bits submitted by session `i`
    /// this tick; the return value is the per-session bandwidth allocation
    /// for this tick (`len == num_sessions()`).
    fn on_tick(&mut self, arrivals: &[f64]) -> Vec<f64>;

    /// A short stable name for reports.
    fn name(&self) -> &str;
}

impl<A: Allocator + ?Sized> Allocator for &mut A {
    fn on_tick(&mut self, arrivals: f64) -> f64 {
        (**self).on_tick(arrivals)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<A: MultiAllocator + ?Sized> MultiAllocator for &mut A {
    fn num_sessions(&self) -> usize {
        (**self).num_sessions()
    }

    fn on_tick(&mut self, arrivals: &[f64]) -> Vec<f64> {
        (**self).on_tick(arrivals)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Allocator for Echo {
        fn on_tick(&mut self, arrivals: f64) -> f64 {
            arrivals
        }
        fn name(&self) -> &'static str {
            "echo"
        }
    }

    #[test]
    fn mut_ref_forwarding() {
        let mut e = Echo;
        let mut r = &mut e;
        assert_eq!(Allocator::on_tick(&mut r, 3.0), 3.0);
        assert_eq!(Allocator::name(&r), "echo");
    }

    #[test]
    fn trait_objects_work() {
        let mut e = Echo;
        let obj: &mut dyn Allocator = &mut e;
        assert_eq!(obj.on_tick(1.0), 1.0);
    }
}
