//! Bound verifiers: check a finished run against the envelopes the paper's
//! theorems promise (delay ≤ `D_A`, utilization ≥ `U_A`, peak bandwidth
//! ≤ `B_A`) and produce a structured verdict for reports and tests.

use crate::engine::{MultiRun, Run};
use crate::measure;
use cdba_traffic::{MultiTrace, Trace, EPS};
use serde::{Deserialize, Serialize};

/// The promised envelope for a single-session run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SingleBounds {
    /// Maximum bandwidth `B_A` the algorithm may allocate at any tick.
    pub max_bandwidth: f64,
    /// Maximum delay `D_A` in ticks.
    pub max_delay: usize,
    /// Minimum utilization `U_A` (use 0 to disable the check).
    pub min_utilization: f64,
    /// Base utilization window `W` in ticks.
    pub window: usize,
    /// Largest window the relaxed utilization check may use (the paper's
    /// `W + 5·D_O`); must be ≥ `window`.
    pub relaxed_window: usize,
}

/// The verdict for a single-session run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleVerdict {
    /// Measured maximum FIFO delay (`None` if bits were never served).
    pub max_delay: Option<usize>,
    /// Measured relaxed local utilization.
    pub utilization: f64,
    /// Measured strict (fixed-window) local utilization, for reference.
    pub strict_utilization: f64,
    /// Measured global utilization.
    pub global_utilization: f64,
    /// Peak single-tick allocation.
    pub peak_allocation: f64,
    /// Total allocation changes.
    pub changes: usize,
    /// `true` iff the delay bound held.
    pub delay_ok: bool,
    /// `true` iff the (relaxed) utilization bound held.
    pub utilization_ok: bool,
    /// `true` iff the bandwidth envelope held.
    pub bandwidth_ok: bool,
}

impl SingleVerdict {
    /// `true` iff every checked bound held.
    pub fn all_ok(&self) -> bool {
        self.delay_ok && self.utilization_ok && self.bandwidth_ok
    }
}

/// Verifies a single-session run against its promised envelope.
///
/// # Panics
///
/// Panics if `bounds.window == 0` or `relaxed_window < window`.
pub fn verify_single(trace: &Trace, run: &Run, bounds: &SingleBounds) -> SingleVerdict {
    assert!(bounds.window > 0, "window must be positive");
    assert!(
        bounds.relaxed_window >= bounds.window,
        "relaxed_window must be >= window"
    );
    let max_delay = measure::max_delay(trace, run.served());
    let relaxed = measure::relaxed_local_utilization(
        trace,
        &run.schedule,
        bounds.window,
        bounds.relaxed_window,
    );
    let strict = measure::local_utilization(trace, &run.schedule, bounds.window);
    let global = measure::global_utilization(trace, &run.schedule);
    let peak = run.schedule.peak();
    SingleVerdict {
        max_delay,
        utilization: relaxed.utilization,
        strict_utilization: strict.utilization,
        global_utilization: global,
        peak_allocation: peak,
        changes: run.schedule.num_changes(),
        delay_ok: max_delay.is_some_and(|d| d <= bounds.max_delay),
        utilization_ok: relaxed.utilization >= bounds.min_utilization - EPS,
        bandwidth_ok: peak <= bounds.max_bandwidth + EPS,
    }
}

/// The promised envelope for a multi-session run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiBounds {
    /// Maximum *total* bandwidth `B_A` across sessions at any tick.
    pub total_bandwidth: f64,
    /// Maximum per-session delay `D_A` in ticks.
    pub max_delay: usize,
}

/// The verdict for a multi-session run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiVerdict {
    /// Per-session measured maximum delay.
    pub session_delays: Vec<Option<usize>>,
    /// Worst measured delay across sessions (`None` if any session has
    /// unserved bits).
    pub max_delay: Option<usize>,
    /// Peak total allocation across all ticks.
    pub peak_total_allocation: f64,
    /// Total per-session (local) changes.
    pub local_changes: usize,
    /// Changes of the summed allocation (global changes).
    pub global_changes: usize,
    /// `true` iff every session met the delay bound.
    pub delay_ok: bool,
    /// `true` iff the total bandwidth envelope held.
    pub bandwidth_ok: bool,
}

impl MultiVerdict {
    /// `true` iff every checked bound held.
    pub fn all_ok(&self) -> bool {
        self.delay_ok && self.bandwidth_ok
    }
}

/// Verifies a multi-session run against its promised envelope.
pub fn verify_multi(input: &MultiTrace, run: &MultiRun, bounds: &MultiBounds) -> MultiVerdict {
    let session_delays: Vec<Option<usize>> = (0..run.num_sessions())
        .map(|i| measure::max_delay(input.session(i), run.served(i)))
        .collect();
    let max_delay = session_delays
        .iter()
        .try_fold(0usize, |acc, d| d.map(|d| acc.max(d)));
    let peak = run.total.peak();
    MultiVerdict {
        delay_ok: max_delay.is_some_and(|d| d <= bounds.max_delay),
        bandwidth_ok: peak <= bounds.total_bandwidth + EPS,
        session_delays,
        max_delay,
        peak_total_allocation: peak,
        local_changes: run.local_changes(),
        global_changes: run.total.num_changes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, simulate_multi, DrainPolicy};
    use crate::traits::{Allocator, MultiAllocator};

    struct Flat(f64);
    impl Allocator for Flat {
        fn on_tick(&mut self, _a: f64) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "flat"
        }
    }

    #[test]
    fn verdict_checks_all_three_bounds() {
        let t = Trace::new(vec![2.0; 20]).unwrap();
        let run = simulate(&t, &mut Flat(2.0), DrainPolicy::DrainToEmpty).unwrap();
        let bounds = SingleBounds {
            max_bandwidth: 4.0,
            max_delay: 2,
            min_utilization: 0.5,
            window: 4,
            relaxed_window: 8,
        };
        let v = verify_single(&t, &run, &bounds);
        assert!(v.all_ok(), "{v:?}");
        assert_eq!(v.max_delay, Some(0));
        assert!((v.utilization - 1.0).abs() < 1e-9);
        assert_eq!(v.peak_allocation, 2.0);
    }

    #[test]
    fn delay_violation_is_flagged() {
        let t = Trace::new(vec![20.0, 0.0, 0.0, 0.0]).unwrap();
        let run = simulate(&t, &mut Flat(2.0), DrainPolicy::DrainToEmpty).unwrap();
        let bounds = SingleBounds {
            max_bandwidth: 4.0,
            max_delay: 2,
            min_utilization: 0.0,
            window: 4,
            relaxed_window: 4,
        };
        let v = verify_single(&t, &run, &bounds);
        assert!(!v.delay_ok);
        assert!(v.max_delay.unwrap() > 2);
    }

    #[test]
    fn bandwidth_violation_is_flagged() {
        let t = Trace::new(vec![2.0; 4]).unwrap();
        let run = simulate(&t, &mut Flat(8.0), DrainPolicy::DrainToEmpty).unwrap();
        let bounds = SingleBounds {
            max_bandwidth: 4.0,
            max_delay: 10,
            min_utilization: 0.0,
            window: 2,
            relaxed_window: 2,
        };
        let v = verify_single(&t, &run, &bounds);
        assert!(!v.bandwidth_ok);
    }

    struct FlatMulti(usize, f64);
    impl MultiAllocator for FlatMulti {
        fn num_sessions(&self) -> usize {
            self.0
        }
        fn on_tick(&mut self, _a: &[f64]) -> Vec<f64> {
            vec![self.1; self.0]
        }
        fn name(&self) -> &'static str {
            "flat-multi"
        }
    }

    #[test]
    fn multi_verdict_aggregates_sessions() {
        let m = cdba_traffic::multi::rotating_hot(2, 3.0, 1.0, 4, 16).unwrap();
        let run = simulate_multi(&m, &mut FlatMulti(2, 4.0), DrainPolicy::DrainToEmpty).unwrap();
        let v = verify_multi(
            &m,
            &run,
            &MultiBounds {
                total_bandwidth: 8.0,
                max_delay: 1,
            },
        );
        assert!(v.all_ok(), "{v:?}");
        assert_eq!(v.session_delays.len(), 2);
        assert_eq!(v.peak_total_allocation, 8.0);
    }

    #[test]
    fn multi_bandwidth_violation() {
        let m = cdba_traffic::multi::rotating_hot(2, 1.0, 1.0, 4, 8).unwrap();
        let run = simulate_multi(&m, &mut FlatMulti(2, 4.0), DrainPolicy::DrainToEmpty).unwrap();
        let v = verify_multi(
            &m,
            &run,
            &MultiBounds {
                total_bandwidth: 6.0,
                max_delay: 8,
            },
        );
        assert!(!v.bandwidth_ok);
        assert!(v.delay_ok);
    }
}
