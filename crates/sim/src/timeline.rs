//! Human-readable run timelines: a completed [`crate::engine::Run`]
//! rendered as an annotated text strip — demand, allocation, backlog, and
//! change markers per time bucket. Used by `cdba-cli` and handy in test
//! failure messages.

use crate::engine::Run;
use cdba_traffic::Trace;
use std::fmt::Write as _;

/// Rendering options for [`render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineOptions {
    /// Number of time buckets (columns) to fold the run into.
    pub buckets: usize,
    /// Include the backlog row.
    pub show_backlog: bool,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            buckets: 60,
            show_backlog: true,
        }
    }
}

fn bucketize(values: &[f64], buckets: usize, fold: impl Fn(&[f64]) -> f64) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let chunk = values.len().div_ceil(buckets.max(1));
    values.chunks(chunk).map(fold).collect()
}

fn spark(values: &[f64]) -> String {
    const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let top = values.iter().copied().fold(0.0f64, f64::max);
    if top <= 0.0 {
        return " ".repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            let idx = ((v / top) * 8.0).ceil().clamp(0.0, 8.0) as usize;
            LEVELS[idx]
        })
        .collect()
}

/// Renders a run as a multi-row text timeline.
///
/// ```text
/// demand  ▁▂▁█▁▁▂▁…   (max 37.2)
/// alloc   ▂▂▂▄▄▄▂▂…   (max 16.0, 12 changes)
/// backlog ▁▁ ▇▃▁  …   (max 85.0)
/// changes ··|··|··…
/// ```
pub fn render(trace: &Trace, run: &Run, options: TimelineOptions) -> String {
    let n = run.schedule.len();
    let buckets = options.buckets.max(1);
    let demand: Vec<f64> = (0..n).map(|t| trace.arrival(t)).collect();
    // Reconstruct backlog from cumulative arrivals − served.
    let mut backlog = Vec::with_capacity(n);
    let mut q = 0.0f64;
    for t in 0..n {
        q += trace.arrival(t) - run.served().get(t).copied().unwrap_or(0.0);
        backlog.push(q.max(0.0));
    }
    let max = |c: &[f64]| c.iter().copied().fold(0.0f64, f64::max);
    let d = bucketize(&demand, buckets, max);
    let a = bucketize(run.schedule.allocation(), buckets, max);
    let b = bucketize(&backlog, buckets, max);
    // Change markers: '|' where a bucket contains at least one change.
    let chunk = n.div_ceil(buckets);
    let marks: String = (0..d.len())
        .map(|i| {
            let lo = i * chunk;
            let hi = ((i + 1) * chunk).min(n);
            if run.schedule.changes_in(lo, hi) > 0 {
                '|'
            } else {
                '·'
            }
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "demand  {}   (max {:.1})", spark(&d), max(&demand));
    let _ = writeln!(
        out,
        "alloc   {}   (max {:.1}, {} changes)",
        spark(&a),
        run.schedule.peak(),
        run.schedule.num_changes()
    );
    if options.show_backlog {
        let _ = writeln!(out, "backlog {}   (max {:.1})", spark(&b), max(&backlog));
    }
    let _ = write!(out, "changes {marks}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, DrainPolicy};
    use crate::traits::Allocator;

    struct Flat(f64);
    impl Allocator for Flat {
        fn on_tick(&mut self, _a: f64) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "flat"
        }
    }

    fn fixture() -> (Trace, Run) {
        let arrivals: Vec<f64> = (0..120)
            .map(|t| if t % 17 == 0 { 24.0 } else { 1.0 })
            .collect();
        let trace = Trace::new(arrivals).unwrap();
        let run = simulate(&trace, &mut Flat(4.0), DrainPolicy::DrainToEmpty).unwrap();
        (trace, run)
    }

    #[test]
    fn renders_all_rows() {
        let (trace, run) = fixture();
        let text = render(&trace, &run, TimelineOptions::default());
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("demand"));
        assert!(text.contains("alloc"));
        assert!(text.contains("backlog"));
        assert!(text.contains("1 changes"));
    }

    #[test]
    fn backlog_row_is_optional() {
        let (trace, run) = fixture();
        let text = render(
            &trace,
            &run,
            TimelineOptions {
                buckets: 30,
                show_backlog: false,
            },
        );
        assert_eq!(text.lines().count(), 3);
        assert!(!text.contains("backlog"));
    }

    #[test]
    fn change_markers_line_up_with_changes() {
        let (trace, run) = fixture();
        let text = render(&trace, &run, TimelineOptions::default());
        let marks = text.lines().last().unwrap();
        // The only change is the 0→4 establishment at tick 0: exactly one '|'.
        assert_eq!(marks.matches('|').count(), 1);
        assert!(marks.starts_with("changes |"));
    }

    #[test]
    fn degenerate_buckets_do_not_panic() {
        let (trace, run) = fixture();
        let text = render(
            &trace,
            &run,
            TimelineOptions {
                buckets: 1,
                show_backlog: true,
            },
        );
        assert!(text.contains("alloc"));
    }
}
