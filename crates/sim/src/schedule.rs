//! Allocation schedules: the per-tick bandwidth timeline plus the log of
//! allocation *changes* — the cost measure the paper minimizes.

use cdba_traffic::EPS;
use serde::{Deserialize, Serialize};

/// One bandwidth allocation change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Change {
    /// Tick at which the new value took effect.
    pub tick: usize,
    /// Previous allocation.
    pub from: f64,
    /// New allocation.
    pub to: f64,
}

/// An immutable record of the bandwidth allocated at every tick of a run,
/// with the derived change log.
///
/// Built through [`ScheduleBuilder`]; the initial allocation before the run
/// is defined to be 0, so a first tick with non-zero allocation counts as one
/// change (consistent with the paper, where establishing an allocation is a
/// signalling operation like any other change).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    allocation: Vec<f64>,
    changes: Vec<Change>,
    prefix: Vec<f64>,
}

impl Schedule {
    /// Per-tick allocation values.
    pub fn allocation(&self) -> &[f64] {
        &self.allocation
    }

    /// Allocation at tick `t` (0 beyond the end).
    pub fn allocation_at(&self, t: usize) -> f64 {
        self.allocation.get(t).copied().unwrap_or(0.0)
    }

    /// Number of ticks recorded.
    pub fn len(&self) -> usize {
        self.allocation.len()
    }

    /// `true` if no ticks were recorded.
    pub fn is_empty(&self) -> bool {
        self.allocation.is_empty()
    }

    /// The change log, in tick order.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// Total number of allocation changes.
    pub fn num_changes(&self) -> usize {
        self.changes.len()
    }

    /// Number of changes in the half-open tick interval `[a, b)`.
    pub fn changes_in(&self, a: usize, b: usize) -> usize {
        self.changes
            .iter()
            .filter(|c| (a..b).contains(&c.tick))
            .count()
    }

    /// Total allocated bandwidth over ticks `[a, b)` (the paper's
    /// `B(t − W, t]` in our half-open convention). O(1) via prefix sums.
    pub fn allocated(&self, a: usize, b: usize) -> f64 {
        if a >= b {
            return 0.0;
        }
        let b = b.min(self.allocation.len());
        let a = a.min(b);
        self.prefix[b] - self.prefix[a]
    }

    /// Peak single-tick allocation.
    pub fn peak(&self) -> f64 {
        self.allocation.iter().copied().fold(0.0, f64::max)
    }

    /// Mean allocation per tick.
    pub fn mean(&self) -> f64 {
        if self.allocation.is_empty() {
            0.0
        } else {
            self.allocated(0, self.allocation.len()) / self.allocation.len() as f64
        }
    }
}

/// Incremental builder used by the engine: push one allocation per tick;
/// changes are detected automatically (difference above [`EPS`]).
///
/// # Example
///
/// ```
/// use cdba_sim::ScheduleBuilder;
///
/// let mut builder = ScheduleBuilder::new();
/// for alloc in [0.0, 2.0, 2.0, 4.0] {
///     builder.push(alloc);
/// }
/// let schedule = builder.build();
/// assert_eq!(schedule.num_changes(), 2);       // 0→2 and 2→4
/// assert_eq!(schedule.allocated(0, 4), 8.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScheduleBuilder {
    allocation: Vec<f64>,
    changes: Vec<Change>,
    current: f64,
}

impl ScheduleBuilder {
    /// Creates a builder with implicit initial allocation 0.
    pub fn new() -> Self {
        ScheduleBuilder::default()
    }

    /// Records the allocation for the next tick.
    pub fn push(&mut self, allocation: f64) {
        let tick = self.allocation.len();
        if (allocation - self.current).abs() > EPS {
            self.changes.push(Change {
                tick,
                from: self.current,
                to: allocation,
            });
            self.current = allocation;
        }
        self.allocation.push(self.current);
    }

    /// Number of ticks pushed so far.
    pub fn len(&self) -> usize {
        self.allocation.len()
    }

    /// `true` if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.allocation.is_empty()
    }

    /// The allocation most recently pushed (0 before the first push).
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Finalizes into an immutable [`Schedule`].
    pub fn build(self) -> Schedule {
        let mut prefix = Vec::with_capacity(self.allocation.len() + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for &a in &self.allocation {
            acc += a;
            prefix.push(acc);
        }
        Schedule {
            allocation: self.allocation,
            changes: self.changes,
            prefix,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(values: &[f64]) -> Schedule {
        let mut b = ScheduleBuilder::new();
        for &v in values {
            b.push(v);
        }
        b.build()
    }

    #[test]
    fn detects_changes() {
        let s = build(&[0.0, 2.0, 2.0, 4.0, 4.0, 0.0]);
        assert_eq!(s.num_changes(), 3);
        assert_eq!(
            s.changes(),
            &[
                Change {
                    tick: 1,
                    from: 0.0,
                    to: 2.0
                },
                Change {
                    tick: 3,
                    from: 2.0,
                    to: 4.0
                },
                Change {
                    tick: 5,
                    from: 4.0,
                    to: 0.0
                },
            ]
        );
    }

    #[test]
    fn initial_zero_is_free() {
        let s = build(&[0.0, 0.0]);
        assert_eq!(s.num_changes(), 0);
    }

    #[test]
    fn sub_eps_wiggle_is_not_a_change() {
        let s = build(&[2.0, 2.0 + 1e-9, 2.0]);
        assert_eq!(s.num_changes(), 1); // only 0 → 2
                                        // The wiggle is also flattened in the recorded timeline.
        assert_eq!(s.allocation(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn allocated_prefix_sums() {
        let s = build(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.allocated(0, 4), 10.0);
        assert_eq!(s.allocated(1, 3), 5.0);
        assert_eq!(s.allocated(3, 3), 0.0);
        assert_eq!(s.allocated(2, 100), 7.0);
        assert_eq!(s.peak(), 4.0);
        assert_eq!(s.mean(), 2.5);
    }

    #[test]
    fn changes_in_interval() {
        let s = build(&[0.0, 2.0, 2.0, 4.0]);
        assert_eq!(s.changes_in(0, 2), 1);
        assert_eq!(s.changes_in(2, 4), 1);
        assert_eq!(s.changes_in(0, 4), 2);
    }
}
