//! Utilization measurement — the paper's *local* (windowed) definition, the
//! *global* definition, and the relaxed windowed variant the online
//! guarantee (Lemma 5) is stated for.
//!
//! Local utilization over window `W` is
//! `min over t of IN[t−W, t) / B[t−W, t)` where `IN` counts *incoming* bits
//! (not transmitted ones — the paper chooses this so that utilization is
//! monotone in the allocation) and `B` sums the allocated bandwidth.
//! Windows in which no bandwidth was allocated waste nothing and are
//! skipped. Values above 1 are possible (demand exceeding allocation) and
//! reported as-is.

use crate::schedule::Schedule;
use cdba_traffic::{Trace, EPS};

/// A utilization measurement outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationReport {
    /// The minimized ratio (∞ if every window was skipped).
    pub utilization: f64,
    /// The tick at whose window the minimum was attained (window end).
    pub worst_window_end: usize,
    /// Number of windows that entered the minimum.
    pub windows_considered: usize,
}

/// The paper's local utilization with a fixed window of `w` ticks:
/// `min over t ≥ w of IN[t−w, t) / B[t−w, t)`.
///
/// Windows with total allocation ≤ [`EPS`] are skipped (allocating nothing
/// wastes nothing). Returns `utilization = ∞` when every window is skipped.
///
/// # Panics
///
/// Panics if `w == 0`.
pub fn local_utilization(trace: &Trace, schedule: &Schedule, w: usize) -> UtilizationReport {
    assert!(w > 0, "window must be at least one tick");
    let mut best = f64::INFINITY;
    let mut worst_end = 0usize;
    let mut considered = 0usize;
    let horizon = schedule.len();
    for end in w..=horizon {
        let alloc = schedule.allocated(end - w, end);
        if alloc <= EPS {
            continue;
        }
        considered += 1;
        let ratio = trace.window(end - w, end) / alloc;
        if ratio < best {
            best = ratio;
            worst_end = end;
        }
    }
    UtilizationReport {
        utilization: best,
        worst_window_end: worst_end,
        windows_considered: considered,
    }
}

/// The relaxed local utilization of Lemma 5: for each window end `t` the
/// *best* ratio over window sizes `w_min ..= w_max` is taken (the paper
/// allows the online algorithm windows up to `W + 5·D_O`), then the minimum
/// over `t`. The online guarantee `≥ U_O/3` is stated for this measure.
///
/// # Panics
///
/// Panics if `w_min == 0` or `w_min > w_max`.
pub fn relaxed_local_utilization(
    trace: &Trace,
    schedule: &Schedule,
    w_min: usize,
    w_max: usize,
) -> UtilizationReport {
    assert!(w_min > 0 && w_min <= w_max, "bad window range");
    let mut best = f64::INFINITY;
    let mut worst_end = 0usize;
    let mut considered = 0usize;
    let horizon = schedule.len();
    for end in w_min..=horizon {
        let mut window_best = f64::NEG_INFINITY;
        let mut any = false;
        for w in w_min..=w_max.min(end) {
            let alloc = schedule.allocated(end - w, end);
            if alloc <= EPS {
                // A zero-allocation window wastes nothing: the relaxed
                // criterion is vacuously satisfied at this end point.
                window_best = f64::INFINITY;
                any = true;
                break;
            }
            any = true;
            window_best = window_best.max(trace.window(end - w, end) / alloc);
        }
        if !any {
            continue;
        }
        considered += 1;
        if window_best < best {
            best = window_best;
            worst_end = end;
        }
    }
    UtilizationReport {
        utilization: best,
        worst_window_end: worst_end,
        windows_considered: considered,
    }
}

/// Global utilization: total incoming bits over total allocated bandwidth
/// across the whole run (∞ if nothing was allocated).
pub fn global_utilization(trace: &Trace, schedule: &Schedule) -> f64 {
    let alloc = schedule.allocated(0, schedule.len());
    if alloc <= EPS {
        f64::INFINITY
    } else {
        trace.total() / alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleBuilder;

    fn schedule(values: &[f64]) -> Schedule {
        let mut b = ScheduleBuilder::new();
        for &v in values {
            b.push(v);
        }
        b.build()
    }

    #[test]
    fn perfectly_sized_allocation_has_utilization_one() {
        let t = Trace::new(vec![2.0; 10]).unwrap();
        let s = schedule(&[2.0; 10]);
        let r = local_utilization(&t, &s, 5);
        assert!((r.utilization - 1.0).abs() < 1e-12);
        assert_eq!(r.windows_considered, 6);
    }

    #[test]
    fn overallocation_halves_utilization() {
        let t = Trace::new(vec![2.0; 10]).unwrap();
        let s = schedule(&[4.0; 10]);
        let r = local_utilization(&t, &s, 5);
        assert!((r.utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn worst_window_is_located() {
        // Allocation 4 everywhere; arrivals drop to 0 in ticks 4..8.
        let t = Trace::new(vec![4.0, 4.0, 4.0, 4.0, 0.0, 0.0, 0.0, 0.0, 4.0, 4.0]).unwrap();
        let s = schedule(&[4.0; 10]);
        let r = local_utilization(&t, &s, 4);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.worst_window_end, 8);
    }

    #[test]
    fn zero_allocation_windows_are_skipped() {
        let t = Trace::new(vec![0.0, 0.0, 2.0, 2.0]).unwrap();
        let s = schedule(&[0.0, 0.0, 2.0, 2.0]);
        let r = local_utilization(&t, &s, 2);
        // Only the final window [2,4) has allocation; ratio 1.
        assert!((r.utilization - 1.0).abs() < 1e-12);
        assert_eq!(r.windows_considered, 2); // windows ending at 3 and 4 overlap allocation
    }

    #[test]
    fn all_windows_skipped_is_infinite() {
        let t = Trace::new(vec![1.0, 1.0]).unwrap();
        let s = schedule(&[0.0, 0.0]);
        let r = local_utilization(&t, &s, 2);
        assert!(r.utilization.is_infinite());
        assert_eq!(r.windows_considered, 0);
    }

    #[test]
    fn relaxed_is_at_least_strict() {
        let t = Trace::new(vec![8.0, 0.0, 0.0, 0.0, 8.0, 0.0, 0.0, 0.0]).unwrap();
        let s = schedule(&[4.0, 4.0, 2.0, 2.0, 4.0, 4.0, 2.0, 2.0]);
        let strict = local_utilization(&t, &s, 2).utilization;
        let relaxed = relaxed_local_utilization(&t, &s, 2, 6).utilization;
        assert!(
            relaxed >= strict - 1e-12,
            "relaxed {relaxed} strict {strict}"
        );
    }

    #[test]
    fn global_utilization_ratio() {
        let t = Trace::new(vec![2.0, 2.0]).unwrap();
        let s = schedule(&[4.0, 4.0]);
        assert!((global_utilization(&t, &s) - 0.5).abs() < 1e-12);
        let empty = schedule(&[0.0, 0.0]);
        assert!(global_utilization(&t, &empty).is_infinite());
    }

    #[test]
    fn demand_exceeding_allocation_reports_above_one() {
        let t = Trace::new(vec![8.0, 8.0]).unwrap();
        let s = schedule(&[2.0, 2.0]);
        let r = local_utilization(&t, &s, 2);
        assert!((r.utilization - 4.0).abs() < 1e-12);
    }
}
