//! FIFO latency measurement from cumulative arrival and service curves.
//!
//! The paper defines the latency of a session as the maximum over all bits of
//! the time between submission and delivery. Under FIFO this is computable
//! from the two cumulative step curves alone: the bits that arrived by the
//! end of tick `t` (`A(t)`) are delivered by the first tick `t'` with
//! `S(t') ≥ A(t)`; the delay charged to tick `t` is `t' − t`.

use cdba_traffic::{Trace, EPS};

/// Maximum FIFO delay in ticks over every tick with arrivals, or `None` if
/// some bits were never served within the given service curve (backlog
/// remained — run the engine with
/// [`crate::engine::DrainPolicy::DrainToEmpty`] to avoid this).
///
/// `served[t]` is the bits served during tick `t`; it may be longer than the
/// trace (drain ticks). A bit arriving during tick `t` and served during
/// tick `t` has delay 0.
pub fn max_delay(trace: &Trace, served: &[f64]) -> Option<usize> {
    delay_profile(trace, served).map(|profile| profile.into_iter().max().unwrap_or(0))
}

/// Per-tick FIFO delay: element `t` is the delay (in ticks) of the *last* bit
/// that arrived during tick `t` (the worst bit of that tick under FIFO).
/// Ticks without arrivals report 0. Returns `None` if some bits were never
/// served.
pub fn delay_profile(trace: &Trace, served: &[f64]) -> Option<Vec<usize>> {
    let n = trace.len();
    let mut profile = vec![0usize; n];
    // Cumulative service curve.
    let mut s_cum = Vec::with_capacity(served.len() + 1);
    let mut acc = 0.0;
    s_cum.push(0.0);
    for &s in served {
        acc += s;
        s_cum.push(acc);
    }
    let total_served = acc;

    // Two-pointer sweep: for each arrival tick t, advance t' until
    // S(t') >= A(t). Both curves are non-decreasing so t' never moves back.
    let mut tp = 0usize; // candidate service tick (index into served)
    for (t, slot) in profile.iter_mut().enumerate() {
        if trace.arrival(t) <= 0.0 {
            continue;
        }
        let a_t = trace.cumulative(t + 1);
        if a_t > total_served + EPS {
            return None; // these bits were never served
        }
        while s_cum[tp + 1] + EPS < a_t {
            tp += 1;
            debug_assert!(tp < served.len(), "service curve exhausted");
        }
        // Bits of tick t are fully served during tick tp (tp >= t always,
        // since service cannot precede arrival).
        *slot = tp.saturating_sub(t);
    }
    Some(profile)
}

/// A bit-weighted delay distribution: each tick's arrivals are charged that
/// tick's (FIFO-worst) delay from [`delay_profile`], weighted by the number
/// of bits that arrived.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayDistribution {
    /// `(delay, bits)` pairs sorted by delay.
    weighted: Vec<(usize, f64)>,
    total_bits: f64,
}

impl DelayDistribution {
    /// Computes the distribution, or `None` if some bits were never served.
    pub fn measure(trace: &Trace, served: &[f64]) -> Option<Self> {
        let profile = delay_profile(trace, served)?;
        let mut weighted: Vec<(usize, f64)> = profile
            .into_iter()
            .zip(trace.arrivals())
            .filter(|&(_, &bits)| bits > 0.0)
            .map(|(d, &bits)| (d, bits))
            .collect();
        weighted.sort_unstable_by_key(|&(d, _)| d);
        let total_bits = weighted.iter().map(|&(_, b)| b).sum();
        Some(DelayDistribution {
            weighted,
            total_bits,
        })
    }

    /// The delay not exceeded by at least fraction `p ∈ [0, 1]` of the bits
    /// (0 for an empty distribution).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> usize {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        let target = p * self.total_bits;
        let mut acc = 0.0;
        for &(d, bits) in &self.weighted {
            acc += bits;
            if acc >= target {
                return d;
            }
        }
        self.weighted.last().map_or(0, |&(d, _)| d)
    }

    /// Bit-weighted mean delay (0 for an empty distribution).
    pub fn mean(&self) -> f64 {
        if self.total_bits <= 0.0 {
            return 0.0;
        }
        self.weighted
            .iter()
            .map(|&(d, b)| d as f64 * b)
            .sum::<f64>()
            / self.total_bits
    }

    /// The maximum delay (equals [`max_delay`]).
    pub fn max(&self) -> usize {
        self.weighted.last().map_or(0, |&(d, _)| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_tick_service_is_zero_delay() {
        let t = Trace::new(vec![3.0, 3.0]).unwrap();
        let served = vec![3.0, 3.0];
        assert_eq!(max_delay(&t, &served), Some(0));
    }

    #[test]
    fn backlog_shifts_delay() {
        // 10 bits at tick 0, served 2/tick: last bit leaves during tick 4.
        let t = Trace::new(vec![10.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let served = vec![2.0, 2.0, 2.0, 2.0, 2.0];
        assert_eq!(max_delay(&t, &served), Some(4));
        let profile = delay_profile(&t, &served).unwrap();
        assert_eq!(profile[0], 4);
        assert_eq!(profile[1..], [0, 0, 0, 0]);
    }

    #[test]
    fn unserved_bits_yield_none() {
        let t = Trace::new(vec![10.0]).unwrap();
        let served = vec![4.0];
        assert_eq!(max_delay(&t, &served), None);
    }

    #[test]
    fn drain_ticks_extend_the_service_curve() {
        let t = Trace::new(vec![6.0]).unwrap();
        let served = vec![2.0, 2.0, 2.0]; // 2 drain ticks beyond the trace
        assert_eq!(max_delay(&t, &served), Some(2));
    }

    #[test]
    fn fifo_interleaving() {
        // Arrivals 4, 4; service 2, 2, 2, 2: tick-0 bits finish during tick 1
        // (delay 1), tick-1 bits finish during tick 3 (delay 2).
        let t = Trace::new(vec![4.0, 4.0, 0.0, 0.0]).unwrap();
        let served = vec![2.0, 2.0, 2.0, 2.0];
        let profile = delay_profile(&t, &served).unwrap();
        assert_eq!(profile[0], 1);
        assert_eq!(profile[1], 2);
        assert_eq!(max_delay(&t, &served), Some(2));
    }

    #[test]
    fn zero_arrival_ticks_report_zero() {
        let t = Trace::new(vec![0.0, 5.0, 0.0]).unwrap();
        let served = vec![0.0, 5.0, 0.0];
        let profile = delay_profile(&t, &served).unwrap();
        assert_eq!(profile, vec![0, 0, 0]);
    }

    #[test]
    fn distribution_percentiles_are_bit_weighted() {
        // 90 bits at delay 0, 10 bits at delay 5.
        let t = Trace::new(vec![90.0, 10.0, 0.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let served = vec![90.0, 0.0, 0.0, 0.0, 0.0, 0.0, 10.0];
        let dist = DelayDistribution::measure(&t, &served).unwrap();
        assert_eq!(dist.percentile(0.5), 0);
        assert_eq!(dist.percentile(0.9), 0);
        assert_eq!(dist.percentile(0.95), 5);
        assert_eq!(dist.percentile(1.0), 5);
        assert_eq!(dist.max(), 5);
        assert!((dist.mean() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distribution_matches_max_delay() {
        let t = Trace::new(vec![4.0, 4.0, 0.0, 0.0]).unwrap();
        let served = vec![2.0, 2.0, 2.0, 2.0];
        let dist = DelayDistribution::measure(&t, &served).unwrap();
        assert_eq!(dist.max(), max_delay(&t, &served).unwrap());
    }

    #[test]
    fn unserved_distribution_is_none() {
        let t = Trace::new(vec![10.0]).unwrap();
        assert!(DelayDistribution::measure(&t, &[1.0]).is_none());
    }
}
