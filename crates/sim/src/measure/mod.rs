//! The paper's quality-of-service measures: latency and utilization.
//!
//! Change counting, the third measure, lives on
//! [`crate::schedule::Schedule`] where the change log is recorded.

mod delay;
mod utilization;

pub use delay::{delay_profile, max_delay, DelayDistribution};
pub use utilization::{
    global_utilization, local_utilization, relaxed_local_utilization, UtilizationReport,
};
