//! Constant-memory streaming simulation: drive an allocator over an
//! arbitrarily long arrival *iterator* without materializing the trace, the
//! schedule, or the service curve.
//!
//! The batch engine ([`crate::engine`]) records everything and measures
//! post-hoc; this module instead folds the measurements online:
//!
//! * changes and peak allocation — O(1) state;
//! * maximum FIFO delay — [`OnlineDelayTracker`], O(backlog ticks) state
//!   (bounded by the algorithm's delay guarantee in practice);
//! * utilization — rolling window sums, O(W) state.
//!
//! Use it for soak tests and for replaying real packet traces that do not
//! fit in memory.

use crate::queue::BitQueue;
use crate::traits::Allocator;
use cdba_traffic::EPS;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The full internal state of an [`OnlineDelayTracker`], exported for
/// checkpointing. Restoring from this state reproduces the tracker
/// bitwise: every field is copied verbatim, no recomputation happens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayTrackerState {
    /// `(arrival tick, unserved bits)` entries, oldest first.
    pub pending: Vec<(usize, f64)>,
    /// Ticks pushed so far.
    pub tick: usize,
    /// Maximum whole-tick FIFO delay observed so far.
    pub max_delay: usize,
    /// Maximum exact (fractional) FIFO delay observed so far.
    pub max_delay_exact: f64,
}

/// Online maximum-FIFO-delay tracker: feed `(arrivals, served)` per tick.
///
/// Keeps one entry per arrival tick whose bits are not yet fully served —
/// under an algorithm with delay bound `D` this is at most `D + 1` entries.
#[derive(Debug, Clone, Default)]
pub struct OnlineDelayTracker {
    pending: VecDeque<(usize, f64)>,
    tick: usize,
    max_delay: usize,
    max_delay_exact: f64,
}

impl OnlineDelayTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances one tick.
    pub fn push(&mut self, arrivals: f64, served: f64) {
        if arrivals > EPS {
            self.pending.push_back((self.tick, arrivals));
        }
        let total = served;
        let mut left = served;
        while left > EPS {
            let Some(front) = self.pending.front_mut() else {
                break;
            };
            let take = front.1.min(left);
            front.1 -= take;
            left -= take;
            if front.1 <= EPS {
                self.max_delay = self.max_delay.max(self.tick - front.0);
                // The entry completes after the fraction of this tick's
                // service consumed so far, so its exact delay is that
                // fraction into tick `tick - t0`. The exact value is
                // always in (integer − 1, integer], so `ceil(exact)`
                // equals the whole-tick delay above.
                let consumed = ((total - left) / total).clamp(0.0, 1.0);
                let exact = ((self.tick - front.0) as f64 - 1.0 + consumed).max(0.0);
                self.max_delay_exact = self.max_delay_exact.max(exact);
                self.pending.pop_front();
            }
        }
        // A still-pending head already implies at least this much delay.
        if let Some(&(t0, _)) = self.pending.front() {
            self.max_delay = self.max_delay.max(self.tick - t0);
            self.max_delay_exact = self.max_delay_exact.max((self.tick - t0) as f64);
        }
        self.tick += 1;
    }

    /// The maximum FIFO delay observed so far (including bits still queued,
    /// charged with their age so far).
    pub fn max_delay(&self) -> usize {
        self.max_delay
    }

    /// The maximum FIFO delay with sub-tick resolution: a batch completing
    /// partway through a tick's service is charged the fraction of the
    /// tick consumed at its completion, not the whole tick. Always in
    /// `(max_delay − 1, max_delay]`, so `ceil` of this value recovers
    /// [`OnlineDelayTracker::max_delay`].
    pub fn max_delay_exact(&self) -> f64 {
        self.max_delay_exact
    }

    /// Ticks with unserved bits currently tracked.
    pub fn pending_ticks(&self) -> usize {
        self.pending.len()
    }

    /// Exports the full internal state (for checkpointing).
    pub fn state(&self) -> DelayTrackerState {
        DelayTrackerState {
            pending: self.pending.iter().copied().collect(),
            tick: self.tick,
            max_delay: self.max_delay,
            max_delay_exact: self.max_delay_exact,
        }
    }

    /// Rebuilds a tracker from an exported state, bitwise.
    pub fn restore(state: &DelayTrackerState) -> Self {
        OnlineDelayTracker {
            pending: state.pending.iter().copied().collect(),
            tick: state.tick,
            max_delay: state.max_delay,
            max_delay_exact: state.max_delay_exact,
        }
    }
}

/// The running summary a streaming run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// Ticks processed (including drain ticks).
    pub ticks: usize,
    /// Total bits that arrived.
    pub total_arrived: f64,
    /// Total bits served.
    pub total_served: f64,
    /// Allocation changes.
    pub changes: usize,
    /// Peak single-tick allocation.
    pub peak_allocation: f64,
    /// Total allocated bandwidth (for global utilization).
    pub total_allocated: f64,
    /// Maximum FIFO delay in ticks (bits still queued at the end are
    /// charged with their age so far).
    pub max_delay: usize,
    /// Backlog remaining at the end.
    pub final_backlog: f64,
}

impl StreamSummary {
    /// Global utilization: arrived bits over allocated bandwidth.
    pub fn global_utilization(&self) -> f64 {
        if self.total_allocated <= EPS {
            f64::INFINITY
        } else {
            self.total_arrived / self.total_allocated
        }
    }
}

/// Drives an allocator over an arrival iterator with O(1)+O(backlog)
/// memory, then keeps ticking with zero arrivals until the queue drains
/// (capped at `drain_cap` extra ticks; pass 0 to stop at the iterator's
/// end).
///
/// Invalid allocations (negative/NaN) are clamped to 0 rather than
/// reported — streaming favours forward progress; use the batch engine
/// when diagnosing an allocator.
pub fn simulate_streaming<A: Allocator + ?Sized>(
    arrivals: impl IntoIterator<Item = f64>,
    allocator: &mut A,
    drain_cap: usize,
) -> StreamSummary {
    let mut queue = BitQueue::new();
    let mut delay = OnlineDelayTracker::new();
    let mut summary = StreamSummary {
        ticks: 0,
        total_arrived: 0.0,
        total_served: 0.0,
        changes: 0,
        peak_allocation: 0.0,
        total_allocated: 0.0,
        max_delay: 0,
        final_backlog: 0.0,
    };
    let mut current_alloc = 0.0f64;
    let step = |arrival: f64,
                queue: &mut BitQueue,
                delay: &mut OnlineDelayTracker,
                summary: &mut StreamSummary,
                current_alloc: &mut f64,
                allocator: &mut A| {
        let arrival = if arrival.is_finite() {
            arrival.max(0.0)
        } else {
            0.0
        };
        let alloc = allocator.on_tick(arrival);
        let alloc = if alloc.is_finite() {
            alloc.max(0.0)
        } else {
            0.0
        };
        if (alloc - *current_alloc).abs() > EPS {
            summary.changes += 1;
            *current_alloc = alloc;
        }
        let served = queue.tick(arrival, alloc);
        delay.push(arrival, served);
        summary.ticks += 1;
        summary.total_arrived += arrival;
        summary.total_served += served;
        summary.total_allocated += alloc;
        summary.peak_allocation = summary.peak_allocation.max(alloc);
    };
    for arrival in arrivals {
        step(
            arrival,
            &mut queue,
            &mut delay,
            &mut summary,
            &mut current_alloc,
            allocator,
        );
    }
    let mut extra = 0usize;
    while !queue.is_empty() && extra < drain_cap {
        step(
            0.0,
            &mut queue,
            &mut delay,
            &mut summary,
            &mut current_alloc,
            allocator,
        );
        extra += 1;
    }
    summary.max_delay = delay.max_delay();
    summary.final_backlog = queue.backlog();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Flat(f64);
    impl Allocator for Flat {
        fn on_tick(&mut self, _a: f64) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "flat"
        }
    }

    #[test]
    fn matches_batch_engine_on_small_input() {
        let arrivals = vec![2.0, 8.0, 0.0, 0.0, 5.0, 0.0];
        let stream = simulate_streaming(arrivals.iter().copied(), &mut Flat(3.0), 1024);
        let trace = cdba_traffic::Trace::new(arrivals).unwrap();
        let run = crate::engine::simulate(
            &trace,
            &mut Flat(3.0),
            crate::engine::DrainPolicy::DrainToEmpty,
        )
        .unwrap();
        assert_eq!(stream.changes, run.schedule.num_changes());
        assert!((stream.total_served - run.total_served()).abs() < 1e-9);
        assert_eq!(
            stream.max_delay,
            crate::measure::max_delay(&trace, run.served()).unwrap()
        );
        assert_eq!(stream.final_backlog, 0.0);
    }

    #[test]
    fn online_delay_tracker_charges_queued_age() {
        let mut t = OnlineDelayTracker::new();
        t.push(10.0, 0.0);
        t.push(0.0, 0.0);
        t.push(0.0, 0.0);
        // Nothing served, but the bits are already 2 ticks old.
        assert_eq!(t.max_delay(), 2);
        t.push(0.0, 10.0);
        assert_eq!(t.max_delay(), 3);
        assert_eq!(t.pending_ticks(), 0);
    }

    #[test]
    fn exact_delay_tracks_completion_fraction() {
        let mut t = OnlineDelayTracker::new();
        // 10 bits arrive; 2 ticks later a 5-bit batch arrives too.
        t.push(10.0, 0.0);
        t.push(0.0, 0.0);
        t.push(5.0, 0.0);
        // Serve 20 this tick: the first batch completes after 10/20 of the
        // tick (delay 3 − 1 + 0.5 = 2.5), the second after 15/20
        // (delay 1 − 1 + 0.75 = 0.75).
        t.push(0.0, 20.0);
        assert_eq!(t.max_delay(), 3);
        assert!((t.max_delay_exact() - 2.5).abs() < 1e-12);
        assert_eq!(t.max_delay_exact().ceil() as usize, t.max_delay());
    }

    #[test]
    fn exact_delay_charges_pending_head_whole_ticks() {
        let mut t = OnlineDelayTracker::new();
        t.push(4.0, 0.0);
        t.push(0.0, 0.0);
        t.push(0.0, 0.0);
        // Unserved head is 2 ticks old: integer and exact agree.
        assert_eq!(t.max_delay(), 2);
        assert_eq!(t.max_delay_exact(), 2.0);
    }

    #[test]
    fn state_roundtrip_is_bitwise() {
        let mut t = OnlineDelayTracker::new();
        for (a, s) in [(7.0, 0.0), (3.0, 4.0), (0.0, 2.5), (1.0, 0.0)] {
            t.push(a, s);
        }
        let state = t.state();
        let mut restored = OnlineDelayTracker::restore(&state);
        assert_eq!(restored.state(), state);
        // Continue both in lockstep: they must agree exactly.
        t.push(0.0, 10.0);
        restored.push(0.0, 10.0);
        assert_eq!(t.max_delay(), restored.max_delay());
        assert_eq!(
            t.max_delay_exact().to_bits(),
            restored.max_delay_exact().to_bits()
        );
        // And through serde JSON as well.
        let json = serde_json::to_string(&t.state()).unwrap();
        let back: DelayTrackerState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t.state());
    }

    #[test]
    fn constant_memory_over_long_streams() {
        // 1M ticks through a generator closure; pending stays tiny.
        let arrivals = (0..1_000_000).map(|i| if i % 97 == 0 { 20.0 } else { 1.0 });
        let summary = simulate_streaming(arrivals, &mut Flat(4.0), 64);
        assert_eq!(summary.final_backlog, 0.0);
        assert!(summary.max_delay <= 8, "delay {}", summary.max_delay);
        assert!(summary.ticks >= 1_000_000);
        assert!((summary.global_utilization() - 0.30).abs() < 0.02);
    }

    #[test]
    fn drain_cap_zero_stops_at_stream_end() {
        let summary = simulate_streaming([100.0], &mut Flat(1.0), 0);
        assert_eq!(summary.ticks, 1);
        assert!((summary.final_backlog - 99.0).abs() < 1e-9);
    }

    #[test]
    fn hostile_allocations_are_clamped() {
        struct Nan;
        impl Allocator for Nan {
            fn on_tick(&mut self, _a: f64) -> f64 {
                f64::NAN
            }
            fn name(&self) -> &'static str {
                "nan"
            }
        }
        let summary = simulate_streaming([5.0], &mut Nan, 4);
        assert_eq!(summary.total_served, 0.0);
        assert!(summary.final_backlog > 0.0);
    }
}
