//! Discrete-time simulation substrate for dynamic bandwidth allocation.
//!
//! This crate owns everything the paper's model needs *around* an allocation
//! algorithm: FIFO bit queues, the tick loop, allocation schedules with
//! change logs, and the three quality-of-service measures the paper trades
//! off — **latency**, **utilization**, and **number of bandwidth allocation
//! changes**.
//!
//! It also defines the [`Allocator`] and [`MultiAllocator`] traits that the
//! online algorithms in `cdba-core` and the baselines in `cdba-offline`
//! implement, so that every policy — online, offline, or heuristic — runs
//! through the same engine and is measured identically.
//!
//! # Example
//!
//! ```
//! use cdba_sim::{engine, Allocator};
//! use cdba_traffic::Trace;
//!
//! /// A trivial policy: always allocate 4 bits/tick.
//! struct Flat;
//! impl Allocator for Flat {
//!     fn on_tick(&mut self, _arrivals: f64) -> f64 { 4.0 }
//!     fn name(&self) -> &'static str { "flat" }
//! }
//!
//! # fn main() -> Result<(), cdba_sim::SimError> {
//! let trace = Trace::new(vec![2.0, 6.0, 2.0, 0.0]).unwrap();
//! let run = engine::simulate(&trace, &mut Flat, engine::DrainPolicy::DrainToEmpty)?;
//! assert_eq!(run.schedule.num_changes(), 1); // 0 → 4 at tick 0
//! assert!(cdba_sim::measure::max_delay(&trace, run.served()).unwrap() <= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod measure;
pub mod queue;
pub mod schedule;
pub mod streaming;
pub mod timeline;
pub mod traits;
pub mod verify;

pub use engine::{DrainPolicy, MultiRun, Run, SimError};
pub use queue::BitQueue;
pub use schedule::{Change, Schedule, ScheduleBuilder};
pub use traits::{Allocator, MultiAllocator};

/// Re-export of the shared float tolerance.
pub use cdba_traffic::EPS;
