//! The tick loop: drives an allocator over a trace, maintains queues,
//! records the schedule and service curves.

use crate::queue::BitQueue;
use crate::schedule::{Schedule, ScheduleBuilder};
use crate::traits::{Allocator, MultiAllocator};
use cdba_traffic::{MultiTrace, Trace, EPS};
use std::fmt;

/// Error returned by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The allocator returned a negative, NaN, or infinite allocation.
    InvalidAllocation {
        /// Tick at which it happened.
        tick: usize,
        /// The offending value.
        value: f64,
    },
    /// Draining was requested but the queue did not empty within the safety
    /// horizon (the allocator starves its own backlog).
    DrainStalled {
        /// Backlog remaining when the horizon was hit.
        backlog: f64,
        /// The horizon in ticks.
        horizon: usize,
    },
    /// A multi-allocator was driven with a mismatched session count.
    SessionMismatch {
        /// Sessions in the input.
        input: usize,
        /// Sessions the allocator expects.
        allocator: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidAllocation { tick, value } => {
                write!(f, "invalid allocation {value} at tick {tick}")
            }
            SimError::DrainStalled { backlog, horizon } => write!(
                f,
                "queue failed to drain: {backlog} bits left after {horizon} extra ticks"
            ),
            SimError::SessionMismatch { input, allocator } => write!(
                f,
                "input has {input} sessions but allocator expects {allocator}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// What the engine does after the trace's own ticks are exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainPolicy {
    /// Stop exactly at the end of the trace (backlog may remain).
    StopAtTraceEnd,
    /// Keep ticking with zero arrivals until every queue is empty, so every
    /// bit's delay is measurable. Fails with [`SimError::DrainStalled`] if
    /// the allocator never drains (horizon: `4 × trace_len + 1024` ticks).
    DrainToEmpty,
}

/// The outcome of a single-channel run.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// The allocation timeline and change log.
    pub schedule: Schedule,
    /// Bits served per tick (same length as the schedule).
    served: Vec<f64>,
    /// Ticks of the original trace (the schedule may be longer when
    /// draining).
    pub trace_len: usize,
    /// Largest backlog observed at any tick end.
    pub peak_backlog: f64,
    /// Backlog remaining at the end of the run (0 under
    /// [`DrainPolicy::DrainToEmpty`]).
    pub final_backlog: f64,
}

impl Run {
    /// Bits served per tick.
    pub fn served(&self) -> &[f64] {
        &self.served
    }

    /// Total bits served.
    pub fn total_served(&self) -> f64 {
        self.served.iter().sum()
    }
}

/// The outcome of a multi-session run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRun {
    /// Per-session schedules (allocation + change logs).
    pub sessions: Vec<Schedule>,
    /// Per-session served bits per tick.
    served: Vec<Vec<f64>>,
    /// The total (summed) allocation timeline, with its own change log —
    /// the paper's *global* changes.
    pub total: Schedule,
    /// Ticks of the original input.
    pub trace_len: usize,
    /// Largest total backlog observed.
    pub peak_backlog: f64,
    /// Total backlog at the end of the run.
    pub final_backlog: f64,
}

impl MultiRun {
    /// Bits served per tick for session `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn served(&self, i: usize) -> &[f64] {
        &self.served[i]
    }

    /// Number of sessions.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Sum of per-session (local) allocation changes.
    pub fn local_changes(&self) -> usize {
        self.sessions.iter().map(Schedule::num_changes).sum()
    }
}

fn validate_alloc(tick: usize, value: f64) -> Result<f64, SimError> {
    if !value.is_finite() || value < -EPS {
        return Err(SimError::InvalidAllocation { tick, value });
    }
    Ok(value.max(0.0))
}

/// Drives a single-channel [`Allocator`] over a trace.
///
/// Per tick: arrivals are fed to the allocator, the returned bandwidth is
/// recorded, and the queue serves up to that bandwidth (bits arriving in a
/// tick can be served within the same tick).
///
/// # Errors
///
/// Returns [`SimError::InvalidAllocation`] for invalid allocator output and
/// [`SimError::DrainStalled`] when draining never completes.
pub fn simulate<A: Allocator + ?Sized>(
    trace: &Trace,
    allocator: &mut A,
    drain: DrainPolicy,
) -> Result<Run, SimError> {
    let mut queue = BitQueue::new();
    let mut schedule = ScheduleBuilder::new();
    let mut served = Vec::with_capacity(trace.len());
    let mut peak_backlog = 0.0f64;

    let mut step = |arrivals: f64,
                    queue: &mut BitQueue,
                    schedule: &mut ScheduleBuilder,
                    served: &mut Vec<f64>,
                    peak: &mut f64|
     -> Result<(), SimError> {
        let tick = schedule.len();
        let alloc = validate_alloc(tick, allocator.on_tick(arrivals))?;
        schedule.push(alloc);
        served.push(queue.tick(arrivals, alloc));
        *peak = peak.max(queue.backlog());
        Ok(())
    };

    for &a in trace.arrivals() {
        step(a, &mut queue, &mut schedule, &mut served, &mut peak_backlog)?;
    }
    if drain == DrainPolicy::DrainToEmpty {
        let horizon = trace.len() * 4 + 1024;
        let mut extra = 0usize;
        while !queue.is_empty() {
            if extra >= horizon {
                return Err(SimError::DrainStalled {
                    backlog: queue.backlog(),
                    horizon,
                });
            }
            step(
                0.0,
                &mut queue,
                &mut schedule,
                &mut served,
                &mut peak_backlog,
            )?;
            extra += 1;
        }
    }
    Ok(Run {
        schedule: schedule.build(),
        served,
        trace_len: trace.len(),
        peak_backlog,
        final_backlog: queue.backlog(),
    })
}

/// Drives a [`MultiAllocator`] over a `k`-session input.
///
/// # Errors
///
/// Returns [`SimError::SessionMismatch`] when `input.num_sessions()` differs
/// from the allocator's `k`, plus the same errors as [`simulate`].
pub fn simulate_multi<A: MultiAllocator + ?Sized>(
    input: &MultiTrace,
    allocator: &mut A,
    drain: DrainPolicy,
) -> Result<MultiRun, SimError> {
    let k = input.num_sessions();
    if k != allocator.num_sessions() {
        return Err(SimError::SessionMismatch {
            input: k,
            allocator: allocator.num_sessions(),
        });
    }
    let mut queues = vec![BitQueue::new(); k];
    let mut schedules: Vec<ScheduleBuilder> = (0..k).map(|_| ScheduleBuilder::new()).collect();
    let mut total = ScheduleBuilder::new();
    let mut served: Vec<Vec<f64>> = vec![Vec::with_capacity(input.len()); k];
    let mut peak_backlog = 0.0f64;
    let mut arrivals_buf = vec![0.0f64; k];

    let len = input.len();
    let horizon = len * 4 + 1024;
    let mut tick = 0usize;
    loop {
        let in_trace = tick < len;
        if in_trace {
            for (i, a) in arrivals_buf.iter_mut().enumerate() {
                *a = input.session(i).arrival(tick);
            }
        } else {
            match drain {
                DrainPolicy::StopAtTraceEnd => break,
                DrainPolicy::DrainToEmpty => {
                    if queues.iter().all(BitQueue::is_empty) {
                        break;
                    }
                    if tick >= len + horizon {
                        return Err(SimError::DrainStalled {
                            backlog: queues.iter().map(BitQueue::backlog).sum(),
                            horizon,
                        });
                    }
                    arrivals_buf.iter_mut().for_each(|a| *a = 0.0);
                }
            }
        }
        let allocs = allocator.on_tick(&arrivals_buf);
        debug_assert_eq!(allocs.len(), k, "allocator returned wrong arity");
        let mut sum = 0.0;
        for i in 0..k {
            let a = validate_alloc(tick, allocs[i])?;
            sum += a;
            schedules[i].push(a);
            served[i].push(queues[i].tick(arrivals_buf[i], a));
        }
        total.push(sum);
        peak_backlog = peak_backlog.max(queues.iter().map(BitQueue::backlog).sum());
        tick += 1;
    }
    Ok(MultiRun {
        sessions: schedules.into_iter().map(ScheduleBuilder::build).collect(),
        served,
        total: total.build(),
        trace_len: len,
        peak_backlog,
        final_backlog: queues.iter().map(BitQueue::backlog).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Flat(f64);
    impl Allocator for Flat {
        fn on_tick(&mut self, _arrivals: f64) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "flat"
        }
    }

    struct FlatMulti(usize, f64);
    impl MultiAllocator for FlatMulti {
        fn num_sessions(&self) -> usize {
            self.0
        }
        fn on_tick(&mut self, _arrivals: &[f64]) -> Vec<f64> {
            vec![self.1; self.0]
        }
        fn name(&self) -> &'static str {
            "flat-multi"
        }
    }

    #[test]
    fn flat_run_serves_everything() {
        let t = Trace::new(vec![2.0, 8.0, 0.0, 0.0]).unwrap();
        let run = simulate(&t, &mut Flat(3.0), DrainPolicy::DrainToEmpty).unwrap();
        assert!((run.total_served() - 10.0).abs() < 1e-9);
        assert_eq!(run.final_backlog, 0.0);
        assert_eq!(run.trace_len, 4);
        assert!(run.peak_backlog > 0.0);
    }

    #[test]
    fn stop_at_trace_end_keeps_backlog() {
        let t = Trace::new(vec![10.0, 0.0]).unwrap();
        let run = simulate(&t, &mut Flat(1.0), DrainPolicy::StopAtTraceEnd).unwrap();
        assert_eq!(run.schedule.len(), 2);
        assert_eq!(run.final_backlog, 8.0);
    }

    #[test]
    fn zero_allocator_stalls_drain() {
        let t = Trace::new(vec![5.0]).unwrap();
        let err = simulate(&t, &mut Flat(0.0), DrainPolicy::DrainToEmpty).unwrap_err();
        assert!(matches!(err, SimError::DrainStalled { .. }));
    }

    struct Nan;
    impl Allocator for Nan {
        fn on_tick(&mut self, _a: f64) -> f64 {
            f64::NAN
        }
        fn name(&self) -> &'static str {
            "nan"
        }
    }

    #[test]
    fn invalid_allocation_is_reported() {
        let t = Trace::new(vec![1.0]).unwrap();
        let err = simulate(&t, &mut Nan, DrainPolicy::StopAtTraceEnd).unwrap_err();
        assert!(matches!(err, SimError::InvalidAllocation { tick: 0, .. }));
    }

    #[test]
    fn multi_run_totals_and_mismatch() {
        let m = cdba_traffic::multi::rotating_hot(2, 4.0, 0.0, 2, 8).unwrap();
        let run = simulate_multi(&m, &mut FlatMulti(2, 3.0), DrainPolicy::DrainToEmpty).unwrap();
        assert_eq!(run.num_sessions(), 2);
        assert_eq!(run.total.allocation_at(0), 6.0);
        let total_served: f64 = (0..2).map(|i| run.served(i).iter().sum::<f64>()).sum();
        assert!((total_served - m.total()).abs() < 1e-9);

        let err = simulate_multi(&m, &mut FlatMulti(3, 1.0), DrainPolicy::StopAtTraceEnd);
        assert!(matches!(
            err,
            Err(SimError::SessionMismatch {
                input: 2,
                allocator: 3
            })
        ));
    }

    #[test]
    fn multi_local_changes_counts_per_session() {
        struct Alternating(usize);
        impl MultiAllocator for Alternating {
            fn num_sessions(&self) -> usize {
                2
            }
            fn on_tick(&mut self, _a: &[f64]) -> Vec<f64> {
                self.0 += 1;
                if self.0.is_multiple_of(2) {
                    vec![1.0, 2.0]
                } else {
                    vec![2.0, 1.0]
                }
            }
            fn name(&self) -> &'static str {
                "alt"
            }
        }
        let m = cdba_traffic::multi::rotating_hot(2, 1.0, 0.0, 1, 4).unwrap();
        let run = simulate_multi(&m, &mut Alternating(0), DrainPolicy::StopAtTraceEnd).unwrap();
        // Each session changes on every tick; total allocation is constant 3.
        assert_eq!(run.local_changes(), 8);
        assert_eq!(run.total.num_changes(), 1);
    }
}
