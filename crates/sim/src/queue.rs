//! FIFO bit queue with exact float mirroring semantics.
//!
//! Both the engine and the online algorithms model the sending-end queue.
//! They must agree bit-for-bit, so the update rule lives in one place:
//! arrivals land at the start of a tick, then up to `allocation` bits are
//! served during the tick.

use cdba_traffic::EPS;

/// A FIFO queue of bits at the sending end station.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BitQueue {
    backlog: f64,
}

impl BitQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BitQueue::default()
    }

    /// Current backlog in bits.
    pub fn backlog(&self) -> f64 {
        self.backlog
    }

    /// `true` if the backlog is (within tolerance) zero.
    pub fn is_empty(&self) -> bool {
        self.backlog <= EPS
    }

    /// Advances one tick: `arrivals` bits land, then up to `allocation` bits
    /// are served. Returns the number of bits actually served this tick.
    ///
    /// Negative inputs are clamped to zero (callers validate upstream; the
    /// clamp keeps float noise from driving the backlog negative).
    pub fn tick(&mut self, arrivals: f64, allocation: f64) -> f64 {
        let arrivals = arrivals.max(0.0);
        let allocation = allocation.max(0.0);
        let offered = self.backlog + arrivals;
        let served = offered.min(allocation);
        self.backlog = offered - served;
        if self.backlog < EPS {
            self.backlog = 0.0;
        }
        served
    }

    /// Removes the entire backlog and returns it (the "move the content of
    /// `Q_r` to `Q_o`" step of the multi-session algorithms).
    pub fn drain_all(&mut self) -> f64 {
        std::mem::take(&mut self.backlog)
    }

    /// Adds bits directly to the backlog (the receiving side of
    /// [`BitQueue::drain_all`]).
    pub fn inject(&mut self, bits: f64) {
        self.backlog += bits.max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_up_to_allocation() {
        let mut q = BitQueue::new();
        assert_eq!(q.tick(10.0, 4.0), 4.0);
        assert_eq!(q.backlog(), 6.0);
        assert_eq!(q.tick(0.0, 4.0), 4.0);
        assert_eq!(q.tick(0.0, 4.0), 2.0);
        assert!(q.is_empty());
    }

    #[test]
    fn same_tick_arrivals_are_servable() {
        let mut q = BitQueue::new();
        assert_eq!(q.tick(3.0, 5.0), 3.0);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_and_inject_move_bits() {
        let mut q = BitQueue::new();
        q.tick(7.0, 2.0);
        let moved = q.drain_all();
        assert_eq!(moved, 5.0);
        assert!(q.is_empty());
        let mut o = BitQueue::new();
        o.inject(moved);
        assert_eq!(o.backlog(), 5.0);
    }

    #[test]
    fn float_noise_snaps_to_zero() {
        let mut q = BitQueue::new();
        q.tick(0.1 + 0.2, 0.3); // 0.1+0.2 != 0.3 in floats
        assert!(q.is_empty());
        assert_eq!(q.backlog(), 0.0);
    }

    #[test]
    fn negative_inputs_clamp() {
        let mut q = BitQueue::new();
        assert_eq!(q.tick(-5.0, -1.0), 0.0);
        assert!(q.is_empty());
    }
}
